"""Command-line interface: run the paper's experiments from a shell.

    repro-bench list-devices
    repro-bench table1
    repro-bench run-fleet "Nexus 5" --experiment both --scale 0.3
    repro-bench table2 --scale 0.3 --iterations 2
    repro-bench estimate-ambient "Nexus 5" --ambient 31
    repro-bench crowd --users 12 --scale 0.5
    repro-bench run-fleet "Nexus 5" --metrics-out m.json --progress
    repro-bench report m.json
    repro-bench check --differential --invariants
    repro-bench check --update-golden
    repro-bench crowd --users 2048 --stream --serve 9100 --checkpoint c.json
    repro-bench watch http://127.0.0.1:9100

Every command prints a human-readable report; ``run-fleet`` can also dump
machine-readable JSON (``--json out.json``), collect run telemetry
(``--metrics-out m.json``, summarized later by ``report``) and stream
per-unit completion lines to stderr (``--progress``).  ``--scale``
shortens the protocol's phase durations (1.0 = the paper's 3-minute
warmup / 5-minute workload).

``--serve PORT`` exposes a live HTTP telemetry endpoint for the duration
of the run (``/metrics`` Prometheus text, ``/status`` JSON progress,
``/spans`` dual-clock span tree); ``watch`` tails such an endpoint — or
pretty-prints a ``repro-manifest-v1`` file after the fact.  Runs that
write a JSON result or checkpoint also write a sibling
``*.manifest.json`` provenance document.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.core.config import AccubenchConfig
from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.reporting import (
    render_experiment,
    render_table1,
    render_table2,
)
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.catalog import DEVICE_NAMES, device_spec
from repro.errors import ReproError
from repro.rng import DEFAULT_ROOT_SEED
from repro.soc.catalog import soc_by_name


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Reproduction of 'Quantifying Process Variations and Its "
            "Impacts on Smartphones' (ISPASS 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-devices", help="catalogued handsets and SoCs")
    sub.add_parser("table1", help="print the paper's Table I voltage bins")

    run = sub.add_parser("run-fleet", help="run one model's paper fleet")
    run.add_argument("model", help="handset model, e.g. 'Nexus 5'")
    run.add_argument(
        "--experiment",
        choices=("unconstrained", "fixed", "both"),
        default="both",
        help="which workload(s) to run",
    )
    _add_protocol_args(run)
    run.add_argument("--json", metavar="PATH", help="also dump results as JSON")
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect run telemetry (engine counters, phase spans, per-task "
        "wall times) and write it as a metrics JSON document; results are "
        "identical with or without collection",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="print one line to stderr per completed unit, live",
    )
    run.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        default=None,
        help="serve live telemetry over HTTP while the fleet runs "
        "(/metrics, /status, /spans, /healthz); 0 picks a free port",
    )

    table2 = sub.add_parser("table2", help="the full Table II study")
    table2.add_argument(
        "--models", nargs="*", default=None, help="subset of models"
    )
    _add_protocol_args(table2)

    ambient = sub.add_parser(
        "estimate-ambient",
        help="run the §VI cooldown probe and estimate the room temperature",
    )
    ambient.add_argument("model", help="handset model")
    ambient.add_argument(
        "--ambient", type=float, default=26.0, help="true room temperature, °C"
    )
    ambient.add_argument(
        "--observe", type=float, default=600.0, help="observation window, s"
    )

    crowd = sub.add_parser(
        "crowd", help="simulate the §VI crowdsourced study with strict filters"
    )
    crowd.add_argument("--model", default="Nexus 5")
    crowd.add_argument(
        "--models",
        nargs="*",
        default=None,
        help="heterogeneous population: users cycle through these models "
        "in population order (overrides --model)",
    )
    crowd.add_argument("--users", type=int, default=12)
    crowd.add_argument("--scale", type=float, default=1.0)
    crowd.add_argument("--seed", type=int, default=DEFAULT_ROOT_SEED)
    crowd.add_argument(
        "--stream",
        action="store_true",
        help="run the cohort-batched streaming engine (O(cohort) memory, "
        "expm solver) instead of the serial per-user reference",
    )
    crowd.add_argument(
        "--cohort-size",
        type=int,
        default=256,
        help="users advanced per lock-step batch (streamed mode)",
    )
    crowd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for cohort execution (streamed mode)",
    )
    crowd.add_argument(
        "--backend",
        choices=("auto", "in-process", "process-pool", "shared-memory"),
        default="auto",
        help="execution backend for cohort workers (streamed mode); "
        "results and checkpoints are bit-identical under every choice",
    )
    crowd.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file: resume from it if present, update it as "
        "cohorts complete (implies --stream)",
    )
    crowd.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="write the checkpoint every N folded cohorts",
    )
    crowd.add_argument(
        "--stop-after-cohorts",
        type=int,
        default=None,
        help="fold at most N new cohorts then exit (resume later from "
        "the checkpoint)",
    )
    crowd.add_argument(
        "--progress",
        action="store_true",
        help="print one line to stderr per completed cohort, live",
    )
    crowd.add_argument(
        "--json", metavar="PATH", help="also dump the campaign summary as JSON"
    )
    crowd.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect campaign telemetry and write it as a metrics JSON "
        "document",
    )
    crowd.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        default=None,
        help="serve live telemetry over HTTP while the campaign runs "
        "(streamed mode; 0 picks a free port)",
    )
    crowd.add_argument(
        "--strict-watchdog",
        action="store_true",
        help="exit nonzero if any campaign watchdog rule fires "
        "(stuck cohort, throughput regression, drop-rate spike)",
    )

    validate = sub.add_parser(
        "validate", help="check the calibrated build against the paper's bands"
    )
    validate.add_argument(
        "--models", nargs="*", default=None, help="subset of models"
    )
    _add_protocol_args(validate)

    export = sub.add_parser(
        "export-fleet", help="run a fleet and export figure data as CSV"
    )
    export.add_argument("model", help="handset model")
    export.add_argument("--out", required=True, metavar="DIR", help="output directory")
    _add_protocol_args(export)

    check = sub.add_parser(
        "check",
        help="run the correctness harness: differential pairings, runtime "
        "invariants, golden-result regression (all three by default)",
    )
    check.add_argument(
        "--models", nargs="*", default=None, help="subset of models"
    )
    check.add_argument(
        "--differential",
        action="store_true",
        help="A/B pairings: euler vs expm, serial vs parallel, "
        "fast-forward on vs off",
    )
    check.add_argument(
        "--invariants",
        action="store_true",
        help="run campaigns with the physics invariant suite attached",
    )
    check.add_argument(
        "--golden",
        action="store_true",
        help="re-run the recorded golden scenarios and diff the stores",
    )
    check.add_argument(
        "--update-golden",
        action="store_true",
        help="regenerate the golden files instead of checking them",
    )
    check.add_argument(
        "--golden-dir",
        default="tests/golden",
        metavar="DIR",
        help="golden store location",
    )
    check.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="protocol duration scale for differential/invariant runs",
    )
    check.add_argument(
        "--iterations", type=int, default=None, help="iterations per unit"
    )
    check.add_argument(
        "--seed", type=int, default=DEFAULT_ROOT_SEED, help="root seed"
    )

    report = sub.add_parser(
        "report",
        help="summarize a metrics JSON written by --metrics-out (also "
        "understands crowd-stream summaries and run manifests)",
    )
    report.add_argument("metrics", help="path to the metrics JSON document")
    report.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format instead of the table",
    )
    report.add_argument(
        "--spans-tree",
        action="store_true",
        help="render the dual-clock span hierarchy instead of the summary",
    )

    watch = sub.add_parser(
        "watch",
        help="tail a live run's /status endpoint, or pretty-print a "
        "run manifest file",
    )
    watch.add_argument(
        "target", help="telemetry URL (http://host:port) or manifest path"
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (URL targets)",
    )
    watch.add_argument(
        "--once", action="store_true", help="poll once and exit"
    )

    return parser


def _add_protocol_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scale factor on protocol durations (1.0 = paper length)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None, help="iterations per unit"
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_ROOT_SEED, help="root seed"
    )
    parser.add_argument(
        "--no-thermabox",
        action="store_true",
        help="run in the open room instead of the chamber",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for fleet execution (0 = all cores); "
        "results are identical to --jobs 1",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "in-process", "process-pool", "shared-memory"),
        default="auto",
        help="execution backend: auto picks in-process at one job and "
        "the zero-copy shared-memory pool otherwise; results are "
        "bit-identical under every choice",
    )
    parser.add_argument(
        "--solver",
        choices=("euler", "expm"),
        default="euler",
        help="thermal solver: sub-stepped explicit Euler, or the exact "
        "matrix-exponential propagator (enables the cooldown sleep "
        "fast-forward)",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="lock-step batched fleet engine (requires --solver expm); "
        "default: automatic for fleets of 4+ eligible units; "
        "--no-batch forces the serial per-unit path",
    )
    parser.add_argument(
        "--utilization",
        type=float,
        default=None,
        help="per-core CPU utilization of the benchmark load, (0, 1]",
    )
    parser.add_argument(
        "--memory-boundedness",
        type=float,
        default=None,
        help="fraction of workload time stalled on memory at top "
        "frequency (β), [0, 1)",
    )


def _runner(args: argparse.Namespace) -> CampaignRunner:
    from repro.obs import ProgressPrinter

    protocol = AccubenchConfig().scaled(args.scale)
    overrides = {}
    if args.iterations is not None:
        overrides["iterations"] = args.iterations
    if getattr(args, "solver", None):
        overrides["thermal_solver"] = args.solver
    if getattr(args, "batch", None) is not None:
        overrides["batch"] = args.batch
    if getattr(args, "utilization", None) is not None:
        overrides["utilization"] = args.utilization
    if getattr(args, "memory_boundedness", None) is not None:
        overrides["memory_boundedness"] = args.memory_boundedness
    if overrides:
        protocol = replace(protocol, **overrides)
    return CampaignRunner(
        CampaignConfig(
            accubench=protocol,
            use_thermabox=not args.no_thermabox,
            root_seed=args.seed,
            jobs=getattr(args, "jobs", 1),
            backend=getattr(args, "backend", "auto"),
        ),
        progress=ProgressPrinter() if getattr(args, "progress", False) else None,
    )


def _metrics_scope(args: argparse.Namespace):
    """An active collection scope when ``--metrics-out`` or ``--serve``.

    Returns ``(context manager, registry-or-None)``; the caller runs the
    campaign inside the context and, if ``--metrics-out`` was given,
    writes the registry where the flag pointed.  ``--serve`` needs the
    registry live too — an endpoint scraping a disabled registry would
    answer empty documents.
    """
    from contextlib import nullcontext

    from repro.obs import MetricsRegistry, use_registry

    if not getattr(args, "metrics_out", None) and getattr(args, "serve", None) is None:
        return nullcontext(), None
    registry = MetricsRegistry(enabled=True)
    return use_registry(registry), registry


def _serve_scope(args: argparse.Namespace, registry, bus):
    """A running :class:`~repro.obs.TelemetryServer` when ``--serve``."""
    from contextlib import nullcontext

    from repro.obs import TelemetryServer

    if getattr(args, "serve", None) is None:
        return nullcontext()
    server = TelemetryServer(registry=registry, bus=bus, port=args.serve)
    server.start()
    print(f"serving telemetry at {server.url}", file=sys.stderr)
    return server


def _cmd_list_devices() -> int:
    print(f"{'Model':<14s} {'SoC':<8s} {'Process':<12s} {'Cores':>5s} "
          f"{'Top MHz':>8s} {'Bins':>5s}")
    for name in DEVICE_NAMES:
        spec = device_spec(name)
        soc = soc_by_name(spec.soc_name)
        top = max(cluster.max_freq_mhz for cluster in soc.clusters)
        print(
            f"{name:<14s} {soc.name:<8s} {soc.process.name:<12s} "
            f"{soc.total_cores:>5d} {top:>8.0f} {soc.bin_count:>5d}"
        )
    return 0


def _cmd_table1() -> int:
    from repro.silicon.vf_tables import nexus5_table

    print(render_table1(nexus5_table()))
    return 0


def _cmd_run_fleet(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from repro.obs import ProgressBus, chain_progress

    bus = ProgressBus()
    runner = _runner(args)
    runner.progress = chain_progress(runner.progress, bus)
    spec = device_spec(args.model)
    documents = {}
    scope, registry = _metrics_scope(args)
    fingerprint = None
    with scope, _serve_scope(args, registry, bus):
        if args.experiment in ("unconstrained", "both"):
            result = runner.run_fleet(args.model, unconstrained())
            print(render_experiment(result, "performance"))
            print(f"performance variation: {result.performance_variation:.1%}\n")
            documents["unconstrained"] = result
        if args.experiment in ("fixed", "both"):
            result = runner.run_fleet(args.model, fixed_frequency(spec))
            print(render_experiment(result, "energy"))
            print(f"energy variation: {result.energy_variation:.1%}")
            documents["fixed-frequency"] = result
    if registry is not None and args.metrics_out:
        from repro.obs import write_metrics

        write_metrics(registry, args.metrics_out)
        print(f"\nwrote metrics to {args.metrics_out}")
    if args.json:
        import json

        from repro.core.serialize import experiment_to_dict
        from repro.obs import (
            build_manifest,
            fingerprint_payload,
            manifest_path_for,
            write_manifest,
        )

        payload = {name: experiment_to_dict(r) for name, r in documents.items()}
        with open(args.json, "w") as fp:
            json.dump(payload, fp, indent=2)
        print(f"\nwrote {args.json}")
        fingerprint = fingerprint_payload(
            {
                "config": asdict(runner.config),
                "model": args.model,
                "experiment": args.experiment,
            }
        )
        manifest = build_manifest(
            "fleet",
            fingerprint,
            args.seed,
            registry=registry,
            status=bus.status(),
            extra={"json_path": args.json, "model": args.model},
        )
        path = write_manifest(manifest, manifest_path_for(args.json))
        print(f"wrote {path}")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    runner = _runner(args)
    models = args.models if args.models else list(DEVICE_NAMES)
    rows = {}
    for model in models:
        spec = device_spec(model)
        perf = runner.run_fleet(model, unconstrained())
        energy = runner.run_fleet(model, fixed_frequency(spec))
        rows[model] = (
            spec.soc_name,
            len(perf.devices),
            perf.performance_variation,
            energy.energy_variation,
        )
    print(render_table2(rows))
    return 0


def _cmd_estimate_ambient(args: argparse.Namespace) -> int:
    from repro.core.ambient_estimation import cooldown_probe
    from repro.device.fleet import PAPER_FLEETS, build_device
    from repro.instruments.monsoon import MonsoonPowerMonitor
    from repro.thermal.ambient import ConstantAmbient

    unit = PAPER_FLEETS[args.model][0]
    device = build_device(unit, initial_temp_c=args.ambient)
    device.connect_supply(MonsoonPowerMonitor(device.spec.battery.nominal_v))
    estimate = cooldown_probe(
        device, ConstantAmbient(args.ambient), observe_s=args.observe
    )
    print(
        f"true ambient {args.ambient:.1f} C -> estimated "
        f"{estimate.ambient_c:.1f} C "
        f"(tau {estimate.time_constant_s:.0f} s, r² {estimate.r_squared:.3f}, "
        f"{'confident' if estimate.is_confident() else 'NOT confident'})"
    )
    return 0


def _cmd_crowd(args: argparse.Namespace) -> int:
    from repro.core.crowd import (
        CrowdConfig,
        run_crowd_study,
        silicon_ranking_quality,
        strict_filters,
    )

    protocol = CrowdConfig().protocol.scaled(args.scale)
    if args.stream or args.checkpoint:
        return _cmd_crowd_stream(args, protocol)
    config = CrowdConfig(
        model=args.model,
        models=tuple(args.models) if args.models else (),
        user_count=args.users,
        protocol=protocol,
        root_seed=args.seed,
    )
    result = run_crowd_study(config)
    submissions = list(result)
    print(f"{len(submissions)} submissions from {args.users} users")
    if result.dropped_total:
        reasons = ", ".join(
            f"{reason}: {count}"
            for reason, count in sorted(result.dropped.items())
        )
        print(f"dropped {result.dropped_total} users ({reasons})")
    raw_quality = silicon_ranking_quality(submissions)
    filtered = strict_filters(submissions)
    print(f"raw ranking quality (Spearman ρ):      {raw_quality:+.2f}")
    if len(filtered) >= 3:
        filtered_quality = silicon_ranking_quality(filtered)
        print(
            f"after strict filters ({len(filtered)} kept):      "
            f"{filtered_quality:+.2f}"
        )
    else:
        print(f"after strict filters: only {len(filtered)} kept — need ≥3")
    return 0


def _cmd_crowd_stream(args: argparse.Namespace, protocol) -> int:
    from dataclasses import replace as dc_replace

    from repro.core.crowd import CrowdConfig
    from repro.core.crowd_stream import run_streaming_crowd_study
    from repro.obs import (
        ProgressBus,
        ProgressPrinter,
        default_watchdog,
        manifest_path_for,
    )

    config = CrowdConfig(
        model=args.model,
        models=tuple(getattr(args, "models", None) or ()),
        user_count=args.users,
        protocol=dc_replace(protocol, thermal_solver="expm"),
        root_seed=args.seed,
        backend=getattr(args, "backend", "auto"),
    )
    bus = ProgressBus()
    watchdog = default_watchdog()
    scope, registry = _metrics_scope(args)
    with scope, _serve_scope(args, registry, bus):
        result = run_streaming_crowd_study(
            config,
            cohort_size=args.cohort_size,
            jobs=args.jobs,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            stop_after_cohorts=args.stop_after_cohorts,
            progress=ProgressPrinter() if args.progress else None,
            telemetry=bus,
            watchdog=watchdog,
            manifest_path=(
                str(manifest_path_for(args.json)) if args.json else None
            ),
            log=lambda message: print(message, file=sys.stderr, flush=True),
        )
    print(
        f"{result.submission_count} submissions from "
        f"{result.users_simulated} users "
        f"({result.cohorts_completed}/{result.cohorts_total} cohorts "
        f"of {result.cohort_size})"
    )
    if result.dropped:
        total = sum(result.dropped.values())
        reasons = ", ".join(
            f"{reason}: {count}"
            for reason, count in sorted(result.dropped.items())
        )
        print(f"dropped {total} users ({reasons})")
    if result.ranking_quality_raw is not None:
        print(
            "raw ranking quality (Spearman ρ):      "
            f"{result.ranking_quality_raw:+.2f}"
        )
    if result.ranking_quality_filtered is not None:
        print(
            f"after strict filters ({result.filtered_count} kept):      "
            f"{result.ranking_quality_filtered:+.2f}"
        )
    elif result.submission_count:
        print(
            f"after strict filters: only {result.filtered_count} kept — "
            "need ≥3"
        )
    if result.score_quantiles:
        quantiles = " ".join(
            f"{name}={value:.1f}"
            for name, value in sorted(result.score_quantiles.items())
        )
        print(f"score quantiles (streamed): {quantiles}")
    print(
        f"{result.wall_s:.1f} s wall, {result.users_per_sec:.1f} users/s"
    )
    if not result.complete and args.checkpoint:
        print(
            f"campaign paused at cohort {result.cohorts_completed}; "
            f"resume with --checkpoint {args.checkpoint}"
        )
    if registry is not None and args.metrics_out:
        from repro.obs import write_metrics

        write_metrics(registry, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if args.json:
        import json

        with open(args.json, "w") as fp:
            json.dump(result.to_dict(), fp, indent=2)
        print(f"wrote {args.json} (+ manifest {manifest_path_for(args.json)})")
    if watchdog.triggered:
        print(
            f"{len(watchdog.warnings)} watchdog warning(s) raised",
            file=sys.stderr,
        )
        if args.strict_watchdog:
            return 3
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import all_passed, render_report, validate_study

    runner = _runner(args)
    results = validate_study(runner, models=args.models)
    print(render_report(results))
    return 0 if all_passed(results) else 1


def _cmd_export_fleet(args: argparse.Namespace) -> int:
    import os

    from repro.core.figure_data import bar_series, export_bundle

    runner = _runner(args)
    spec = device_spec(args.model)
    perf = runner.run_fleet(args.model, unconstrained())
    energy = runner.run_fleet(args.model, fixed_frequency(spec))
    slug = args.model.lower().replace(" ", "-")
    bundle = export_bundle(
        [
            bar_series(perf, "performance", name=f"{slug}-performance"),
            bar_series(energy, "energy", name=f"{slug}-energy"),
        ]
    )
    os.makedirs(args.out, exist_ok=True)
    for name, csv_text in bundle.items():
        path = os.path.join(args.out, f"{name}.csv")
        with open(path, "w") as fp:
            fp.write(csv_text)
        print(f"wrote {path}")
    print(f"serials (unit_index order): {', '.join(perf.serials)}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.check import run_differential, update_golden
    from repro.check.differential import default_differential_config
    from repro.check.golden import check_golden
    from repro.core.experiments import unconstrained

    models = args.models if args.models else list(DEVICE_NAMES)

    if args.update_golden:
        for path in update_golden(args.golden_dir, models):
            print(f"wrote {path}")
        return 0

    # No explicit selection means the full battery.
    run_all = not (args.differential or args.invariants or args.golden)
    base = default_differential_config(scale=args.scale, root_seed=args.seed)
    failed = False

    if args.differential or run_all:
        print("== differential pairings ==")
        for report in run_differential(
            models, base=base, iterations=args.iterations
        ):
            print(report.render())
            failed = failed or not report.passed
        from repro.check import (
            crowd_stream_pairing_report,
            telemetry_parity_report,
        )

        report = crowd_stream_pairing_report()
        print(report.render())
        failed = failed or not report.passed
        report = telemetry_parity_report(
            models[0], config=base, iterations=args.iterations
        )
        print(report.render())
        failed = failed or not report.passed

    if args.invariants or run_all:
        print("== runtime invariants ==")
        config = dc_replace(
            base, accubench=dc_replace(base.accubench, check_invariants=True)
        )
        runner = CampaignRunner(config)
        from repro.errors import InvariantViolation

        for model in models:
            try:
                runner.run_fleet(
                    model, unconstrained(), iterations=args.iterations, jobs=1
                )
            except InvariantViolation as violation:
                print(f"[FAIL] {model}: {violation}")
                failed = True
            else:
                print(f"[PASS] {model}: all invariants held")

    if args.golden or run_all:
        print("== golden regression ==")
        for report in check_golden(args.golden_dir, models):
            print(report.render())
            failed = failed or not report.passed

    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        format_manifest,
        format_span_tree,
        format_summary,
        prometheus_text,
        read_metrics,
        validate_manifest,
    )

    # Sniff the document: report understands metrics files, crowd-stream
    # summaries (--json from crowd --stream) and run manifests.  Unreadable
    # files fall through to read_metrics, whose errors are ReproErrors.
    kind = None
    try:
        with open(args.metrics) as fp:
            raw = json.load(fp)
        if isinstance(raw, dict):
            kind = raw.get("format")
    except (OSError, json.JSONDecodeError):
        pass
    if kind == "repro-manifest-v1":
        print(format_manifest(validate_manifest(raw)), end="")
        return 0
    if kind == "repro-crowd-stream-v1":
        print(_render_crowd_summary(raw), end="")
        return 0
    document = read_metrics(args.metrics)
    if args.prometheus:
        print(prometheus_text(document), end="")
    elif args.spans_tree:
        print(format_span_tree(document), end="")
    else:
        print(format_summary(document), end="")
    return 0


def _render_crowd_summary(document: dict) -> str:
    """Human rendering of a crowd-stream ``--json`` summary document."""
    dropped = document.get("dropped", {})
    lines = [
        f"crowd-stream summary ({document.get('model')}, "
        f"fingerprint {document.get('fingerprint', '')[:16]}…)",
        f"  users        {document.get('users_simulated')}"
        f"/{document.get('user_count')} simulated, "
        f"{document.get('submission_count')} submissions, "
        f"{sum(dropped.values())} dropped",
        f"  cohorts      {document.get('cohorts_completed')}"
        f"/{document.get('cohorts_total')} of {document.get('cohort_size')}",
        f"  score        mean {document.get('score_mean', 0.0):.1f} "
        f"± {document.get('score_std', 0.0):.1f}",
        f"  ambient err  {document.get('ambient_error_mean_c', 0.0):+.2f} C "
        f"± {document.get('ambient_error_std_c', 0.0):.2f} C",
    ]
    raw = document.get("ranking_quality_raw")
    filtered = document.get("ranking_quality_filtered")
    if raw is not None:
        lines.append(f"  ranking ρ    raw {raw:+.2f}")
    if filtered is not None:
        lines.append(
            f"  ranking ρ    filtered {filtered:+.2f} "
            f"({document.get('filtered_count')} kept)"
        )
    if dropped:
        reasons = ", ".join(
            f"{reason}: {count}" for reason, count in sorted(dropped.items())
        )
        lines.append(f"  drops        {reasons}")
    return "\n".join(lines) + "\n"


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs import format_manifest, read_manifest, watch_url

    if args.target.startswith(("http://", "https://")):
        return watch_url(args.target, interval_s=args.interval, once=args.once)
    print(format_manifest(read_manifest(args.target)), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list-devices":
            return _cmd_list_devices()
        if args.command == "table1":
            return _cmd_table1()
        if args.command == "run-fleet":
            return _cmd_run_fleet(args)
        if args.command == "table2":
            return _cmd_table2(args)
        if args.command == "estimate-ambient":
            return _cmd_estimate_ambient(args)
        if args.command == "crowd":
            return _cmd_crowd(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "export-fleet":
            return _cmd_export_fleet(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "watch":
            return _cmd_watch(args)
        parser.error(f"unknown command {args.command!r}")  # pragma: no cover
        return 2  # pragma: no cover
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
