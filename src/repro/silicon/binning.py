"""Speed and voltage binning (paper Section II, Zolotov et al. [8]).

*Speed binning* labels chips by the top frequency they pass timing at and
sells them at matching price points — the desktop-CPU strategy.

*Voltage binning* — what the smartphone market uses — fixes the frequency
ladder for every chip and adjusts each bin's supply voltage instead: slow
(low-leakage) silicon is binned at higher voltage to reach the shared
frequencies; fast (leaky) silicon is binned at lower voltage to rein in its
leakage.  The result looks identical on a spec sheet but hides the energy
and thermal differences the paper quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError
from repro.silicon.process import ProcessNode
from repro.silicon.transistor import SiliconProfile
from repro.silicon.vf_tables import VoltageFrequencyTable
from repro.units import v_to_mv

#: Bin voltages are quantized to this step, millivolts (kernel tables use
#: 5 mV granularity; see the paper's Table I).
VOLTAGE_QUANTUM_MV = 5.0


def required_voltage(
    process: ProcessNode, nominal_voltage_v: float, vth_delta: float
) -> float:
    """Supply voltage a die needs to hit nominal speed, volts.

    A die whose threshold voltage is ``vth_delta`` above nominal is slower
    and needs ``volt_per_vth · vth_delta`` extra volts to close timing at
    the nominal frequency; a fast die (negative delta) needs less.
    """
    voltage = nominal_voltage_v + process.volt_per_vth * vth_delta
    if voltage <= 0:
        raise ConfigurationError(
            f"vth_delta={vth_delta} drives required voltage non-positive"
        )
    return voltage


@dataclass(frozen=True)
class BinningOutcome:
    """Result of binning one die.

    Attributes
    ----------
    bin_index:
        Assigned bin.  For voltage binning, bin 0 is the slowest silicon
        (highest voltage); higher bins are faster and leakier.
    profile:
        The die that was binned.
    """

    bin_index: int
    profile: SiliconProfile


@dataclass(frozen=True)
class VoltageBinner:
    """Voltage binning for one SoC model.

    Bins partition the ±``span_sigma``·σ range of threshold-voltage shifts
    into ``bin_count`` equal slices, slowest first.  Each bin's voltage row
    is the voltage the slice's *slowest* die needs (so every die in the bin
    is stable), quantized to :data:`VOLTAGE_QUANTUM_MV`.

    Attributes
    ----------
    process:
        Manufacturing process of the SoC.
    frequencies_mhz:
        The shared frequency ladder all bins expose.
    nominal_voltages_v:
        Voltage a nominal die needs at each ladder frequency, volts.
    bin_count:
        Number of bins (the Nexus 5 kernel defines 7).
    span_sigma:
        Half-width of the binned V_th range in sigmas.
    compensation_floor / compensation_top:
        Fraction of the full ``volt_per_vth`` compensation applied at the
        lowest and highest frequency anchors, interpolated linearly in
        between.  Timing criticality grows with frequency, so shipped
        tables compress the per-bin spread at low frequency (the paper's
        Table I spans 50 mV at 300 MHz but 150 mV at 2265 MHz); defaults
        of 1.0 give uniform full compensation.
    """

    process: ProcessNode
    frequencies_mhz: Tuple[float, ...]
    nominal_voltages_v: Tuple[float, ...]
    bin_count: int = 7
    span_sigma: float = 2.5
    compensation_floor: float = 1.0
    compensation_top: float = 1.0

    def __post_init__(self) -> None:
        if self.bin_count < 1:
            raise ConfigurationError("bin_count must be at least 1")
        if self.span_sigma <= 0:
            raise ConfigurationError("span_sigma must be positive")
        if len(self.frequencies_mhz) != len(self.nominal_voltages_v):
            raise ConfigurationError(
                "frequencies and nominal voltages must have equal length"
            )
        if not 0.0 <= self.compensation_floor <= self.compensation_top:
            raise ConfigurationError(
                "compensation_floor must be within [0, compensation_top]"
            )
        if self.compensation_top <= 0.0:
            raise ConfigurationError("compensation_top must be positive")

    def _compensation_fraction(self, freq_mhz: float) -> float:
        """Fraction of full V_th compensation applied at a frequency."""
        low = self.frequencies_mhz[0]
        high = self.frequencies_mhz[-1]
        if high == low:
            return self.compensation_top
        frac = (freq_mhz - low) / (high - low)
        return self.compensation_floor + frac * (
            self.compensation_top - self.compensation_floor
        )

    def _bin_edges_vth(self) -> Tuple[float, ...]:
        """V_th-delta edges from slowest (+span) to fastest (−span)."""
        span = self.span_sigma * self.process.vth_sigma
        step = 2.0 * span / self.bin_count
        return tuple(span - i * step for i in range(self.bin_count + 1))

    def assign_bin(self, profile: SiliconProfile) -> BinningOutcome:
        """Assign a die to its voltage bin (clamping out-of-span dies)."""
        edges = self._bin_edges_vth()
        for bin_index in range(self.bin_count):
            # Edges run high→low: bin i covers (edges[i+1], edges[i]].
            if profile.vth_delta > edges[bin_index + 1]:
                return BinningOutcome(bin_index=bin_index, profile=profile)
        return BinningOutcome(bin_index=self.bin_count - 1, profile=profile)

    def table(self) -> VoltageFrequencyTable:
        """Generate the per-bin voltage table this binner would publish."""
        edges = self._bin_edges_vth()
        rows = []
        for bin_index in range(self.bin_count):
            slowest_vth = edges[bin_index]
            row = []
            for freq, nominal_v in zip(self.frequencies_mhz, self.nominal_voltages_v):
                effective_vth = slowest_vth * self._compensation_fraction(freq)
                volts = required_voltage(self.process, nominal_v, effective_vth)
                quantized = (
                    round(v_to_mv(volts) / VOLTAGE_QUANTUM_MV) * VOLTAGE_QUANTUM_MV
                )
                row.append(quantized)
            rows.append(tuple(row))
        # Quantization can produce equal adjacent anchors; enforce the
        # non-decreasing-in-frequency invariant explicitly.
        monotonic_rows = []
        for row in rows:
            fixed = [row[0]]
            for voltage in row[1:]:
                fixed.append(max(voltage, fixed[-1]))
            monotonic_rows.append(tuple(fixed))
        return VoltageFrequencyTable(
            frequencies_mhz=self.frequencies_mhz,
            voltages_mv=tuple(monotonic_rows),
        )


@dataclass(frozen=True)
class SpeedBinner:
    """Speed binning: label dies by the highest ladder frequency they pass.

    Attributes
    ----------
    frequencies_mhz:
        Candidate top frequencies, strictly increasing, MHz.
    nominal_top_mhz:
        Frequency a nominal die passes at nominal voltage, MHz.
    """

    frequencies_mhz: Tuple[float, ...]
    nominal_top_mhz: float

    def __post_init__(self) -> None:
        if not self.frequencies_mhz:
            raise ConfigurationError("at least one candidate frequency required")
        if any(
            later <= earlier
            for earlier, later in zip(self.frequencies_mhz, self.frequencies_mhz[1:])
        ):
            raise ConfigurationError("frequencies must be strictly increasing")
        if self.nominal_top_mhz <= 0:
            raise ConfigurationError("nominal_top_mhz must be positive")

    def max_stable_mhz(self, profile: SiliconProfile) -> float:
        """The physical top frequency this die can sustain, MHz."""
        return self.nominal_top_mhz * profile.speed_factor

    def assign_bin(self, profile: SiliconProfile) -> BinningOutcome:
        """Label a die with the highest ladder frequency it passes.

        Bin index counts from 0 = the *lowest* ladder frequency, matching
        price-tier ordering.  Dies too slow even for the bottom rung are
        still assigned bin 0 (shipped underclocked) — real fabs scrap them,
        but scrapping is a yield decision outside this model.
        """
        capability = self.max_stable_mhz(profile)
        bin_index = 0
        for index, freq in enumerate(self.frequencies_mhz):
            if capability >= freq:
                bin_index = index
        return BinningOutcome(bin_index=bin_index, profile=profile)

    def binned_frequency_mhz(self, profile: SiliconProfile) -> float:
        """The ladder frequency the die is sold at, MHz."""
        return self.frequencies_mhz[self.assign_bin(profile).bin_index]


def bin_slice_vth(
    process: ProcessNode,
    bin_count: int,
    bin_index: int,
    fraction: float = 0.5,
    span_sigma: float = 2.5,
) -> float:
    """The V_th shift at a fractional position inside one voltage bin.

    ``fraction`` = 0 is the bin's slowest edge, 1 its fastest edge, 0.5 the
    midpoint.  Bins partition ±``span_sigma``·σ, slowest (bin 0) first —
    the same slicing :class:`VoltageBinner` uses, exposed so fleet builders
    can place units at known positions within their bins.
    """
    if bin_count < 1:
        raise ConfigurationError("bin_count must be at least 1")
    if not 0 <= bin_index < bin_count:
        raise ConfigurationError(
            f"bin index {bin_index} out of range [0, {bin_count})"
        )
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be within [0, 1]")
    span = span_sigma * process.vth_sigma
    step = 2.0 * span / bin_count
    slow_edge = span - bin_index * step
    return slow_edge - fraction * step


def assign_bin_index(
    process: ProcessNode,
    bin_count: int,
    profile: SiliconProfile,
    span_sigma: float = 2.5,
) -> int:
    """The voltage bin a die falls into (same slicing as ``bin_slice_vth``).

    Out-of-span dies clamp to the end bins, as real binning flows do.
    """
    if bin_count < 1:
        raise ConfigurationError("bin_count must be at least 1")
    span = span_sigma * process.vth_sigma
    step = 2.0 * span / bin_count
    for bin_index in range(bin_count):
        fast_edge = span - (bin_index + 1) * step
        if profile.vth_delta > fast_edge:
            return bin_index
    return bin_count - 1


def bin_profile(
    process: ProcessNode,
    bin_count: int,
    bin_index: int,
    fraction: float = 0.5,
    span_sigma: float = 2.5,
) -> SiliconProfile:
    """A die at a fractional position inside one voltage bin."""
    vth = bin_slice_vth(process, bin_count, bin_index, fraction, span_sigma)
    return SiliconProfile.from_vth_delta(process, vth)


def spread_profiles(
    process: ProcessNode, bin_indices: Sequence[int], binner: VoltageBinner
) -> Tuple[SiliconProfile, ...]:
    """Representative silicon for given bins (each bin's slice midpoint).

    Convenience used by fleet builders: "give me a bin-0 chip and a bin-3
    chip" without sampling until the right bins appear.
    """
    edges = binner._bin_edges_vth()
    profiles = []
    for bin_index in bin_indices:
        if not 0 <= bin_index < binner.bin_count:
            raise ConfigurationError(
                f"bin index {bin_index} out of range [0, {binner.bin_count})"
            )
        midpoint = 0.5 * (edges[bin_index] + edges[bin_index + 1])
        profiles.append(SiliconProfile.from_vth_delta(process, midpoint))
    return tuple(profiles)
