"""Silicon process, transistor and binning models.

This subpackage implements the device physics the paper's observations rest
on: die-to-die process variation, voltage- and temperature-dependent leakage,
dynamic switching power, and the speed/voltage binning procedures
manufacturers use to paper over the variation (Section II of the paper).
"""

from repro.silicon.binning import (
    BinningOutcome,
    SpeedBinner,
    VoltageBinner,
    required_voltage,
    spread_profiles,
)
from repro.silicon.dynamic import DynamicPowerModel
from repro.silicon.leakage import LeakageModel
from repro.silicon.process import (
    PROCESS_14NM_FINFET,
    PROCESS_20NM_PLANAR,
    PROCESS_28NM_LP,
    ProcessNode,
    process_node,
)
from repro.silicon.transistor import SiliconProfile
from repro.silicon.variation import VariationSampler
from repro.silicon.yield_model import (
    BinShare,
    bin_distribution,
    empirical_bin_distribution,
    expected_leak_factor,
    lottery_odds_table,
    probability_at_least_bin,
)
from repro.silicon.vf_tables import (
    NEXUS5_BIN_COUNT,
    NEXUS5_VF_TABLE_MV,
    VoltageFrequencyTable,
    nexus5_table,
    single_bin_table,
)

__all__ = [
    "BinShare",
    "BinningOutcome",
    "DynamicPowerModel",
    "LeakageModel",
    "NEXUS5_BIN_COUNT",
    "NEXUS5_VF_TABLE_MV",
    "PROCESS_14NM_FINFET",
    "PROCESS_20NM_PLANAR",
    "PROCESS_28NM_LP",
    "ProcessNode",
    "SiliconProfile",
    "SpeedBinner",
    "VariationSampler",
    "VoltageBinner",
    "VoltageFrequencyTable",
    "bin_distribution",
    "empirical_bin_distribution",
    "expected_leak_factor",
    "lottery_odds_table",
    "nexus5_table",
    "probability_at_least_bin",
    "process_node",
    "required_voltage",
    "single_bin_table",
    "spread_profiles",
]
