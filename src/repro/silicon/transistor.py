"""Per-die silicon profiles.

A :class:`SiliconProfile` is the outcome of the manufacturing lottery for one
die: how far its threshold voltage landed from nominal, and the speed and
leakage consequences.  The paper (Section II) observes that because all cores
of a CPU come from the same patch of silicon, variation is *between CPUs*,
not between cores — so one profile describes a whole SoC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.silicon.process import ProcessNode


@dataclass(frozen=True)
class SiliconProfile:
    """The sampled process corner of one die.

    Attributes
    ----------
    vth_delta:
        Threshold-voltage deviation from the process nominal, volts.
        Negative values mean *fast, leaky* silicon; positive values mean
        *slow, low-leakage* silicon.
    speed_factor:
        Multiplier on achievable frequency at nominal voltage (1.0 nominal).
    leak_factor:
        Multiplier on reference leakage power (1.0 nominal).
    """

    vth_delta: float
    speed_factor: float
    leak_factor: float

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ConfigurationError("speed_factor must be positive")
        if self.leak_factor <= 0:
            raise ConfigurationError("leak_factor must be positive")

    @classmethod
    def nominal(cls) -> "SiliconProfile":
        """Return the exactly-nominal (typical-typical) profile."""
        return cls(vth_delta=0.0, speed_factor=1.0, leak_factor=1.0)

    @classmethod
    def from_vth_delta(cls, process: ProcessNode, vth_delta: float) -> "SiliconProfile":
        """Derive the full profile implied by a threshold-voltage shift.

        Speed scales linearly and leakage exponentially with ``-vth_delta``,
        the standard first-order behaviour (Borkar et al. [2]).
        """
        speed = 1.0 - process.speed_per_vth * vth_delta
        if speed <= 0:
            raise ConfigurationError(
                f"vth_delta={vth_delta} implies non-positive speed for {process.name}"
            )
        leak = math.exp(-process.leak_vth_slope * vth_delta)
        return cls(vth_delta=vth_delta, speed_factor=speed, leak_factor=leak)

    def is_faster_than(self, other: "SiliconProfile") -> bool:
        """True if this die achieves higher speed at equal voltage."""
        return self.speed_factor > other.speed_factor
