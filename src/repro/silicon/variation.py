"""Die-to-die variation sampling.

The manufacturing lottery: each die's threshold voltage lands some distance
from nominal.  :class:`VariationSampler` draws those outcomes from a seeded,
named random stream so a given (model, serial) pair always yields the same
silicon — the simulator's analogue of "the phone you actually bought".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.rng import DEFAULT_ROOT_SEED, derive_stream
from repro.silicon.process import ProcessNode
from repro.silicon.transistor import SiliconProfile

#: Clamp sampled V_th shifts to this many sigmas; dies beyond it fail test
#: and never ship (the paper's bin-4 Nexus 5 chip died during the study).
MAX_SIGMA = 3.0


@dataclass(frozen=True)
class VariationSampler:
    """Samples :class:`SiliconProfile` instances for a process node.

    Attributes
    ----------
    process:
        The process node whose ``vth_sigma`` sets the spread.
    root_seed:
        Root seed for stream derivation; distinct seeds are distinct fabs.
    """

    process: ProcessNode
    root_seed: int = DEFAULT_ROOT_SEED

    def sample(self, *stream_keys: str) -> SiliconProfile:
        """Sample the die identified by ``stream_keys`` (e.g. model, serial)."""
        if not stream_keys:
            raise ConfigurationError("at least one stream key is required")
        rng = derive_stream(self.root_seed, self.process.name, *stream_keys)
        sigma = self.process.vth_sigma
        delta = float(rng.normal(0.0, sigma))
        delta = max(-MAX_SIGMA * sigma, min(MAX_SIGMA * sigma, delta))
        return SiliconProfile.from_vth_delta(self.process, delta)

    def sample_lot(self, lot_name: str, count: int) -> List[SiliconProfile]:
        """Sample ``count`` dies from a named manufacturing lot."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return [self.sample(lot_name, f"die-{index}") for index in range(count)]

    def from_percentile(self, percentile: float) -> SiliconProfile:
        """Return the die at a given V_th percentile (0 = slowest, 100 = fastest).

        Useful for constructing fleets with known corner placement, e.g.
        "a bin-0-ish chip" without sampling.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ConfigurationError("percentile must be within [0, 100]")
        # Map percentile to sigma via the probit function approximation.
        from statistics import NormalDist

        z = NormalDist().inv_cdf(min(max(percentile / 100.0, 1e-9), 1.0 - 1e-9))
        z = max(-MAX_SIGMA, min(MAX_SIGMA, z))
        # High percentile == fast == negative vth_delta.
        return SiliconProfile.from_vth_delta(self.process, -z * self.process.vth_sigma)
