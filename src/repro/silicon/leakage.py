"""Leakage-power model.

Leakage (static) power is the villain of the paper: it varies exponentially
between dies, grows exponentially with temperature ("Moore's law meets static
power", Kim et al. [14]), and couples into a positive feedback loop — leaky
silicon heats up, heat raises leakage, the governor throttles, performance
drops (paper Section II, Figure 2).

The model here is the standard compact form

    P_leak(V, T) = P_ref · leak_factor · (V / V_ref)
                   · exp(a · (V − V_ref)) · exp(b · (T − T_ref))

with ``a`` and ``b`` taken from the :class:`~repro.silicon.process.ProcessNode`
and ``leak_factor`` from the die's :class:`~repro.silicon.transistor.SiliconProfile`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.silicon.process import ProcessNode
from repro.silicon.transistor import SiliconProfile

#: Reference temperature at which ``leak_ref_w`` is specified, °C.
LEAKAGE_REFERENCE_TEMP_C = 40.0


@dataclass(frozen=True)
class LeakageModel:
    """Leakage power of one CPU core (or any silicon block).

    Attributes
    ----------
    process:
        The manufacturing process, providing voltage/temperature slopes.
    leak_ref_w:
        Nominal-die leakage power in watts at ``ref_voltage`` volts and
        :data:`LEAKAGE_REFERENCE_TEMP_C`.
    ref_voltage:
        Voltage at which ``leak_ref_w`` is specified, volts.
    """

    process: ProcessNode
    leak_ref_w: float
    ref_voltage: float

    def __post_init__(self) -> None:
        if self.leak_ref_w < 0:
            raise ConfigurationError("leak_ref_w must be non-negative")
        if self.ref_voltage <= 0:
            raise ConfigurationError("ref_voltage must be positive")

    def power(self, profile: SiliconProfile, voltage: float, temp_c: float) -> float:
        """Leakage power in watts at the given supply voltage and die temperature.

        A powered-off block (``voltage == 0``) leaks nothing; power gating is
        modelled as removing the supply entirely.
        """
        if voltage < 0:
            raise ConfigurationError("voltage must be non-negative")
        if voltage == 0.0:
            return 0.0
        volt_term = (voltage / self.ref_voltage) * math.exp(
            self.process.leak_volt_slope * (voltage - self.ref_voltage)
        )
        temp_term = math.exp(
            self.process.leak_temp_slope * (temp_c - LEAKAGE_REFERENCE_TEMP_C)
        )
        return self.leak_ref_w * profile.leak_factor * volt_term * temp_term

    def doubling_temperature_delta(self) -> float:
        """Temperature rise (°C) over which leakage doubles at fixed voltage."""
        return math.log(2.0) / self.process.leak_temp_slope
