"""Voltage/frequency tables, including the paper's Table I.

Voltage binning gives every bin the *same* frequency ladder but different
supply voltages.  :class:`VoltageFrequencyTable` stores one ladder with one
voltage row per bin and interpolates voltages for frequencies between the
published anchor points (kernel tables list more frequency steps than the
paper's Table I excerpt).

:data:`NEXUS5_VF_TABLE_MV` reproduces Table I of the paper verbatim — the
Nexus 5 (SD-800) voltages, in millivolts, extracted from kernel sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.units import mv_to_v

#: Frequency anchors of Table I, MHz.
NEXUS5_VF_FREQUENCIES_MHZ: Tuple[float, ...] = (300.0, 729.0, 960.0, 1574.0, 2265.0)

#: Table I of the paper: per-bin voltage (mV) at each frequency anchor.
#: Bin-0 has the slowest transistors (binned at the highest voltage);
#: bin-6 the fastest and leakiest (binned at the lowest voltage).
NEXUS5_VF_TABLE_MV: Tuple[Tuple[float, ...], ...] = (
    (800.0, 835.0, 865.0, 965.0, 1100.0),  # bin-0
    (800.0, 820.0, 850.0, 945.0, 1075.0),  # bin-1
    (775.0, 805.0, 835.0, 925.0, 1050.0),  # bin-2
    (775.0, 790.0, 820.0, 910.0, 1025.0),  # bin-3
    (775.0, 780.0, 810.0, 895.0, 1000.0),  # bin-4
    (750.0, 770.0, 800.0, 880.0, 975.0),  # bin-5
    (750.0, 760.0, 790.0, 870.0, 950.0),  # bin-6
)

#: Number of voltage bins the Nexus 5 kernel defines.
NEXUS5_BIN_COUNT = len(NEXUS5_VF_TABLE_MV)


@dataclass(frozen=True)
class VoltageFrequencyTable:
    """A binned voltage/frequency table.

    Attributes
    ----------
    frequencies_mhz:
        Frequency anchors, strictly increasing, MHz.
    voltages_mv:
        One row per bin; ``voltages_mv[bin][i]`` is the supply voltage in
        millivolts at ``frequencies_mhz[i]``.  Within a row, voltage is
        non-decreasing with frequency; at a fixed frequency, voltage is
        non-increasing with bin index (faster silicon needs less voltage).
    """

    frequencies_mhz: Tuple[float, ...]
    voltages_mv: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if len(self.frequencies_mhz) < 2:
            raise ConfigurationError("a table needs at least two frequency anchors")
        if any(
            later <= earlier
            for earlier, later in zip(self.frequencies_mhz, self.frequencies_mhz[1:])
        ):
            raise ConfigurationError("frequencies must be strictly increasing")
        if not self.voltages_mv:
            raise ConfigurationError("a table needs at least one bin row")
        for bin_index, row in enumerate(self.voltages_mv):
            if len(row) != len(self.frequencies_mhz):
                raise ConfigurationError(
                    f"bin {bin_index} row length {len(row)} does not match "
                    f"{len(self.frequencies_mhz)} frequency anchors"
                )
            if any(later < earlier for earlier, later in zip(row, row[1:])):
                raise ConfigurationError(
                    f"bin {bin_index} voltages must be non-decreasing with frequency"
                )
        for earlier_row, later_row in zip(self.voltages_mv, self.voltages_mv[1:]):
            if any(later > earlier for earlier, later in zip(earlier_row, later_row)):
                raise ConfigurationError(
                    "voltage must be non-increasing with bin index at each frequency"
                )

    @property
    def bin_count(self) -> int:
        """Number of bins in the table."""
        return len(self.voltages_mv)

    @property
    def max_frequency_mhz(self) -> float:
        """Top of the frequency ladder, MHz."""
        return self.frequencies_mhz[-1]

    def voltage_mv(self, bin_index: int, freq_mhz: float) -> float:
        """Supply voltage in millivolts for a bin at a frequency.

        Frequencies between anchors are linearly interpolated; frequencies
        outside the ladder clamp to the nearest anchor (kernels never run
        outside their table, but callers probing the model may).
        """
        if not 0 <= bin_index < self.bin_count:
            raise ConfigurationError(
                f"bin_index {bin_index} out of range [0, {self.bin_count})"
            )
        freqs = self.frequencies_mhz
        row = self.voltages_mv[bin_index]
        if freq_mhz <= freqs[0]:
            return row[0]
        if freq_mhz >= freqs[-1]:
            return row[-1]
        for i in range(len(freqs) - 1):
            if freqs[i] <= freq_mhz <= freqs[i + 1]:
                span = freqs[i + 1] - freqs[i]
                frac = (freq_mhz - freqs[i]) / span
                return row[i] + frac * (row[i + 1] - row[i])
        raise ConfigurationError(f"frequency {freq_mhz} not bracketed")  # unreachable

    def voltage_v(self, bin_index: int, freq_mhz: float) -> float:
        """Supply voltage in volts (convenience wrapper)."""
        return mv_to_v(self.voltage_mv(bin_index, freq_mhz))

    def row_mv(self, bin_index: int) -> Tuple[float, ...]:
        """The full anchor-voltage row of one bin, millivolts."""
        if not 0 <= bin_index < self.bin_count:
            raise ConfigurationError(
                f"bin_index {bin_index} out of range [0, {self.bin_count})"
            )
        return self.voltages_mv[bin_index]

    def as_dict(self) -> Dict[int, Dict[float, float]]:
        """Return ``{bin: {freq_mhz: voltage_mv}}`` for reporting."""
        return {
            bin_index: dict(zip(self.frequencies_mhz, row))
            for bin_index, row in enumerate(self.voltages_mv)
        }


def nexus5_table() -> VoltageFrequencyTable:
    """The paper's Table I as a :class:`VoltageFrequencyTable`."""
    return VoltageFrequencyTable(
        frequencies_mhz=NEXUS5_VF_FREQUENCIES_MHZ,
        voltages_mv=NEXUS5_VF_TABLE_MV,
    )


def single_bin_table(
    frequencies_mhz: Sequence[float], voltages_mv: Sequence[float]
) -> VoltageFrequencyTable:
    """Build a one-bin table (for SoCs that hide their binning)."""
    return VoltageFrequencyTable(
        frequencies_mhz=tuple(frequencies_mhz),
        voltages_mv=(tuple(voltages_mv),),
    )
