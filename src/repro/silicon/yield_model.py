"""Bin distributions and the economics of the silicon lottery.

Paper §VI: crowdsourced data "can also be used to understand how the
manufacturers are binning their CPUs and the distribution of various
bins."  This module computes that distribution from the variation model —
the fraction of production landing in each voltage bin, how rare the
golden bin-0 chips of Figure 6 actually are, and the odds a buyer draws a
chip at least as good as a given bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist
from typing import Dict, List, Sequence, Tuple

from repro.errors import AnalysisError, ConfigurationError
from repro.silicon.binning import assign_bin_index
from repro.silicon.process import ProcessNode
from repro.silicon.variation import VariationSampler


@dataclass(frozen=True)
class BinShare:
    """One bin's slice of production.

    Attributes
    ----------
    bin_index:
        Voltage bin (0 = slowest/least leaky silicon).
    fraction:
        Fraction of shipped dies landing in the bin.
    """

    bin_index: int
    fraction: float


def bin_distribution(
    process: ProcessNode, bin_count: int, span_sigma: float = 2.5
) -> List[BinShare]:
    """Analytic production share per bin.

    V_th shifts are normal; bins slice ±``span_sigma``·σ into equal widths
    with out-of-span dies clamped into the end bins (as
    :func:`~repro.silicon.binning.assign_bin_index` does).  The middle
    bins therefore dominate and the end bins collect their tails.
    """
    if bin_count < 1:
        raise ConfigurationError("bin_count must be at least 1")
    if span_sigma <= 0:
        raise ConfigurationError("span_sigma must be positive")
    normal = NormalDist()
    # Work in sigma units; bin 0 covers the highest vth_delta (slowest).
    step = 2.0 * span_sigma / bin_count
    shares = []
    for bin_index in range(bin_count):
        hi_sigma = span_sigma - bin_index * step
        lo_sigma = hi_sigma - step
        share = normal.cdf(hi_sigma) - normal.cdf(lo_sigma)
        if bin_index == 0:
            share += 1.0 - normal.cdf(span_sigma)  # slow tail clamps in
        if bin_index == bin_count - 1:
            share += normal.cdf(-span_sigma)  # fast tail clamps in
        shares.append(BinShare(bin_index=bin_index, fraction=share))
    return shares


def empirical_bin_distribution(
    process: ProcessNode,
    bin_count: int,
    sample_count: int = 10_000,
    span_sigma: float = 2.5,
    seed: int = 0,
) -> List[BinShare]:
    """Monte-Carlo cross-check of :func:`bin_distribution` using the same
    sampler the fleets use (including its ±3σ test-reject clamp)."""
    if sample_count < 1:
        raise ConfigurationError("sample_count must be at least 1")
    sampler = VariationSampler(process=process, root_seed=seed)
    counts = [0] * bin_count
    for index in range(sample_count):
        profile = sampler.sample("yield-lot", f"die-{index}")
        counts[assign_bin_index(process, bin_count, profile, span_sigma)] += 1
    return [
        BinShare(bin_index=i, fraction=count / sample_count)
        for i, count in enumerate(counts)
    ]


def probability_at_least_bin(
    shares: Sequence[BinShare], bin_index: int
) -> float:
    """Chance a random buyer draws a chip in bin ≤ ``bin_index``.

    Lower bins are the low-leakage winners (paper Figure 6), so "at least
    as good as bin-2" means bins 0, 1 and 2.
    """
    if not shares:
        raise AnalysisError("no bin shares supplied")
    known = {share.bin_index for share in shares}
    if bin_index not in known:
        raise AnalysisError(f"bin {bin_index} not in distribution")
    return sum(share.fraction for share in shares if share.bin_index <= bin_index)


def expected_leak_factor(
    process: ProcessNode, bin_count: int, span_sigma: float = 2.5
) -> Dict[int, float]:
    """Representative (slice-midpoint) leakage multiplier per bin —
    the physical meaning behind each price-identical SKU."""
    from repro.silicon.binning import bin_profile

    return {
        bin_index: bin_profile(process, bin_count, bin_index, 0.5, span_sigma).leak_factor
        for bin_index in range(bin_count)
    }


def lottery_odds_table(
    process: ProcessNode, bin_count: int = 7, span_sigma: float = 2.5
) -> List[Tuple[int, float, float, float]]:
    """The consumer's view: per bin (index, share, cumulative, leak factor).

    Ready for rendering: "X% of units are this bin, Y% are at least this
    good, and such a chip leaks Z× nominal."
    """
    shares = bin_distribution(process, bin_count, span_sigma)
    leaks = expected_leak_factor(process, bin_count, span_sigma)
    rows = []
    cumulative = 0.0
    for share in shares:
        cumulative += share.fraction
        rows.append(
            (share.bin_index, share.fraction, cumulative, leaks[share.bin_index])
        )
    return rows
