"""Dynamic (switching) power model.

Dynamic power follows the textbook ``P = C_eff · V² · f · activity`` form.
Voltage binning (paper Table I) means two chips running the same frequency
switch at *different voltages*, so their dynamic power differs by the square
of the voltage ratio — the effect that makes bin-0's energy win
counter-intuitive (Section IV-A1): its higher voltage costs dynamic power,
but its low leakage more than pays that back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import mhz_to_hz


@dataclass(frozen=True)
class DynamicPowerModel:
    """Switching power of one CPU core.

    Attributes
    ----------
    c_eff_f:
        Effective switched capacitance in farads (typically a fraction of a
        nanofarad for a smartphone core).
    """

    c_eff_f: float

    def __post_init__(self) -> None:
        if self.c_eff_f <= 0:
            raise ConfigurationError("c_eff_f must be positive")

    def power(self, voltage: float, freq_mhz: float, activity: float = 1.0) -> float:
        """Dynamic power in watts.

        Parameters
        ----------
        voltage:
            Core supply voltage, volts.
        freq_mhz:
            Clock frequency, MHz.
        activity:
            Fraction of cycles doing useful switching, in [0, 1].  The
            paper's π workload keeps all cores at full activity.
        """
        if voltage < 0:
            raise ConfigurationError("voltage must be non-negative")
        if freq_mhz < 0:
            raise ConfigurationError("freq_mhz must be non-negative")
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError("activity must be within [0, 1]")
        return self.c_eff_f * voltage * voltage * mhz_to_hz(freq_mhz) * activity

    def energy_per_cycle(self, voltage: float) -> float:
        """Switching energy per clock cycle in joules (``C·V²``)."""
        if voltage < 0:
            raise ConfigurationError("voltage must be non-negative")
        return self.c_eff_f * voltage * voltage
