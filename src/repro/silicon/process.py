"""Semiconductor process-node descriptions.

A :class:`ProcessNode` captures the per-process constants that the leakage,
dynamic-power and variation models need.  The three nodes defined here match
the SoC generations the paper studies (Section IV):

* 28 nm planar LP — SD-800 and SD-805 (Nexus 5, Nexus 6)
* 20 nm planar — SD-810 (Nexus 6P)
* 14 nm FinFET — SD-820 and SD-821 (LG G5, Google Pixel)

The constants are calibrated, not measured: they are chosen so the simulated
fleets reproduce the *shape* of the paper's results (which bin wins, spread
magnitudes, generation-over-generation efficiency trends), per DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, UnknownModelError


@dataclass(frozen=True)
class ProcessNode:
    """Constants describing one manufacturing process.

    Attributes
    ----------
    name:
        Human-readable process name, e.g. ``"28nm-LP"``.
    feature_nm:
        Drawn feature size in nanometres.
    nominal_vdd:
        Typical supply voltage at the top frequency, volts.
    vth_sigma:
        Die-to-die threshold-voltage standard deviation, volts.  This is the
        master knob for how much chips of one model differ.
    leak_volt_slope:
        Exponential sensitivity of leakage to supply voltage, 1/V.
    leak_temp_slope:
        Exponential sensitivity of leakage to temperature, 1/°C.  Leakage
        roughly doubles every ``ln(2)/leak_temp_slope`` degrees.
    leak_vth_slope:
        Exponential sensitivity of leakage to threshold-voltage shift, 1/V.
        Fast (low-V_th) dies leak more: ``exp(-delta_vth * leak_vth_slope)``.
    speed_per_vth:
        Linear sensitivity of achievable speed to threshold-voltage shift,
        fraction per volt.  Fast dies reach higher frequency at fixed voltage.
    volt_per_vth:
        Volts of supply adjustment required to compensate one volt of V_th
        shift at constant speed; used by the voltage binner.
    """

    name: str
    feature_nm: float
    nominal_vdd: float
    vth_sigma: float
    leak_volt_slope: float
    leak_temp_slope: float
    leak_vth_slope: float
    speed_per_vth: float
    volt_per_vth: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ConfigurationError("feature_nm must be positive")
        if self.nominal_vdd <= 0:
            raise ConfigurationError("nominal_vdd must be positive")
        if self.vth_sigma < 0:
            raise ConfigurationError("vth_sigma must be non-negative")
        for field_name in ("leak_volt_slope", "leak_temp_slope", "leak_vth_slope"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")


#: 28 nm planar low-power process (SD-800 / SD-805).  Planar 28 nm has large
#: V_th spread and strong leakage sensitivity — the generation where the
#: paper observed the largest variations (14% performance, 19% energy).
PROCESS_28NM_LP = ProcessNode(
    name="28nm-LP",
    feature_nm=28.0,
    nominal_vdd=1.05,
    vth_sigma=0.022,
    leak_volt_slope=3.2,
    leak_temp_slope=0.019,
    leak_vth_slope=24.0,
    speed_per_vth=2.4,
    volt_per_vth=2.8,
)

#: 20 nm planar process (SD-810).  The last planar node: leakage got worse
#: before FinFETs arrived, matching the SD-810's notorious thermals.
PROCESS_20NM_PLANAR = ProcessNode(
    name="20nm-planar",
    feature_nm=20.0,
    nominal_vdd=1.00,
    vth_sigma=0.018,
    leak_volt_slope=3.4,
    leak_temp_slope=0.021,
    leak_vth_slope=24.0,
    speed_per_vth=2.6,
    volt_per_vth=2.9,
)

#: 14 nm FinFET process (SD-820 / SD-821).  FinFETs slashed leakage and its
#: spread — the paper sees only ~5% performance and ~10% energy variation.
PROCESS_14NM_FINFET = ProcessNode(
    name="14nm-FinFET",
    feature_nm=14.0,
    nominal_vdd=0.95,
    vth_sigma=0.012,
    leak_volt_slope=2.6,
    leak_temp_slope=0.015,
    leak_vth_slope=24.0,
    speed_per_vth=2.0,
    volt_per_vth=2.4,
)

_NODES = {
    node.name: node
    for node in (PROCESS_28NM_LP, PROCESS_20NM_PLANAR, PROCESS_14NM_FINFET)
}


def process_node(name: str) -> ProcessNode:
    """Look up a process node by name.

    Raises :class:`~repro.errors.UnknownModelError` for unknown names.
    """
    try:
        return _NODES[name]
    except KeyError:
        raise UnknownModelError("process", name, tuple(sorted(_NODES))) from None
