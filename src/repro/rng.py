"""Deterministic random-stream derivation.

Every stochastic element in the simulator (silicon sampling, sensor noise,
OS background activity) draws from its own named stream so that:

* the same campaign configuration always produces identical results, and
* adding a new consumer of randomness never perturbs existing streams.

Streams are derived from a root seed plus a tuple of string/int keys::

    gen = derive_stream(42, "nexus5", "unit-363", "sensor-noise")

The derivation hashes the keys through ``numpy.random.SeedSequence`` entropy,
which gives independent, well-distributed streams.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

StreamKey = Union[str, int]

#: Root seed used by catalog builders unless a caller overrides it.
DEFAULT_ROOT_SEED = 20190324  # ISPASS 2019 opening day.


def _key_to_int(key: StreamKey) -> int:
    """Map a stream key to a stable 32-bit integer."""
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly.
        raise TypeError("stream keys must be str or int, not bool")
    if isinstance(key, int):
        return key & 0xFFFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    raise TypeError(f"stream keys must be str or int, got {type(key).__name__}")


def derive_stream(root_seed: int, *keys: StreamKey) -> np.random.Generator:
    """Return an independent random generator for (root_seed, \\*keys).

    The same arguments always return a generator producing the same
    sequence; distinct key tuples produce statistically independent streams.
    """
    entropy = [root_seed & 0xFFFFFFFFFFFFFFFF]
    entropy.extend(_key_to_int(key) for key in keys)
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))


def derive_seed(root_seed: int, *keys: StreamKey) -> int:
    """Return a stable derived integer seed for (root_seed, \\*keys)."""
    return int(derive_stream(root_seed, *keys).integers(0, 2**63 - 1))
