"""Simulation clock.

Time is a float number of seconds since world construction, advanced in
fixed steps.  Accumulating many tiny float increments drifts, so the clock
counts integer steps and multiplies — after an hour of 100 ms steps the
time is still exact.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class SimClock:
    """Fixed-step simulation clock."""

    def __init__(self, dt: float) -> None:
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        self._dt = dt
        self._steps = 0

    @property
    def dt(self) -> float:
        """Step size, seconds."""
        return self._dt

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._steps * self._dt

    @property
    def steps(self) -> int:
        """Steps taken since construction."""
        return self._steps

    def tick(self) -> float:
        """Advance one step and return the new time."""
        self._steps += 1
        return self.now

    def advance(self, steps: int) -> float:
        """Advance many steps at once (macro-step fast-forward); returns
        the new time."""
        if steps < 1:
            raise ConfigurationError("steps must be at least 1")
        self._steps += steps
        return self.now
