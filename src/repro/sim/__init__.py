"""Simulation engine: clock, traces, events and the world stepper.

The engine advances a :class:`~repro.device.phone.Device` (and optionally a
THERMABOX chamber and Monsoon monitor) in fixed time steps, recording the
time series the paper's figures are drawn from — temperature, frequency,
power and phase markers over time.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import World
from repro.sim.events import Event, EventLog
from repro.sim.trace import PhaseSpan, Trace

__all__ = ["Event", "EventLog", "PhaseSpan", "SimClock", "Trace", "World"]
