"""Lock-step batched simulation of many device units, mixed models included.

A fleet experiment runs the *same* protocol over N units; the serial path
builds N worlds and steps them one after another, re-deriving identical
control flow N times per engine step.  :class:`BatchedWorld` instead
advances all units in lock-step through stacked state: units are grouped
by device model into cohort blocks (:class:`_CohortWorld`), and each
cohort shares one ``(N_model, nodes)`` temperature matrix propagated by a
single batched (Φ, Ψ) application per step — the block-diagonal form of
the fleet-wide update — plus vectorized per-unit power evaluation over
stacked silicon parameters and masked cohort updates for the places units
genuinely diverge (throttle polls, cooldown exits).  A homogeneous fleet
is the one-cohort special case and runs exactly the code it always has.

Fidelity contract
-----------------
The batched step mirrors the serial ``World.run_for`` / ``Device.step`` /
``Soc.step`` bodies operation for operation, per unit:

* every per-unit random draw (OS steal resample, background-noise sample,
  sensor read) comes from that unit's own generator in the same order the
  serial path would draw it — so stochastic trajectories are reproducible
  against the serial engine, not merely statistically similar;
* device-local time is *accumulated* (``now += dt``) while clock time is
  *derived* (``steps * dt``), matching ``Device._now_s`` vs ``SimClock``
  exactly;
* throttle polls replay the serial catch-up ``while`` loop under a mask,
  so the burst of missed polls after a long cooldown lands identically.

The only tolerated deviations are ulp-level: the batched thermal update is
a GEMM where the serial path runs per-unit GEMVs, and per-core power sums
collapse behind BLAS summation order.  ``repro.check``'s ``BATCH_SPEC``
pairing budget covers exactly that.

Divergence handling
-------------------
Units stay in one cohort while they share control flow.  During cooldown,
units that reach their target temperature freeze (their clocks, chambers
and supplies stop advancing — a serial world that simply is not stepped)
while the still-cooling cohort fast-forwards whole poll windows; each
shrink of the active cohort is counted as a *cohort split* for the
observability layer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.device.battery import Battery
from repro.device.phone import Device
from repro.errors import SimulationError
from repro.instruments.thermabox import BatchedThermabox
from repro.sim.engine import TRACE_CHANNELS
from repro.sim.events import EventLog
from repro.sim.trace import Trace
from repro.soc.throttling import MitigationState


class _ClusterBatch:
    """Stacked runtime state of one cluster across all units."""

    __slots__ = (
        "spec",
        "ladder",
        "core_count",
        "c_eff",
        "leak_vref",
        "leak_volt_slope",
        "leak_temp_slope",
        "leak_coeff",
        "volt_table",
        "freq",
        "voltage_adjust",
        "fixed_index",
        "external_index",
        "ipc",
        "max_freq",
        "top_rate",
    )

    def __init__(self, devices: Sequence[Device], cluster_index: int) -> None:
        reference = devices[0].soc.clusters[cluster_index]
        spec = reference.spec
        self.spec = spec
        self.ladder = np.asarray(spec.freq_table_mhz, dtype=float)
        self.core_count = spec.core_count
        self.ipc = spec.ipc
        self.c_eff = spec.c_eff_f
        self.max_freq = spec.max_freq_mhz
        # ops_rate(max_freq, ipc) — the memory-stall normalization rate.
        self.top_rate = spec.max_freq_mhz * 1e6 * spec.ipc
        self.leak_vref = spec.leak_ref_voltage_v
        process = devices[0].soc.spec.process
        self.leak_volt_slope = process.leak_volt_slope
        self.leak_temp_slope = process.leak_temp_slope
        # Serial leakage computes ``leak_ref_w * leak_factor`` first every
        # step; hoisting that product keeps the op order (and result) exact.
        self.leak_coeff = np.array(
            [spec.leak_ref_w * dev.profile.leak_factor for dev in devices]
        )
        # Per-unit binned table voltage for every ladder rung, volts.
        self.volt_table = np.array(
            [
                [
                    spec.vf_table.voltage_v(dev.soc.clusters[cluster_index].bin_index, f)
                    for f in spec.freq_table_mhz
                ]
                for dev in devices
            ]
        )
        self.freq = np.array(
            [dev.soc.clusters[cluster_index].freq_mhz for dev in devices]
        )
        self.voltage_adjust = np.array(
            [dev.soc.clusters[cluster_index].voltage_adjust_v for dev in devices]
        )
        #: Userspace pin as a ladder index, or ``None`` for the performance
        #: governor.  Resolving pins/ceilings to *indices* up front turns
        #: the hot loop's frequency choice into pure integer minima.
        self.fixed_index: Optional[int] = None
        #: Nearest-ladder index of the OS input-voltage cap, if any.
        self.external_index: Optional[int] = None

    def nearest_index(self, freq_mhz: float) -> int:
        """Ladder index of ``ClusterSpec.nearest_freq_mhz(freq_mhz)``."""
        index = int(np.searchsorted(self.ladder, freq_mhz, side="right")) - 1
        return max(index, 0)


class _CohortWorld:
    """One same-model cohort of device units advanced in lock-step.

    The single-model engine block behind :class:`BatchedWorld`, which
    groups a (possibly mixed-model) fleet into these cohorts.
    Construction adopts the units' current device state (fresh devices
    start pristine, exactly like the serial runner's); :meth:`finalize`
    writes the evolved state back into the :class:`Device` objects so
    anything inspecting them afterwards sees what a serial run would have
    left behind.  One instance persists across protocol iterations —
    :meth:`begin_iteration` plays the role of the serial path's fresh
    ``World`` per iteration (new traces, clock at zero, chamber retained).
    """

    def __init__(
        self,
        devices: Sequence[Device],
        room_temp_c: Union[float, np.ndarray],
        chamber=None,
        dt: float = 0.1,
        trace_decimation: int = 5,
        check_invariants: bool = False,
    ) -> None:
        if not devices:
            raise SimulationError("a batched world needs at least one unit")
        if trace_decimation < 1:
            raise SimulationError("trace_decimation must be at least 1")
        spec_names = {dev.spec.name for dev in devices}
        if len(spec_names) != 1:
            raise SimulationError(
                f"batched units must share one device model, got {sorted(spec_names)}"
            )
        if chamber is not None and chamber.count != len(devices):
            raise SimulationError("chamber column count must match unit count")
        self.devices = list(devices)
        count = len(devices)
        self._count = count
        self._dt = dt
        self._decimation = trace_decimation
        room = np.asarray(room_temp_c, dtype=float)
        if room.ndim == 0:
            self._room_temp = float(room)
        else:
            # Per-unit room temperatures: every unit cools toward its own
            # uncontrolled ambient (the crowd-study setting).  A chamber
            # regulates all columns toward one exterior, so the two are
            # mutually exclusive.
            if room.shape != (count,):
                raise SimulationError(
                    "room_temp_c array must have one entry per unit"
                )
            if chamber is not None:
                raise SimulationError(
                    "per-unit room temperatures require chamber=None"
                )
            self._room_temp = float(room[0])
        self._chamber = chamber
        spec = devices[0].spec
        self._spec = spec

        reference = devices[0]
        thermal = reference.thermal
        if not thermal.is_exact or thermal.propagator is None:
            raise SimulationError("batched worlds require the expm thermal solver")
        self._propagator = thermal.propagator
        self._node_count = len(thermal.node_names)
        self._idx_ambient = thermal.node_index("ambient")
        self._idx_cpu, self._idx_case, self._idx_pkg = thermal.injection_indices(
            ("cpu", "case", "pkg")
        )
        self._temps = np.array(
            [
                [dev.thermal.temperature_at(i) for i in range(self._node_count)]
                for dev in devices
            ]
        )
        self._power_buf = np.zeros((count, self._node_count))

        # -- per-unit device-persistent state --------------------------------
        self._now_dev = np.array([dev.now_s for dev in devices])
        stepwise = reference.soc.throttle.stepwise
        self._stw_interval = stepwise.poll_interval_s
        self._stw_hot = stepwise.throttle_temp_c
        self._stw_cold = stepwise.clear_temp_c
        self._stw_max = stepwise.max_steps
        self._stw_steps = np.array(
            [dev.soc.throttle.stepwise.steps for dev in devices], dtype=np.int64
        )
        self._stw_next = np.array(
            [dev.soc.throttle.stepwise._next_poll_s for dev in devices]
        )
        shutdown = reference.soc.throttle.shutdown
        self._has_shutdown = shutdown is not None
        if shutdown is not None:
            self._shd_interval = shutdown.poll_interval_s
            self._shd_hot = shutdown.critical_temp_c
            self._shd_cold = shutdown.restore_temp_c
            self._shd_max = shutdown.max_offline
            self._shd_offline = np.array(
                [dev.soc.throttle.shutdown.offline for dev in devices],
                dtype=np.int64,
            )
            self._shd_next = np.array(
                [dev.soc.throttle.shutdown._next_poll_s for dev in devices]
            )
        else:
            self._shd_offline = np.zeros(count, dtype=np.int64)
            self._shd_next = np.zeros(count)

        # Skin-temperature mitigation (slow surface-estimate polls): per-unit
        # step/next-poll state, constants shared cohort-wide from the spec.
        skin = reference.skin_throttle
        self._has_skin = skin is not None
        if skin is not None:
            self._skin_interval = skin.poll_interval_s
            self._skin_hot = skin.throttle_surface_c
            self._skin_cold = skin.clear_surface_c
            self._skin_max = skin.max_steps
            self._skin_contact = skin.skin_model.contact_resistance
            self._skin_steps = np.array(
                [dev.skin_throttle._steps for dev in devices], dtype=np.int64
            )
            self._skin_next = np.array(
                [dev.skin_throttle._next_poll_s for dev in devices]
            )
        else:
            self._skin_steps = np.zeros(count, dtype=np.int64)
            self._skin_next = np.zeros(count)

        os_ref = reference.os
        self._bg_power = os_ref.background_power_w
        self._bg_sigma = os_ref.background_sigma_w
        self._steal_mean = os_ref.steal_mean
        self._steal_sigma = os_ref.steal_sigma
        self._steal_max = os_ref.steal_max
        self._steal_interval = os_ref.steal_interval_s
        self._steal_frac = np.array([dev.os._steal_frac for dev in devices])
        self._steal_until = np.array([dev.os._steal_until_s for dev in devices])
        self._os_rng = [dev.os.rng for dev in devices]
        # The serial OsBehavior draws nothing when its terms are disabled;
        # matching the gates keeps per-unit RNG streams aligned draw-for-draw.
        self._steal_enabled = os_ref.rng is not None and not (
            self._steal_sigma == 0 and self._steal_mean == 0
        )
        self._noise_enabled = self._bg_sigma > 0 and os_ref.rng is not None

        # Scalar poll-skip bounds.  ``_now_max`` is an upper bound on every
        # unit's device-local clock: each advance applied to any unit is
        # also applied to it, and float addition is monotone, so it can
        # never fall below the true max.  The ``*_next_min`` values are
        # lower bounds on the matching next-poll arrays — those only ever
        # grow, and the bound is refreshed whenever the exact vector check
        # runs.  ``now_max < next_min`` therefore proves no unit is due
        # with two Python floats, letting quiet steps skip the per-policy
        # fleet-wide compare-and-any entirely; anything else falls through
        # to the exact check, so replay is untouched.
        self._now_max = float(self._now_dev.max())
        self._stw_next_min = float(self._stw_next.min())
        self._shd_next_min = float(self._shd_next.min())
        self._skin_next_min = float(self._skin_next.min())
        self._steal_next_min = float(self._steal_until.min())
        self._any_offline = bool(self._shd_offline.any())

        sensor = reference.sensor
        self._sensor_quantum = sensor.quantization_c
        self._sensor_sigma = sensor.noise_sigma_c
        self._sensor_offset = sensor.offset_c
        self._sensor_rng = [dev.sensor.rng for dev in devices]

        self._awake_idle = spec.rails.awake_idle_w
        self._asleep_w = spec.rails.asleep_w
        self._efficiency = spec.rails.regulator_efficiency

        batteries = [isinstance(dev.supply, Battery) for dev in devices]
        self._battery_mode = all(batteries)
        if any(batteries) and not self._battery_mode:
            raise SimulationError(
                "batched units must all be battery-powered or all metered"
            )
        self._energy_total = np.array(
            [dev.supply.energy_drawn_j for dev in devices]
        )
        if self._battery_mode:
            # Vectorized battery bank: stacked SoC / last-load state with
            # the serial Battery.draw arithmetic replayed element-wise.
            bat_specs = {dev.supply.spec for dev in devices}
            if len(bat_specs) != 1:
                raise SimulationError(
                    "batched batteries must share one BatterySpec"
                )
            bat_spec = bat_specs.pop()
            self._bat_capacity = bat_spec.energy_capacity_j
            self._bat_resistance = bat_spec.internal_resistance_ohm
            self._bat_curve_soc = np.array(
                [soc for soc, _ in bat_spec.ocv_curve]
            )
            self._bat_curve_v = np.array([v for _, v in bat_spec.ocv_curve])
            self._bat_soc = np.array(
                [dev.supply.state_of_charge for dev in devices]
            )
            self._bat_last_load = np.array(
                [dev.supply._last_load_w for dev in devices]
            )
            self._voltage = None
            self._external_mhz = None
            throttle = reference.os.voltage_throttle
            self._vt_threshold = (
                throttle.threshold_v if throttle is not None else None
            )
            self._vt_ceiling = (
                throttle.ceiling_mhz if throttle is not None else None
            )
            self._capped = np.zeros(count, dtype=bool)
            self._elapsed = np.zeros(count)
            self._energy_win = np.zeros(count)
            self._charge = np.zeros(count)
            self._peak = np.zeros(count)
        else:
            voltages = {dev.supply.output_voltage_v for dev in devices}
            if len(voltages) != 1:
                raise SimulationError(
                    "batched units must share one supply voltage"
                )
            self._voltage = voltages.pop()
            self._external_mhz = reference.os.cpu_ceiling_mhz(self._voltage)
            self._vt_threshold = None
            self._vt_ceiling = None
            self._capped = np.zeros(count, dtype=bool)
            self._elapsed = np.array([dev.supply.elapsed_s for dev in devices])
            self._energy_win = np.array([dev.supply.energy_j for dev in devices])
            self._charge = np.array([dev.supply.charge_c for dev in devices])
            self._peak = np.array(
                [dev.supply.peak_current_a for dev in devices]
            )

        self._rbcpr = reference.soc.rbcpr
        if self._rbcpr is not None:
            block = self._rbcpr
            self._rbcpr_comp = np.array(
                [
                    block.compensation_factor
                    * block.process.volt_per_vth
                    * dev.profile.vth_delta
                    for dev in devices
                ]
            )
        self._clusters = [
            _ClusterBatch(devices, k) for k in range(len(reference.soc.clusters))
        ]
        if self._external_mhz is not None:
            for batch in self._clusters:
                batch.external_index = batch.nearest_index(self._external_mhz)
        elif self._vt_ceiling is not None:
            # Battery-powered units: the cap engages per unit, per step,
            # as each terminal voltage sags past the threshold; the ladder
            # index of the capped frequency is still a batch constant.
            for batch in self._clusters:
                batch.external_index = batch.nearest_index(self._vt_ceiling)
        self._online_big = np.array(
            [dev.soc.clusters[0].online_count for dev in devices], dtype=np.int64
        )
        self._online_big_full = np.full(
            count, self._clusters[0].core_count, dtype=np.int64
        )
        self._other_cores = sum(c.core_count for c in self._clusters[1:])
        # Governor-block replay cache (see _step_awake step 4): frequency
        # choice, voltage, dynamic power and retire rate are pure functions
        # of state that only moves when a mitigation poll fires or a
        # governor knob changes, so quiet steps replay the cached arrays
        # and recompute only the temperature-dependent leakage.  Worlds
        # whose voltage moves every step (battery sag cap, RBCPR margin
        # recovery) never cache.
        self._gov_cacheable = self._rbcpr is None and not self._battery_mode
        self._gov_cache: Optional[tuple] = None
        self._leak_temp_slope = reference.soc.spec.process.leak_temp_slope
        self._rows = np.arange(count)
        self._all_units = np.ones(count, dtype=bool)
        # Hot-loop scratch (one allocation per batch, reused every step).
        self._scr_soc = np.zeros(count)
        self._scr_ops = np.zeros(count)
        self._scr_noise = np.empty(count)
        if room.ndim == 0:
            self._room_ambient = np.full(count, self._room_temp)
        else:
            self._room_ambient = room.astype(float).copy()
        self._noise_const = np.full(count, max(0.0, self._bg_power))
        self._os_normal = [rng.normal if rng is not None else None for rng in self._os_rng]

        # -- batch-global benchmark-app state --------------------------------
        self._load_active = False
        self._wakelock = False
        self._utilization = 1.0
        betas = {
            cluster.memory_boundedness
            for dev in devices
            for cluster in dev.soc.clusters
        }
        if len(betas) != 1:
            raise SimulationError(
                "batched units must share one memory_boundedness"
            )
        self._mem_beta = betas.pop()
        self._fixed_mhz: Optional[float] = None
        self._apply_governors()

        # -- per-iteration world state (see begin_iteration) -----------------
        self.traces: List[Trace] = []
        self.event_logs: List[EventLog] = []
        self._clock_steps = np.zeros(count, dtype=np.int64)
        self._last_mit = np.zeros(count, dtype=np.int64)
        self._last_online = self._online_totals()
        self._last_trace_stamp = np.full(count, -np.inf)
        self._prev_supply = np.zeros(count)
        self._ops_total = np.zeros(count)
        self._ff_windows = np.zeros(count, dtype=np.int64)
        self._ff_steps = np.zeros(count, dtype=np.int64)
        self._phase: Optional[str] = None
        #: Times the active cohort shrank mid-phase (cooldown divergence).
        self.cohort_splits = 0
        self._check_invariants = check_invariants
        self._invariants = None
        self.begin_iteration()

    # -- protocol surface ---------------------------------------------------

    @property
    def count(self) -> int:
        """Number of units in the batch."""
        return self._count

    @property
    def dt(self) -> float:
        """Engine step, seconds."""
        return self._dt

    @property
    def ops_total(self) -> np.ndarray:
        """Per-unit work retired this iteration, ops."""
        return self._ops_total.copy()

    @property
    def energy_drawn_j(self) -> np.ndarray:
        """Per-unit cumulative supply energy, joules."""
        return self._energy_total.copy()

    @property
    def clock_now(self) -> np.ndarray:
        """Per-unit iteration clock time, seconds."""
        return self._clock_steps * self._dt

    @property
    def looped_steps(self) -> np.ndarray:
        """Per-unit engine steps actually looped (clock minus macro steps)."""
        return self._clock_steps - self._ff_steps

    @property
    def fast_forward_steps(self) -> np.ndarray:
        """Per-unit clock steps covered by macro propagations."""
        return self._ff_steps.copy()

    @property
    def fast_forward_windows(self) -> np.ndarray:
        """Per-unit macro windows taken this iteration."""
        return self._ff_windows.copy()

    def ambient_now(self) -> np.ndarray:
        """Per-unit ambient the devices currently see, °C."""
        if self._chamber is not None:
            return self._chamber.air_temps_c.copy()
        return self._room_ambient.copy()

    def begin_iteration(self) -> None:
        """Reset per-iteration world state (the serial path's fresh World)."""
        count = self._count
        self.traces = [Trace(TRACE_CHANNELS) for _ in range(count)]
        self.event_logs = [EventLog() for _ in range(count)]
        self._clock_steps = np.zeros(count, dtype=np.int64)
        # Serial World.__init__ starts the event edge-detector at zero steps
        # but at the device's *actual* online count.
        self._last_mit = np.zeros(count, dtype=np.int64)
        self._last_online = self._online_totals()
        self._last_trace_stamp = np.full(count, -np.inf)
        self._prev_supply = np.zeros(count)
        self._ops_total = np.zeros(count)
        self._ff_windows = np.zeros(count, dtype=np.int64)
        self._ff_steps = np.zeros(count, dtype=np.int64)
        self._phase = None
        if self._check_invariants:
            # Imported lazily, mirroring Accubench._attach_invariants:
            # repro.check depends on the runner, which depends on this
            # module.  Fresh per iteration, like the serial per-World suite.
            from repro.check.invariants import BatchedInvariantSuite

            self._invariants = BatchedInvariantSuite(
                serials=[dev.serial for dev in self.devices],
                node_temps_c=self._temps,
                meter_j=self._energy_total,
                throttle_steps=self._stw_steps,
                throttle_temp_c=self._spec.throttle.throttle_temp_c,
                clear_temp_c=self._spec.throttle.clear_temp_c,
            )

    def acquire_wakelock(self) -> None:
        """Hold every unit awake."""
        self._wakelock = True

    def release_wakelock(self) -> None:
        """Let every unit suspend."""
        self._wakelock = False

    def start_load(
        self, utilization: float = 1.0, memory_boundedness: float = 0.0
    ) -> None:
        """Load every core on every unit (the π loop on all CPUs).

        Mirrors :meth:`Device.start_load`: ``memory_boundedness`` is the
        workload's frequency-independent stall fraction (at top clock).
        """
        if not 0.0 < utilization <= 1.0:
            raise SimulationError("utilization must be within (0, 1]")
        if not 0.0 <= memory_boundedness < 1.0:
            raise SimulationError("memory_boundedness must be within [0, 1)")
        self._load_active = True
        self._utilization = utilization
        self._mem_beta = memory_boundedness
        self._apply_governors()

    def stop_load(self) -> None:
        """Stop the benchmark load on every unit."""
        self._load_active = False
        self._apply_governors()

    def set_fixed_frequency(self, freq_mhz: float) -> None:
        """Pin all clusters at their nearest ladder step below a frequency."""
        self._fixed_mhz = freq_mhz
        self._apply_governors()

    def unconstrain_frequency(self) -> None:
        """Restore the performance governor."""
        self._fixed_mhz = None
        self._apply_governors()

    def set_phase(self, name: Optional[str]) -> None:
        """Annotate every unit's trace with a protocol phase from now on."""
        dt = self._dt
        for i in range(self._count):
            now = self._clock_steps[i] * dt
            if self._phase is not None:
                self.traces[i].end_phase(now)
            if name is not None:
                self.traces[i].begin_phase(name, now)
                self.event_logs[i].log(now, "phase", name=name)
        self._phase = name

    def close(self) -> None:
        """End any open phase annotation."""
        self.set_phase(None)

    # -- engine -------------------------------------------------------------

    def run_for(self, duration_s: float) -> None:
        """Advance every unit, awake, for a fixed duration."""
        if duration_s <= 0:
            raise SimulationError("duration_s must be positive")
        steps = round(duration_s / self._dt)
        if steps < 1:
            raise SimulationError("duration shorter than one clock step")
        if not (self._wakelock or self._load_active):
            raise SimulationError(
                "batched run_for requires awake units; use run_cooldown for sleep"
            )
        for _ in range(steps):
            self._step_awake()

    def run_cooldown(
        self, targets_c: np.ndarray, poll_s: float, timeout_s: float
    ) -> np.ndarray:
        """Cooldown every unit to its target; returns per-unit elapsed time.

        The batched mirror of the serial ``run_until(read <= target)`` loop:
        per unit, the sensor is polled first (its noise draw included), then
        the still-cooling cohort fast-forwards one poll window as a single
        exact propagation.  Units that pass freeze in place until the whole
        cohort is done.  Raises :class:`SimulationError` when any unit's
        cooldown exceeds ``timeout_s``, matching the serial failure mode.
        """
        if poll_s < self._dt:
            raise SimulationError("check_every_s must be at least one clock step")
        if self._wakelock or self._load_active:
            raise SimulationError("cooldown requires suspended units")
        dt = self._dt
        count = self._count
        active = np.ones(count, dtype=bool)
        started = self._clock_steps * dt
        elapsed = np.zeros(count)
        cohort = count
        while True:
            for i in range(count):
                if active[i] and self._read_sensor(i) <= targets_c[i]:
                    elapsed[i] = self._clock_steps[i] * dt - started[i]
                    active[i] = False
            remaining = int(active.sum())
            if remaining == 0:
                return elapsed
            if remaining != cohort:
                self.cohort_splits += 1
                cohort = remaining
            overdue = active & (self._clock_steps * dt - started >= timeout_s)
            if overdue.any():
                raise SimulationError(f"run_until timed out after {timeout_s} s")
            self._fast_forward(active, poll_s)

    def run_asleep(self, duration_s: float) -> None:
        """Advance every unit, suspended, as a single exact macro window.

        The batched mirror of the serial per-poll ``world.run_for`` calls
        in :func:`repro.core.ambient_estimation.cooldown_probe`: a
        sleeping unit's power draw is constant and it draws no randomness,
        so a whole observation window collapses into one zero-order-hold
        propagation per unit without perturbing any RNG stream.
        """
        if duration_s <= 0:
            raise SimulationError("duration_s must be positive")
        if self._wakelock or self._load_active:
            raise SimulationError("run_asleep requires suspended units")
        if round(duration_s / self._dt) < 1:
            raise SimulationError("duration shorter than one clock step")
        self._fast_forward(self._all_units, duration_s)

    def read_sensors(self) -> np.ndarray:
        """Poll every unit's CPU temperature sensor, one draw per unit."""
        return np.array(
            [self._read_sensor(i) for i in range(self._count)]
        )

    def finalize(self) -> None:
        """Write the batched state back into the per-unit Device objects."""
        for i, dev in enumerate(self.devices):
            for node in range(self._node_count):
                dev.thermal.set_temperature_at(node, float(self._temps[i, node]))
            dev._now_s = float(self._now_dev[i])
            dev.os._steal_frac = float(self._steal_frac[i])
            dev.os._steal_until_s = float(self._steal_until[i])
            stepwise = dev.soc.throttle.stepwise
            stepwise._steps = int(self._stw_steps[i])
            stepwise._next_poll_s = float(self._stw_next[i])
            if self._has_skin:
                dev.skin_throttle._steps = int(self._skin_steps[i])
                dev.skin_throttle._next_poll_s = float(self._skin_next[i])
                dev.soc.external_ceiling_steps = int(self._skin_steps[i])
            dev.soc.set_memory_boundedness(self._mem_beta)
            if self._has_shutdown:
                shutdown = dev.soc.throttle.shutdown
                shutdown._offline = int(self._shd_offline[i])
                shutdown._next_poll_s = float(self._shd_next[i])
            dev.soc.mitigation = MitigationState(
                ceiling_steps=int(self._stw_steps[i]),
                offline_cores=int(self._shd_offline[i]),
            )
            if self._battery_mode and self._vt_ceiling is not None:
                dev.soc.external_ceiling_mhz = (
                    self._vt_ceiling if self._capped[i] else None
                )
            else:
                dev.soc.external_ceiling_mhz = self._external_mhz
            for k, batch in enumerate(self._clusters):
                cluster = dev.soc.clusters[k]
                cluster.set_frequency(float(batch.freq[i]))
                cluster.voltage_adjust_v = float(batch.voltage_adjust[i])
            dev.soc.clusters[0].set_online_count(int(self._online_big[i]))
            supply = dev.supply
            if self._battery_mode:
                supply._soc = float(self._bat_soc[i])
                supply._last_load_w = float(self._bat_last_load[i])
                supply._energy_drawn_j = float(self._energy_total[i])
            else:
                supply._elapsed_s = float(self._elapsed[i])
                supply._energy_j = float(self._energy_win[i])
                supply._energy_total_j = float(self._energy_total[i])
                supply._charge_c = float(self._charge[i])
                supply._peak_current_a = float(self._peak[i])

    # -- internals ----------------------------------------------------------

    def _apply_governors(self) -> None:
        """Resolve each cluster's pinned target, mirroring Device governors.

        ``None`` means the performance governor (chase the ceiling); an
        index is the userspace pin.  Because the pin and the mitigated
        ceiling are both exact ladder rungs, ``nearest(min(pin, ceiling))``
        collapses to ``ladder[min(pin_index, ceiling_index)]``, so the hot
        loop never needs a searchsorted.
        """
        self._gov_cache = None
        for batch in self._clusters:
            if not self._load_active:
                batch.fixed_index = 0  # UserspaceGovernor(min_freq_mhz)
            elif self._fixed_mhz is not None:
                batch.fixed_index = batch.nearest_index(self._fixed_mhz)
            else:
                batch.fixed_index = None

    def _online_totals(self) -> np.ndarray:
        return self._online_big + self._other_cores

    def _read_sensor(self, unit: int) -> float:
        """One unit's CPU sensor read — the serial TemperatureSensor, inline."""
        value = float(self._temps[unit, self._idx_cpu]) + self._sensor_offset
        rng = self._sensor_rng[unit]
        if self._sensor_sigma > 0 and rng is not None:
            value += float(rng.normal(0.0, self._sensor_sigma))
        if self._sensor_quantum > 0:
            value = round(value / self._sensor_quantum) * self._sensor_quantum
        return value

    # -- battery bank -------------------------------------------------------

    def _battery_ocv(self, soc: np.ndarray) -> np.ndarray:
        """Piecewise-linear OCV, bracket-for-bracket with ``BatterySpec.ocv_v``."""
        xs = self._bat_curve_soc
        ys = self._bat_curve_v
        hi = np.searchsorted(xs, soc, side="left")
        np.clip(hi, 1, xs.size - 1, out=hi)
        lo = hi - 1
        frac = (soc - xs[lo]) / (xs[hi] - xs[lo])
        return ys[lo] + frac * (ys[hi] - ys[lo])

    def _battery_terminal_v(
        self, power: np.ndarray, soc: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vector mirror of ``Battery._terminal_voltage``."""
        soc = self._bat_soc if soc is None else soc
        ocv = self._battery_ocv(soc)
        r = self._bat_resistance
        if r == 0.0:
            return ocv
        volts = ocv.copy()
        need = power != 0.0
        if need.any():
            open_v = ocv[need]
            disc = open_v * open_v - 4.0 * power[need] * r
            if (disc <= 0.0).any():
                worst = float(np.asarray(power)[need].max())
                raise SimulationError(
                    f"load {worst} W exceeds what the battery can deliver"
                )
            volts[need] = 0.5 * (open_v + np.sqrt(disc))
        return volts

    def _battery_draw_awake(self, supply: np.ndarray, dt: float) -> None:
        """Every unit's ``Battery.draw`` for one awake step, vectorized."""
        soc = self._bat_soc
        if (soc <= 0.0).any():
            raise SimulationError("battery is empty")
        self._battery_terminal_v(supply)  # deliverability check
        self._bat_last_load = supply.copy()
        self._energy_total += supply * dt
        np.maximum(
            0.0, soc - supply * dt / self._bat_capacity, out=self._bat_soc
        )

    def _battery_draw_masked(
        self, active: np.ndarray, power_w: float, duration: float
    ) -> None:
        """The active cohort's ``Battery.draw`` for one sleeping macro window."""
        soc = self._bat_soc[active]
        if (soc <= 0.0).any():
            raise SimulationError("battery is empty")
        self._battery_terminal_v(np.full(soc.size, power_w), soc)
        self._bat_last_load[active] = power_w
        self._energy_total[active] += power_w * duration
        self._bat_soc[active] = np.maximum(
            0.0, soc - power_w * duration / self._bat_capacity
        )

    @staticmethod
    def _poll_policy(die, now, state, next_poll, interval, hot_t, cold_t, cap):
        """Masked replay of the serial sampled-mitigation ``while`` loop.

        Returns whether any unit's poll fired — when none did, mitigation
        state cannot have changed, which lets the caller skip edge checks.
        """
        due = now >= next_poll
        if not due.any():
            return False
        while True:
            next_poll[due] += interval
            hot = due & (die >= hot_t)
            cold = due & (die <= cold_t)
            state[hot] = np.minimum(state[hot] + 1, cap)
            state[cold] = np.maximum(state[cold] - 1, 0)
            due = now >= next_poll
            if not due.any():
                return True

    def _step_awake(self) -> None:
        """One lock-step awake engine step for every unit."""
        dt = self._dt
        count = self._count
        temps = self._temps
        now = self._now_dev

        # 1. Chamber absorbs last step's waste heat; units see its air.
        if self._chamber is not None:
            self._chamber.step_masked(
                None, self._room_temp, dt, self._prev_supply
            )
            # Read-only view; every consumer below copies what it keeps.
            ambient = self._chamber.air_temps_c
        else:
            ambient = self._room_ambient
        temps[:, self._idx_ambient] = ambient
        die = temps[:, self._idx_cpu]

        # 2. Mitigation polls: skin surface estimate first (the serial
        # Device.step updates it before Soc.step), then the die-temperature
        # stepwise loop and the optional hard-limit hotplug monitor.  Each
        # policy is guarded by its scalar skip bound — when ``now_max``
        # has not reached the policy's next-poll minimum, no unit can be
        # due and the vector check (and its state changes) cannot happen.
        now_max = self._now_max
        if self._has_skin and now_max >= self._skin_next_min:
            case_pre = temps[:, self._idx_case]
            surface = case_pre - (case_pre - ambient) * self._skin_contact
            if self._poll_policy(
                surface, now, self._skin_steps, self._skin_next,
                self._skin_interval, self._skin_hot, self._skin_cold,
                self._skin_max,
            ):
                self._gov_cache = None
            self._skin_next_min = float(self._skin_next.min())
        if now_max >= self._stw_next_min:
            polled = self._poll_policy(
                die, now, self._stw_steps, self._stw_next,
                self._stw_interval, self._stw_hot, self._stw_cold, self._stw_max,
            )
            self._stw_next_min = float(self._stw_next.min())
        else:
            polled = False
        if self._has_shutdown and now_max >= self._shd_next_min:
            if self._poll_policy(
                die, now, self._shd_offline, self._shd_next,
                self._shd_interval, self._shd_hot, self._shd_cold, self._shd_max,
            ):
                polled = True
                self._any_offline = bool(self._shd_offline.any())
            self._shd_next_min = float(self._shd_next.min())
        if polled:
            self._gov_cache = None
        mit_steps = self._stw_steps
        # Soc.step sums die mitigation and the skin-policy external steps
        # before mapping to a ladder ceiling.
        ceiling_steps = (
            mit_steps + self._skin_steps if self._has_skin else mit_steps
        )

        # 3. RBCPR: one evaluation serves every cluster this step.
        if self._rbcpr is not None:
            block = self._rbcpr
            recovered = block.margin_recovery_mv_per_c * np.maximum(
                0.0, die - block.reference_temp_c
            )
            margin = np.maximum(block.min_margin_mv, block.base_margin_mv - recovered)
            adjust = self._rbcpr_comp + margin / 1000.0
        else:
            adjust = None

        # 4. Per-cluster governor, voltage, power and retire rate.  On a
        # quiet step (no poll fired, no governor knob moved since the
        # cache was built) every input except the die temperature is
        # unchanged, so the cached per-cluster arrays are replayed and
        # only the temperature-dependent leakage term is recomputed —
        # float-for-float the same expressions the build step evaluated.
        util = self._utilization if self._load_active else 0.0
        soc_power = self._scr_soc
        soc_power.fill(0.0)
        any_offline = self._any_offline
        temp_term = np.exp(self._leak_temp_slope * (die - 40.0))
        cache = self._gov_cache
        if cache is not None:
            cluster_cache, ops_rate_total, online_big = cache
            self._online_big = online_big
            for dynamic, lv, soc_leak_cores in cluster_cache:
                leak_per_core = lv * temp_term
                soc_power += dynamic + leak_per_core * soc_leak_cores
        else:
            ops_rate_total = self._scr_ops
            ops_rate_total.fill(0.0)
            if self._battery_mode and self._vt_threshold is not None:
                # Serial Device.step consults the supply's terminal voltage
                # (last step's load, current SoC) before Soc.step each step.
                self._capped = (
                    self._battery_terminal_v(self._bat_last_load)
                    <= self._vt_threshold
                )
            capped = self._capped
            mem_beta = self._mem_beta
            cluster_cache = []
            for k, batch in enumerate(self._clusters):
                ladder = batch.ladder
                # Frequency choice in pure index space (see _apply_governors).
                freq_index = ladder.size - 1 - ceiling_steps
                np.maximum(freq_index, 0, out=freq_index)
                if batch.external_index is not None:
                    if self._battery_mode:
                        binds = capped & (self._vt_ceiling < ladder[freq_index])
                    else:
                        binds = self._external_mhz < ladder[freq_index]
                    freq_index[binds] = batch.external_index
                if batch.fixed_index is not None:
                    np.minimum(freq_index, batch.fixed_index, out=freq_index)
                freq = ladder[freq_index]
                batch.freq = freq
                if adjust is not None:
                    batch.voltage_adjust = adjust
                voltage = (
                    batch.volt_table[self._rows, freq_index] + batch.voltage_adjust
                )
                base = batch.c_eff * voltage * voltage * (freq * 1e6)
                if mem_beta > 0.0:
                    # ClusterState._cpu_time_share / ops_per_second,
                    # element-wise: stall time is fixed at the top clock,
                    # CPU time scales 1/f.
                    ratio = mem_beta / (1.0 - mem_beta)
                    cpu_time = 1.0 / freq
                    mem_time = ratio / batch.max_freq
                    share = cpu_time / (cpu_time + mem_time)
                    per_core_dyn = base * (util * share)
                    per_core_rate = freq * 1e6 * batch.ipc
                    per_core_rate = 1.0 / (
                        1.0 / per_core_rate + ratio / batch.top_rate
                    )
                    per_core_ops = per_core_rate * util
                else:
                    per_core_dyn = base if util == 1.0 else base * util
                    per_core_ops = (freq * 1e6 * batch.ipc) * util
                # Left-to-right per-core accumulation, exactly as the serial
                # cluster sums its online cores (repeated addition, not a
                # multiply — they differ at the last ulp for 3+ cores).
                if k == 0 and any_offline:
                    online = np.maximum(0, batch.core_count - self._shd_offline)
                    self._online_big = online
                    dynamic = np.zeros(count)
                    retire = np.zeros(count)
                    for core in range(batch.core_count):
                        member = core < online
                        dynamic[member] += per_core_dyn[member]
                        retire[member] += per_core_ops[member]
                    soc_leak_cores = online
                else:
                    if k == 0:
                        self._online_big = self._online_big_full
                    dynamic = per_core_dyn.copy()
                    retire = per_core_ops.copy()
                    for _ in range(batch.core_count - 1):
                        dynamic += per_core_dyn
                        retire += per_core_ops
                    soc_leak_cores = batch.core_count
                volt_term = (voltage / batch.leak_vref) * np.exp(
                    batch.leak_volt_slope * (voltage - batch.leak_vref)
                )
                lv = batch.leak_coeff * volt_term
                leak_per_core = lv * temp_term
                soc_power += dynamic + leak_per_core * soc_leak_cores
                ops_rate_total += retire
                cluster_cache.append((dynamic, lv, soc_leak_cores))
            if self._gov_cacheable:
                self._gov_cache = (
                    cluster_cache, ops_rate_total.copy(), self._online_big
                )
        ops = ops_rate_total * dt

        # 5. OS: cycle steal (piecewise-constant, resampled per interval)
        # then residual background noise — one draw per unit per step, in
        # the serial order, from each unit's own stream.
        if self._steal_enabled:
            if now_max >= self._steal_next_min:
                due = now >= self._steal_until
                if due.any():
                    for i in np.flatnonzero(due):
                        sampled = float(
                            self._os_rng[i].normal(
                                self._steal_mean, self._steal_sigma
                            )
                        )
                        self._steal_frac[i] = min(max(sampled, 0.0), self._steal_max)
                        self._steal_until[i] = now[i] + self._steal_interval
                self._steal_next_min = float(self._steal_until.min())
            ops *= 1.0 - self._steal_frac
        if self._noise_enabled:
            noise = self._scr_noise
            bg_power = self._bg_power
            bg_sigma = self._bg_sigma
            draws = self._os_normal
            for i in range(count):
                noise[i] = bg_power + draws[i](0.0, bg_sigma)
            np.maximum(noise, 0.0, out=noise)
        else:
            noise = self._noise_const

        # 6. Rails, supply metering, thermal injection.
        load = soc_power + self._awake_idle + noise
        supply = load / self._efficiency
        if self._battery_mode:
            self._battery_draw_awake(supply, dt)
        else:
            current = supply / self._voltage
            self._elapsed += dt
            energy = supply * dt
            self._energy_win += energy
            self._energy_total += energy
            self._charge += current * dt
            np.maximum(self._peak, current, out=self._peak)
        power = self._power_buf
        power[:, self._idx_cpu] = soc_power
        power[:, self._idx_case] = 0.0
        power[:, self._idx_pkg] = supply - soc_power
        self._propagator.advance_batch(temps, power, dt)
        self._now_dev = now + dt
        self._now_max = now_max + dt
        self._ops_total += ops

        # 7. Events, decimated trace, tick.  Mitigation and hotplug state
        # only move when a policy poll fired, so the edge detectors (and the
        # clock-time materialisation they need) are skipped on quiet steps.
        clock_now = None
        if polled:
            online_total = self._online_totals()
            if (mit_steps != self._last_mit).any() or (
                online_total != self._last_online
            ).any():
                clock_now = self._clock_steps * dt
                self._record_events(clock_now, mit_steps, online_total)
        rec_mask = self._clock_steps % self._decimation == 0
        if rec_mask.any():
            if clock_now is None:
                clock_now = self._clock_steps * dt
            self._record_traces(
                np.flatnonzero(rec_mask), clock_now, ambient, supply, soc_power, 0.0
            )
        self._clock_steps += 1
        self._prev_supply = supply
        if self._invariants is not None:
            self._invariants.observe_awake(
                self._clock_steps * dt,
                self._phase,
                temps[:, self._idx_cpu],
                temps[:, self._idx_case],
                ambient,
                supply,
                self._energy_total,
                self._stw_steps,
                dt,
            )

    def _fast_forward(self, active: np.ndarray, window_s: float) -> None:
        """Advance the sleeping active cohort one poll window exactly."""
        dt = self._dt
        steps = round(window_s / dt)
        duration = steps * dt
        if self._chamber is not None:
            self._chamber.run_for_masked(
                active, self._room_temp, duration, self._prev_supply
            )
            ambient = self._chamber.air_temps_c
        else:
            ambient = self._room_ambient
        temps = self._temps
        temps[active, self._idx_ambient] = ambient[active]
        supply = self._asleep_w / self._efficiency
        if self._battery_mode:
            self._battery_draw_masked(active, supply, duration)
        else:
            current = supply / self._voltage
            self._elapsed[active] += duration
            energy = supply * duration
            self._energy_win[active] += energy
            self._energy_total[active] += energy
            self._charge[active] += current * duration
            self._peak[active] = np.maximum(self._peak[active], current)
        sub = temps[active]
        power = np.zeros_like(sub)
        power[:, self._idx_pkg] = supply
        self._propagator.advance_batch(sub, power, duration)
        temps[active] = sub
        self._now_dev[active] += duration
        # Upper-bound update: the true max may be inactive and not advance,
        # in which case the bound merely loosens (safe direction).
        self._now_max += duration
        self._clock_steps[active] += steps
        self._ff_windows[active] += 1
        self._ff_steps[active] += steps
        self._prev_supply[active] = supply
        # Macro windows always leave a trace sample at the poll boundary;
        # mitigation and hotplug cannot change while asleep, so no events.
        clock_now = self._clock_steps * dt
        supply_arr = np.full(self._count, supply)
        if self._invariants is not None:
            self._invariants.observe_asleep(
                active,
                clock_now,
                self._phase,
                temps[:, self._idx_cpu],
                ambient,
                supply,
                self._energy_total,
                duration,
            )
        self._record_traces(
            np.flatnonzero(active), clock_now, ambient, supply_arr,
            np.zeros(self._count), 1.0,
        )

    def _record_events(
        self, clock_now: np.ndarray, mit_steps: np.ndarray, online: np.ndarray
    ) -> None:
        for i in np.flatnonzero(mit_steps != self._last_mit):
            kind = (
                "throttle-step"
                if mit_steps[i] > self._last_mit[i]
                else "throttle-clear"
            )
            self.event_logs[i].log(float(clock_now[i]), kind, steps=int(mit_steps[i]))
            self._last_mit[i] = mit_steps[i]
        for i in np.flatnonzero(online != self._last_online):
            kind = "core-offline" if online[i] < self._last_online[i] else "core-online"
            self.event_logs[i].log(float(clock_now[i]), kind, online=int(online[i]))
            self._last_online[i] = online[i]

    def _record_traces(
        self,
        units: np.ndarray,
        clock_now: np.ndarray,
        ambient: np.ndarray,
        supply: np.ndarray,
        soc_power: np.ndarray,
        asleep: float,
    ) -> None:
        temps = self._temps
        data = np.empty((units.size, 9))
        data[:, 0] = temps[units, self._idx_cpu]
        data[:, 1] = temps[units, self._idx_case]
        data[:, 2] = ambient[units]
        data[:, 3] = supply[units]
        data[:, 4] = soc_power[units]
        data[:, 5] = self._clusters[0].freq[units]
        data[:, 6] = self._online_totals()[units]
        data[:, 7] = self._stw_steps[units]
        data[:, 8] = asleep
        times = clock_now[units]
        if self._invariants is not None:
            # Same-stamp re-records overwrite the previous row (see
            # Trace.append), so only strictly advancing stamps reach the
            # monotone-time checker — mirroring what the serial checker
            # sees, where an overwrite never grows the trace.
            fresh = times > self._last_trace_stamp[units]
            if fresh.all():
                self._invariants.observe_trace(units, times)
            elif fresh.any():
                self._invariants.observe_trace(units[fresh], times[fresh])
        self._last_trace_stamp[units] = times
        traces = self.traces
        for j, i in enumerate(units):
            traces[i].append(times[j], data[j])


class _ChamberView:
    """A cohort's private slice of a fleet-wide :class:`BatchedThermabox`.

    Chamber columns are fully independent — every update is elementwise
    per column — so the cohort's columns are detached into a narrow
    chamber at construction (each state array sliced out of the parent)
    and stepped at cohort width.  That is bit-identical to driving the
    cohort's columns through the parent's masked updates, but avoids
    paying full-fleet-width chamber math once per cohort per step.
    :meth:`writeback` scatters the final column state into the parent so
    post-run consumers (duty-cycle counters, elapsed time) see the whole
    fleet in one place again.
    """

    __slots__ = ("_parent", "_indices", "_box")

    _STATE = (
        "_air",
        "_element",
        "_time",
        "_next_control",
        "_heater",
        "_cooler",
        "_off_since",
        "_heater_seconds",
        "_cooler_seconds",
    )

    def __init__(self, parent: BatchedThermabox, indices: np.ndarray) -> None:
        self._parent = parent
        self._indices = indices
        box = BatchedThermabox(parent.config, count=int(indices.size))
        for name in self._STATE:
            setattr(box, name, getattr(parent, name)[indices])
        box._time_max = float(box._time.max())
        box._next_control_min = float(box._next_control.min())
        box._any_heater = bool(box._heater.any())
        box._any_cooler = bool(box._cooler.any())
        self._box = box

    @property
    def count(self) -> int:
        return self._box.count

    @property
    def air_temps_c(self) -> np.ndarray:
        return self._box.air_temps_c

    def step_masked(
        self, mask: np.ndarray, room_temp_c: float, dt: float, load_w: np.ndarray
    ) -> None:
        self._box.step_masked(mask, room_temp_c, dt, load_w)

    def run_for_masked(
        self,
        mask: np.ndarray,
        room_temp_c: float,
        duration_s: float,
        load_w: np.ndarray,
    ) -> None:
        self._box.run_for_masked(mask, room_temp_c, duration_s, load_w)

    def writeback(self) -> None:
        parent = self._parent
        for name in self._STATE:
            getattr(parent, name)[self._indices] = getattr(self._box, name)
        parent._time_max = max(parent._time_max, self._box._time_max)
        parent._next_control_min = float(parent._next_control.min())
        parent._any_heater = bool(parent._heater.any())
        parent._any_cooler = bool(parent._cooler.any())


class BatchedWorld:
    """A whole fleet — mixed device models included — advanced in lock-step.

    Units are grouped by device model into same-model cohort blocks
    (:class:`_CohortWorld`); each block shares one batched (Φ, Ψ)
    propagator application per step, so a mixed fleet advances through a
    block-diagonal update instead of falling back to per-unit worlds.
    Per-unit results come back in fleet order regardless of the cohort
    blocking, and every unit draws from its own serial-keyed RNG streams,
    so results are bit-identical to the serial path (within the BLAS
    summation budget of ``BATCH_SPEC``) for any model mix.

    A homogeneous fleet builds exactly one cohort and passes the chamber
    straight through; a mixed fleet hands each cohort a
    :class:`_ChamberView` over its own chamber columns.
    """

    def __init__(
        self,
        devices: Sequence[Device],
        room_temp_c: Union[float, np.ndarray],
        chamber: Optional[BatchedThermabox] = None,
        dt: float = 0.1,
        trace_decimation: int = 5,
        check_invariants: bool = False,
    ) -> None:
        if not devices:
            raise SimulationError("a batched world needs at least one unit")
        self.devices = list(devices)
        count = len(devices)
        self._count = count
        self._dt = dt
        groups: "dict[str, List[int]]" = {}
        for i, dev in enumerate(devices):
            groups.setdefault(dev.spec.name, []).append(i)
        self._cohorts: List[tuple] = []
        self._chamber_views: List[_ChamberView] = []
        if len(groups) == 1:
            indices = np.arange(count)
            self._cohorts.append(
                (
                    indices,
                    _CohortWorld(
                        self.devices,
                        room_temp_c,
                        chamber=chamber,
                        dt=dt,
                        trace_decimation=trace_decimation,
                        check_invariants=check_invariants,
                    ),
                )
            )
        else:
            room = np.asarray(room_temp_c, dtype=float)
            if room.ndim != 0 and room.shape != (count,):
                raise SimulationError(
                    "room_temp_c array must have one entry per unit"
                )
            if chamber is not None and chamber.count != count:
                raise SimulationError(
                    "chamber column count must match unit count"
                )
            for indices_list in groups.values():
                indices = np.array(indices_list)
                cohort_room = (
                    float(room) if room.ndim == 0 else room[indices]
                )
                cohort_chamber = (
                    _ChamberView(chamber, indices) if chamber is not None else None
                )
                if cohort_chamber is not None:
                    self._chamber_views.append(cohort_chamber)
                self._cohorts.append(
                    (
                        indices,
                        _CohortWorld(
                            [self.devices[i] for i in indices_list],
                            cohort_room,
                            chamber=cohort_chamber,
                            dt=dt,
                            trace_decimation=trace_decimation,
                            check_invariants=check_invariants,
                        ),
                    )
                )

    # -- fleet-order gather helpers -----------------------------------------

    def _gather(self, pull, dtype=float) -> np.ndarray:
        out = np.empty(self._count, dtype=dtype)
        for indices, world in self._cohorts:
            out[indices] = pull(world)
        return out

    def _gather_list(self, pull) -> list:
        out = [None] * self._count
        for indices, world in self._cohorts:
            items = pull(world)
            for j, i in enumerate(indices):
                out[i] = items[j]
        return out

    # -- protocol surface ---------------------------------------------------

    @property
    def count(self) -> int:
        """Number of units in the batch."""
        return self._count

    @property
    def dt(self) -> float:
        """Engine step, seconds."""
        return self._dt

    @property
    def traces(self) -> List[Trace]:
        """Per-unit iteration traces, fleet order."""
        return self._gather_list(lambda w: w.traces)

    @property
    def event_logs(self) -> List[EventLog]:
        """Per-unit iteration event logs, fleet order."""
        return self._gather_list(lambda w: w.event_logs)

    @property
    def cohort_splits(self) -> int:
        """Times any cohort's active set shrank mid-phase."""
        return sum(world.cohort_splits for _, world in self._cohorts)

    @property
    def ops_total(self) -> np.ndarray:
        """Per-unit work retired this iteration, ops."""
        return self._gather(lambda w: w.ops_total)

    @property
    def energy_drawn_j(self) -> np.ndarray:
        """Per-unit cumulative supply energy, joules."""
        return self._gather(lambda w: w.energy_drawn_j)

    @property
    def clock_now(self) -> np.ndarray:
        """Per-unit iteration clock time, seconds."""
        return self._gather(lambda w: w.clock_now)

    @property
    def looped_steps(self) -> np.ndarray:
        """Per-unit engine steps actually looped (clock minus macro steps)."""
        return self._gather(lambda w: w.looped_steps, dtype=np.int64)

    @property
    def fast_forward_steps(self) -> np.ndarray:
        """Per-unit clock steps covered by macro propagations."""
        return self._gather(lambda w: w.fast_forward_steps, dtype=np.int64)

    @property
    def fast_forward_windows(self) -> np.ndarray:
        """Per-unit macro windows taken this iteration."""
        return self._gather(lambda w: w.fast_forward_windows, dtype=np.int64)

    def ambient_now(self) -> np.ndarray:
        """Per-unit ambient the devices currently see, °C."""
        return self._gather(lambda w: w.ambient_now())

    def begin_iteration(self) -> None:
        """Reset per-iteration world state (the serial path's fresh World)."""
        for _, world in self._cohorts:
            world.begin_iteration()

    def acquire_wakelock(self) -> None:
        """Hold every unit awake."""
        for _, world in self._cohorts:
            world.acquire_wakelock()

    def release_wakelock(self) -> None:
        """Let every unit suspend."""
        for _, world in self._cohorts:
            world.release_wakelock()

    def start_load(
        self, utilization: float = 1.0, memory_boundedness: float = 0.0
    ) -> None:
        """Load every core on every unit (the π loop on all CPUs)."""
        for _, world in self._cohorts:
            world.start_load(utilization, memory_boundedness)

    def stop_load(self) -> None:
        """Stop the benchmark load on every unit."""
        for _, world in self._cohorts:
            world.stop_load()

    def set_fixed_frequency(self, freq_mhz: float) -> None:
        """Pin all clusters at their nearest ladder step below a frequency."""
        for _, world in self._cohorts:
            world.set_fixed_frequency(freq_mhz)

    def unconstrain_frequency(self) -> None:
        """Restore the performance governor."""
        for _, world in self._cohorts:
            world.unconstrain_frequency()

    def set_phase(self, name: Optional[str]) -> None:
        """Annotate every unit's trace with a protocol phase from now on."""
        for _, world in self._cohorts:
            world.set_phase(name)

    def close(self) -> None:
        """End any open phase annotation."""
        for _, world in self._cohorts:
            world.close()

    def run_for(self, duration_s: float) -> None:
        """Advance every unit, awake, for a fixed duration.

        Cohorts run sequentially — units never interact and chamber
        columns are independent, so block order cannot change any unit's
        trajectory.
        """
        for _, world in self._cohorts:
            world.run_for(duration_s)

    def run_cooldown(
        self, targets_c: np.ndarray, poll_s: float, timeout_s: float
    ) -> np.ndarray:
        """Cooldown every unit to its target; returns per-unit elapsed time."""
        targets = np.asarray(targets_c, dtype=float)
        elapsed = np.empty(self._count)
        for indices, world in self._cohorts:
            elapsed[indices] = world.run_cooldown(
                targets[indices], poll_s, timeout_s
            )
        return elapsed

    def run_asleep(self, duration_s: float) -> None:
        """Advance every unit, suspended, as a single exact macro window."""
        for _, world in self._cohorts:
            world.run_asleep(duration_s)

    def read_sensors(self) -> np.ndarray:
        """Poll every unit's CPU temperature sensor, one draw per unit."""
        return self._gather(lambda w: w.read_sensors())

    def finalize(self) -> None:
        """Write the batched state back into the per-unit Device objects."""
        for _, world in self._cohorts:
            world.finalize()
        for view in self._chamber_views:
            view.writeback()
