"""The world stepper: device + chamber + room, on one clock.

:class:`World` advances everything coherently each step:

1. the room's ambient profile sets the outside temperature;
2. the THERMABOX (if present) regulates its air against the room, absorbing
   the device's waste heat;
3. the device sees the chamber air (or the bare room) as its ambient and
   steps its SoC/thermal/OS state;
4. the trace records the channels the paper's figures plot.

Callers (the ACCUBENCH protocol) use :meth:`run_for` and :meth:`run_until`
to express phases, and :meth:`set_phase` to annotate the trace.

``run_for`` is the simulator's hot loop — a full campaign is millions of
steps — so it inlines :meth:`step`'s body with every invariant attribute
lookup hoisted to a local.  The two must stay behaviourally identical;
``tests/sim/test_engine.py`` asserts the equivalence.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.device.phone import Device, StepReport
from repro.errors import SimulationError
from repro.instruments.thermabox import Thermabox
from repro.obs.metrics import default_registry
from repro.sim.clock import SimClock
from repro.sim.events import EventLog
from repro.sim.trace import Trace
from repro.thermal.ambient import AmbientProfile, ConstantAmbient
from repro.units import PAPER_AMBIENT_C

#: Channels every world trace records.
TRACE_CHANNELS = (
    "cpu_temp",
    "case_temp",
    "ambient",
    "power",
    "soc_power",
    "freq",
    "online_cores",
    "throttle_steps",
    "asleep",
)


class StepObserver:
    """Interface for :meth:`World.attach_observer` observers.

    Subclassing is optional — any object with a matching ``on_step`` (and
    optionally ``on_attach``) works.  ``repro.check.invariants`` provides
    the canonical implementation.
    """

    def on_attach(self, world: "World") -> None:
        """Called once when attached, before any step is observed."""

    def on_step(
        self, world: "World", report: StepReport, ambient_c: float, dt: float
    ) -> None:
        """Called after every world advance (``dt`` spans macro windows)."""


class World:
    """One experiment's physical world."""

    def __init__(
        self,
        device: Device,
        room: Optional[AmbientProfile] = None,
        chamber: Optional[Thermabox] = None,
        dt: float = 0.1,
        trace_decimation: int = 5,
        sleep_fast_forward: bool = True,
    ) -> None:
        if trace_decimation < 1:
            raise SimulationError("trace_decimation must be at least 1")
        self.device = device
        self.room: AmbientProfile = room if room is not None else ConstantAmbient(
            PAPER_AMBIENT_C
        )
        self.chamber = chamber
        self.clock = SimClock(dt)
        self.trace = Trace(TRACE_CHANNELS)
        self.events = EventLog()
        self._decimation = trace_decimation
        self._sleep_fast_forward = sleep_fast_forward
        #: Poll windows advanced as single exact propagations so far.
        self.fast_forwards = 0
        #: Clock steps covered by those macro propagations (the clock's
        #: total includes them; subtracting yields steps actually looped).
        self.fast_forward_steps = 0
        #: Total work retired since world creation, ops.
        self.ops_total = 0.0
        self._last_report: Optional[StepReport] = None
        self._last_mitigation_steps = 0
        self._last_online = device.soc.online_cores()
        self._phase_name: Optional[str] = None
        #: Optional step observer (see :meth:`attach_observer`).  ``None``
        #: keeps ``run_for`` on its unobserved hot loop.
        self._observer: Optional["StepObserver"] = None
        # The big cluster's frequency is the figure-relevant one.  Resolve
        # its identity once — the first cluster in spec order, matching the
        # hard-limit hotplug convention in Soc.step — instead of trusting
        # dict iteration order on every sample.
        self._big_cluster_name = device.soc.clusters[0].spec.name

    @property
    def now(self) -> float:
        """Current world time, seconds."""
        return self.clock.now

    @property
    def ambient_c(self) -> float:
        """The ambient the device currently sees, °C."""
        if self.chamber is not None:
            return self.chamber.air_temp_c
        return self.room.temperature(self.now)

    @property
    def last_report(self) -> Optional[StepReport]:
        """The most recent device step report."""
        return self._last_report

    @property
    def phase(self) -> Optional[str]:
        """The protocol phase currently annotating the trace, if any."""
        return self._phase_name

    @property
    def observer(self) -> Optional["StepObserver"]:
        """The attached step observer, if any."""
        return self._observer

    def attach_observer(self, observer: "StepObserver") -> None:
        """Attach a step observer (e.g. a ``repro.check`` invariant suite).

        The observer's ``on_step(world, report, ambient_c, dt)`` is called
        after every advance — including fast-forwarded macro windows, where
        ``dt`` spans the whole window.  With an observer attached,
        ``run_for`` routes through :meth:`step` instead of its inlined hot
        loop; with none attached the hot loop is untouched, so the checks
        are zero-cost when disabled.
        """
        if self._observer is not None:
            raise SimulationError(
                "world already has an observer; detach it first"
            )
        on_attach = getattr(observer, "on_attach", None)
        if on_attach is not None:
            on_attach(self)
        self._observer = observer

    def detach_observer(self) -> Optional["StepObserver"]:
        """Remove and return the attached observer (``None`` if absent)."""
        observer = self._observer
        self._observer = None
        return observer

    def set_phase(self, name: Optional[str]) -> None:
        """Annotate the trace with a protocol phase from now on."""
        if self._phase_name is not None:
            self.trace.end_phase(self.now)
        self._phase_name = name
        if name is not None:
            self.trace.begin_phase(name, self.now)
            self.events.log(self.now, "phase", name=name)

    def close(self) -> None:
        """End any open phase annotation (end of experiment)."""
        self.set_phase(None)

    def step(self) -> StepReport:
        """Advance the world one clock step."""
        dt = self.clock.dt
        room_temp = self.room.temperature(self.now)
        if self.chamber is not None:
            waste_heat = (
                self._last_report.supply_power_w if self._last_report else 0.0
            )
            self.chamber.step(room_temp, dt, load_w=waste_heat)
            ambient = self.chamber.air_temp_c
        else:
            ambient = room_temp
        report = self.device.step(ambient, dt)
        self.ops_total += report.ops
        self._record_events(report)
        self._last_report = report
        if self.clock.steps % self._decimation == 0:
            self._record_trace(report, ambient)
        self.clock.tick()
        if self._observer is not None:
            self._observer.on_step(self, report, ambient, dt)
        return report

    def run_for(self, duration_s: float) -> None:
        """Advance the world for a fixed duration."""
        if duration_s <= 0:
            raise SimulationError("duration_s must be positive")
        clock = self.clock
        dt = clock.dt
        steps = round(duration_s / dt)
        if steps < 1:
            raise SimulationError("duration shorter than one clock step")
        if self._observer is not None:
            # Observed runs take the plain step() path: every step notifies
            # the observer, and the unobserved hot loop below stays free of
            # per-step checks.
            for _ in range(steps):
                self.step()
            return
        # Inlined step() body with invariant lookups hoisted out of the loop.
        chamber = self.chamber
        room_temperature = self.room.temperature
        device_step = self.device.step
        record_events = self._record_events
        record_trace = self._record_trace
        tick = clock.tick
        decimation = self._decimation
        step_count = clock.steps
        now = clock.now
        report = self._last_report
        for _ in range(steps):
            room_temp = room_temperature(now)
            if chamber is not None:
                chamber.step(
                    room_temp, dt, load_w=report.supply_power_w if report else 0.0
                )
                ambient = chamber.air_temp_c
            else:
                ambient = room_temp
            report = device_step(ambient, dt)
            self.ops_total += report.ops
            record_events(report)
            self._last_report = report
            if step_count % decimation == 0:
                record_trace(report, ambient)
            step_count += 1
            now = tick()

    def run_until(
        self,
        predicate: Callable[["World"], bool],
        check_every_s: float,
        timeout_s: float,
    ) -> float:
        """Advance until ``predicate(world)`` holds, checking periodically.

        Returns the elapsed time.  Raises :class:`SimulationError` on
        timeout — a stuck cooldown is an experiment failure, not a hang.

        While the device sleeps (cooldown, soak) and its thermal network
        uses the exact ``expm`` solver, each ``check_every_s`` window is
        advanced as a *single* zero-order-hold propagation instead of
        thousands of engine steps — the sleeping device's power draw is
        constant, so the macro step is exact.  Trace samples and event
        checks land at the poll boundaries, where the protocol observes
        the world anyway.
        """
        if check_every_s < self.clock.dt:
            raise SimulationError("check_every_s must be at least one clock step")
        device = self.device
        fast_forward_ok = self._sleep_fast_forward and device.thermal.is_exact
        started = self.now
        with default_registry().span(
            "engine.run_until", clock=lambda: self.now, phase=self._phase_name
        ):
            while True:
                if predicate(self):
                    return self.now - started
                if self.now - started >= timeout_s:
                    raise SimulationError(
                        f"run_until timed out after {timeout_s} s"
                    )
                if fast_forward_ok and device.is_asleep:
                    self._fast_forward(check_every_s)
                else:
                    self.run_for(check_every_s)

    def _fast_forward(self, window_s: float) -> None:
        """Advance one sleeping poll window as a single exact macro step."""
        clock = self.clock
        steps = round(window_s / clock.dt)
        duration = steps * clock.dt
        room_temp = self.room.temperature(clock.now)
        if self.chamber is not None:
            waste_heat = (
                self._last_report.supply_power_w if self._last_report else 0.0
            )
            self.chamber.run_for(room_temp, duration, load_w=waste_heat)
            ambient = self.chamber.air_temp_c
        else:
            ambient = room_temp
        # A sleeping device's step is linear in dt (constant supply draw,
        # linear thermal network), so one device step covers the window.
        report = self.device.step(ambient, duration)
        self.ops_total += report.ops
        self._record_events(report)
        self._last_report = report
        clock.advance(steps)
        self._record_trace(report, ambient)
        self.fast_forwards += 1
        self.fast_forward_steps += steps
        if self._observer is not None:
            self._observer.on_step(self, report, ambient, duration)

    # -- internals --------------------------------------------------------

    def _record_trace(self, report: StepReport, ambient: float) -> None:
        # Positional fast append; order must match TRACE_CHANNELS.
        self.trace.append(
            self.now,
            (
                report.cpu_temp_c,
                report.case_temp_c,
                ambient,
                report.supply_power_w,
                report.soc_power_w,
                report.frequencies_mhz[self._big_cluster_name],
                report.online_cores,
                self.device.soc.mitigation.ceiling_steps,
                1.0 if report.asleep else 0.0,
            ),
        )

    def _record_events(self, report: StepReport) -> None:
        steps = self.device.soc.mitigation.ceiling_steps
        if steps != self._last_mitigation_steps:
            kind = "throttle-step" if steps > self._last_mitigation_steps else "throttle-clear"
            self.events.log(self.now, kind, steps=steps)
            self._last_mitigation_steps = steps
        online = report.online_cores
        if online != self._last_online:
            kind = "core-offline" if online < self._last_online else "core-online"
            self.events.log(self.now, kind, online=online)
            self._last_online = online
