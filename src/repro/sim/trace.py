"""Time-series trace recording.

A :class:`Trace` is a set of synchronized named channels sampled on the
engine grid, plus labelled phase spans.  The paper's time-domain figures
(4, 5, 11, 12) are direct plots of such traces; its distribution analyses
(Section IV-B) are histograms over trace windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError, ConfigurationError


@dataclass(frozen=True)
class PhaseSpan:
    """A labelled time interval within a trace."""

    name: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ConfigurationError("phase end must not precede its start")

    @property
    def duration_s(self) -> float:
        """Span length, seconds."""
        return self.end_s - self.start_s

    def contains(self, time_s: float) -> bool:
        """Whether a time falls inside the span (start-inclusive)."""
        return self.start_s <= time_s < self.end_s


class Trace:
    """Synchronized named channels plus phase annotations."""

    def __init__(self, channels: Sequence[str]) -> None:
        if not channels:
            raise ConfigurationError("a trace needs at least one channel")
        if len(set(channels)) != len(channels):
            raise ConfigurationError("channel names must be unique")
        if "time" in channels:
            raise ConfigurationError("'time' is implicit; do not declare it")
        self._channels: Tuple[str, ...] = tuple(channels)
        self._times: List[float] = []
        self._data: Dict[str, List[float]] = {name: [] for name in channels}
        self._phases: List[PhaseSpan] = []
        self._open_phase: Optional[Tuple[str, float]] = None

    @property
    def channels(self) -> Tuple[str, ...]:
        """Declared channel names."""
        return self._channels

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time_s: float, **values: float) -> None:
        """Append one sample; every declared channel must be provided."""
        missing = set(self._channels) - set(values)
        extra = set(values) - set(self._channels)
        if missing or extra:
            raise ConfigurationError(
                f"record() mismatch; missing={sorted(missing)} extra={sorted(extra)}"
            )
        if self._times and time_s < self._times[-1]:
            raise ConfigurationError("samples must be appended in time order")
        self._times.append(time_s)
        for name, value in values.items():
            self._data[name].append(float(value))

    def times(self) -> np.ndarray:
        """Sample times, seconds."""
        return np.asarray(self._times)

    def column(self, name: str) -> np.ndarray:
        """One channel as an array."""
        if name == "time":
            return self.times()
        try:
            return np.asarray(self._data[name])
        except KeyError:
            raise AnalysisError(
                f"unknown channel {name!r}; channels: {', '.join(self._channels)}"
            ) from None

    # -- phases ---------------------------------------------------------

    def begin_phase(self, name: str, time_s: float) -> None:
        """Open a phase span (closing any span still open)."""
        if self._open_phase is not None:
            self.end_phase(time_s)
        self._open_phase = (name, time_s)

    def end_phase(self, time_s: float) -> None:
        """Close the currently open phase span."""
        if self._open_phase is None:
            raise AnalysisError("no phase is open")
        name, start = self._open_phase
        self._phases.append(PhaseSpan(name=name, start_s=start, end_s=time_s))
        self._open_phase = None

    @property
    def phases(self) -> Tuple[PhaseSpan, ...]:
        """All closed phase spans, in order."""
        return tuple(self._phases)

    def phase(self, name: str, occurrence: int = 0) -> PhaseSpan:
        """The n-th span with a given label."""
        matches = [span for span in self._phases if span.name == name]
        if occurrence >= len(matches):
            raise AnalysisError(
                f"phase {name!r} occurrence {occurrence} not found "
                f"({len(matches)} present)"
            )
        return matches[occurrence]

    def window(self, start_s: float, end_s: float, channel: str) -> np.ndarray:
        """Channel samples with ``start_s <= t < end_s``."""
        times = self.times()
        mask = (times >= start_s) & (times < end_s)
        return self.column(channel)[mask]

    def phase_column(self, phase_name: str, channel: str, occurrence: int = 0) -> np.ndarray:
        """Channel samples within one phase span."""
        span = self.phase(phase_name, occurrence)
        return self.window(span.start_s, span.end_s, channel)

    # -- summaries ------------------------------------------------------

    def mean(self, channel: str) -> float:
        """Mean of a channel over the whole trace."""
        column = self.column(channel)
        if column.size == 0:
            raise AnalysisError("trace is empty")
        return float(column.mean())

    def max(self, channel: str) -> float:
        """Maximum of a channel over the whole trace."""
        column = self.column(channel)
        if column.size == 0:
            raise AnalysisError("trace is empty")
        return float(column.max())

    def min(self, channel: str) -> float:
        """Minimum of a channel over the whole trace."""
        column = self.column(channel)
        if column.size == 0:
            raise AnalysisError("trace is empty")
        return float(column.min())

    def time_above(self, channel: str, threshold: float) -> float:
        """Total time a channel spends at or above a threshold, seconds.

        Section IV-B's "time spent at temperature" metric.  Assumes the
        uniform engine sampling grid.
        """
        times = self.times()
        if times.size < 2:
            return 0.0
        dt = float(times[1] - times[0])
        return float((self.column(channel) >= threshold).sum()) * dt

    def histogram(
        self, channel: str, bins: int = 20
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of a channel (counts, bin edges) — Figures 11/12."""
        column = self.column(channel)
        if column.size == 0:
            raise AnalysisError("trace is empty")
        return np.histogram(column, bins=bins)
