"""Time-series trace recording.

A :class:`Trace` is a set of synchronized named channels sampled on the
engine grid, plus labelled phase spans.  The paper's time-domain figures
(4, 5, 11, 12) are direct plots of such traces; its distribution analyses
(Section IV-B) are histograms over trace windows.

Storage is a single preallocated 2-D float buffer (one row per sample,
one column per channel plus the implicit time column) grown geometrically
— an append is two slice assignments, not per-channel list appends.  The
channel set is validated once at construction; the hot engine path appends
positionally via :meth:`append`, while :meth:`record` keeps the
keyword-checked API for protocol code and tests.  ``times()``/``column()``
hand out cached read-only array views invalidated on append, so repeated
``window()``/``mean()`` calls no longer re-convert the whole series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError, ConfigurationError

#: Starting sample capacity of a trace buffer (doubles as it fills).
INITIAL_CAPACITY = 512


@dataclass(frozen=True)
class PhaseSpan:
    """A labelled time interval within a trace."""

    name: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ConfigurationError("phase end must not precede its start")

    @property
    def duration_s(self) -> float:
        """Span length, seconds."""
        return self.end_s - self.start_s

    def contains(self, time_s: float) -> bool:
        """Whether a time falls inside the span (start-inclusive)."""
        return self.start_s <= time_s < self.end_s


class Trace:
    """Synchronized named channels plus phase annotations."""

    __slots__ = (
        "_channels",
        "_column_index",
        "_buffer",
        "_size",
        "_views",
        "_phases",
        "_open_phase",
        "_owner",
    )

    def __init__(
        self, channels: Sequence[str], capacity: int = INITIAL_CAPACITY
    ) -> None:
        if not channels:
            raise ConfigurationError("a trace needs at least one channel")
        if len(set(channels)) != len(channels):
            raise ConfigurationError("channel names must be unique")
        if "time" in channels:
            raise ConfigurationError("'time' is implicit; do not declare it")
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        self._channels: Tuple[str, ...] = tuple(channels)
        # Column 0 holds time; declared channels follow in order.
        self._column_index: Dict[str, int] = {
            name: column + 1 for column, name in enumerate(self._channels)
        }
        self._buffer = np.empty((capacity, len(self._channels) + 1))
        self._size = 0
        self._views: Dict[int, np.ndarray] = {}
        self._phases: List[PhaseSpan] = []
        self._open_phase: Optional[Tuple[str, float]] = None
        self._owner: Optional[Any] = None

    @classmethod
    def from_samples(
        cls,
        channels: Sequence[str],
        samples: np.ndarray,
        phases: Sequence[PhaseSpan] = (),
        open_phase: Optional[Tuple[str, float]] = None,
        owner: Optional[Any] = None,
    ) -> "Trace":
        """Adopt an existing ``(rows, len(channels) + 1)`` sample block.

        The attach half of zero-copy result transport: ``samples`` may be a
        view into memory the trace does not allocate (a shared-memory
        segment, a memmapped spill file), and ``owner`` is whatever object
        must stay alive for that memory to remain mapped — the trace holds
        it until the buffer is next grown or the trace is collected.  The
        block is adopted as-is (no copy); rows must already be in strictly
        increasing time order, which transported traces are by construction.
        """
        trace = cls(channels, capacity=1)
        if samples.ndim != 2 or samples.shape[1] != len(trace._channels) + 1:
            raise ConfigurationError(
                "sample block must be 2-D with one column per channel "
                f"plus time; got shape {samples.shape} for "
                f"{len(trace._channels)} channel(s)"
            )
        rows = samples.shape[0]
        if rows:
            trace._buffer = samples
            trace._size = rows
            trace._owner = owner
        trace._phases = list(phases)
        trace._open_phase = open_phase
        return trace

    @property
    def channels(self) -> Tuple[str, ...]:
        """Declared channel names."""
        return self._channels

    @property
    def open_phase(self) -> Optional[Tuple[str, float]]:
        """The ``(name, start_s)`` of a phase begun but not yet ended."""
        return self._open_phase

    def samples(self) -> np.ndarray:
        """The live ``(len(self), channels + 1)`` sample block (no copy).

        Column 0 is time; declared channels follow in order.  This is the
        transport/export surface — treat it as read-only unless you own
        the trace.
        """
        return self._buffer[: self._size]

    def __getstate__(self) -> Dict[str, Any]:
        # Pickle only live rows: capacity slack, cached views and any
        # foreign buffer owner never travel across a process boundary.
        return {
            "channels": self._channels,
            "samples": np.ascontiguousarray(self._buffer[: self._size]),
            "phases": list(self._phases),
            "open_phase": self._open_phase,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        restored = Trace.from_samples(
            state["channels"],
            state["samples"],
            phases=state["phases"],
            open_phase=state["open_phase"],
        )
        for slot in Trace.__slots__:
            setattr(self, slot, getattr(restored, slot))

    def __len__(self) -> int:
        return self._size

    def append(self, time_s: float, values: Sequence[float]) -> None:
        """Append one sample positionally: ``values`` ordered as ``channels``.

        The engine's fast path — no keyword packing, no per-call channel-set
        arithmetic.  ``values`` must carry exactly one entry per declared
        channel, in declaration order.
        """
        buffer = self._buffer
        size = self._size
        if size == buffer.shape[0]:
            buffer = self._grow()
        if size and time_s <= buffer[size - 1, 0]:
            if time_s < buffer[size - 1, 0]:
                raise ConfigurationError(
                    "samples must be appended in time order"
                )
            # Same-stamp re-record: a fast-forward macro window leaves a
            # sample at its end time, and when the next decimated step lands
            # on the same clock reading the fresher state supersedes it.
            # Overwriting keeps the time axis strictly increasing.
            row = buffer[size - 1]
            row[1:] = values
            if self._views:
                self._views.clear()
            return
        row = buffer[size]
        row[0] = time_s
        row[1:] = values
        self._size = size + 1
        if self._views:
            self._views.clear()

    def record(self, time_s: float, **values: float) -> None:
        """Append one sample; every declared channel must be provided."""
        channels = self._channels
        try:
            ordered = [values[name] for name in channels]
        except KeyError:
            missing = sorted(set(channels) - set(values))
            extra = sorted(set(values) - set(channels))
            raise ConfigurationError(
                f"record() mismatch; missing={missing} extra={extra}"
            ) from None
        if len(values) != len(channels):
            extra = sorted(set(values) - set(channels))
            raise ConfigurationError(
                f"record() mismatch; missing=[] extra={extra}"
            )
        self.append(time_s, ordered)

    def times(self) -> np.ndarray:
        """Sample times, seconds (read-only view)."""
        return self._column_view(0)

    def column(self, name: str) -> np.ndarray:
        """One channel as an array (read-only view)."""
        if name == "time":
            return self._column_view(0)
        try:
            index = self._column_index[name]
        except KeyError:
            raise AnalysisError(
                f"unknown channel {name!r}; channels: {', '.join(self._channels)}"
            ) from None
        return self._column_view(index)

    # -- phases ---------------------------------------------------------

    def begin_phase(self, name: str, time_s: float) -> None:
        """Open a phase span (closing any span still open)."""
        if self._open_phase is not None:
            self.end_phase(time_s)
        self._open_phase = (name, time_s)

    def end_phase(self, time_s: float) -> None:
        """Close the currently open phase span."""
        if self._open_phase is None:
            raise AnalysisError("no phase is open")
        name, start = self._open_phase
        self._phases.append(PhaseSpan(name=name, start_s=start, end_s=time_s))
        self._open_phase = None

    @property
    def phases(self) -> Tuple[PhaseSpan, ...]:
        """All closed phase spans, in order."""
        return tuple(self._phases)

    def phase(self, name: str, occurrence: int = 0) -> PhaseSpan:
        """The n-th span with a given label."""
        matches = [span for span in self._phases if span.name == name]
        if occurrence >= len(matches):
            raise AnalysisError(
                f"phase {name!r} occurrence {occurrence} not found "
                f"({len(matches)} present)"
            )
        return matches[occurrence]

    def window(self, start_s: float, end_s: float, channel: str) -> np.ndarray:
        """Channel samples with ``start_s <= t < end_s``."""
        times = self.times()
        mask = (times >= start_s) & (times < end_s)
        return self.column(channel)[mask]

    def phase_column(self, phase_name: str, channel: str, occurrence: int = 0) -> np.ndarray:
        """Channel samples within one phase span."""
        span = self.phase(phase_name, occurrence)
        return self.window(span.start_s, span.end_s, channel)

    # -- summaries ------------------------------------------------------

    def mean(self, channel: str) -> float:
        """Mean of a channel over the whole trace."""
        column = self.column(channel)
        if column.size == 0:
            raise AnalysisError("trace is empty")
        return float(column.mean())

    def max(self, channel: str) -> float:
        """Maximum of a channel over the whole trace."""
        column = self.column(channel)
        if column.size == 0:
            raise AnalysisError("trace is empty")
        return float(column.max())

    def min(self, channel: str) -> float:
        """Minimum of a channel over the whole trace."""
        column = self.column(channel)
        if column.size == 0:
            raise AnalysisError("trace is empty")
        return float(column.min())

    def time_above(self, channel: str, threshold: float) -> float:
        """Total time a channel spends at or above a threshold, seconds.

        Section IV-B's "time spent at temperature" metric.  Each sample
        owns the interval up to the next sample (the last sample reuses the
        preceding spacing), so phase gaps and non-uniform decimation are
        weighted by the actual timestamps instead of assuming the spacing
        of the first two samples holds throughout.
        """
        times = self.times()
        if times.size < 2:
            return 0.0
        deltas = np.empty(times.size)
        np.subtract(times[1:], times[:-1], out=deltas[:-1])
        deltas[-1] = deltas[-2]
        above = self.column(channel) >= threshold
        return float(deltas[above].sum())

    def histogram(
        self, channel: str, bins: int = 20
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of a channel (counts, bin edges) — Figures 11/12."""
        column = self.column(channel)
        if column.size == 0:
            raise AnalysisError("trace is empty")
        return np.histogram(column, bins=bins)

    # -- internals ------------------------------------------------------

    def _column_view(self, index: int) -> np.ndarray:
        view = self._views.get(index)
        if view is None:
            view = self._buffer[: self._size, index]
            view.setflags(write=False)
            self._views[index] = view
        return view

    def _grow(self) -> np.ndarray:
        grown = np.empty((self._buffer.shape[0] * 2, self._buffer.shape[1]))
        grown[: self._size] = self._buffer[: self._size]
        self._buffer = grown
        # Growth copies the samples onto the heap, so a foreign buffer
        # (shared-memory segment, spill memmap) can be released now.
        self._owner = None
        return grown
