"""Discrete event logging.

Where traces record continuous channels, the event log records the moments
that explain them: throttle steps, core shutdowns, protocol phase
transitions, chamber actuator flips.  Figure 1's "one CPU core is shut
down" annotation is an event; the temperature curve around it is a trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class Event:
    """One logged occurrence.

    Attributes
    ----------
    time_s:
        Simulation time of the event.
    kind:
        Event category, e.g. ``"throttle-step"`` or ``"phase"``.
    detail:
        Free-form payload describing the event.
    """

    time_s: float
    kind: str
    detail: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch one detail field."""
        for name, value in self.detail:
            if name == key:
                return value
        return default

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form of this event (the JSONL exporter's
        line payload)."""
        return {
            "time_s": self.time_s,
            "kind": self.kind,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Event":
        """Rebuild an event from :meth:`to_dict` output.

        Detail keys are re-sorted, matching how :meth:`EventLog.log`
        normalizes them — so the round-trip is exact.
        """
        return cls(
            time_s=payload["time_s"],
            kind=payload["kind"],
            detail=tuple(sorted(payload.get("detail", {}).items())),
        )


class EventLog:
    """Append-only, time-ordered event log."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def log(self, time_s: float, kind: str, **detail: Any) -> Event:
        """Record an event and return it."""
        event = Event(time_s=time_s, kind=kind, detail=tuple(sorted(detail.items())))
        self._events.append(event)
        return event

    def of_kind(self, kind: str) -> List[Event]:
        """All events of one category, in time order."""
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of one category."""
        return sum(1 for event in self._events if event.kind == kind)

    def first(self, kind: str) -> Event:
        """The earliest event of a category.

        Raises :class:`IndexError` if none was logged.
        """
        return self.of_kind(kind)[0]

    def kinds(self) -> Dict[str, int]:
        """Histogram of event categories."""
        histogram: Dict[str, int] = {}
        for event in self._events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram
