"""Ambient-temperature profiles.

Ambient temperature is an input, not a constant: the paper shows 25–30% more
energy for the same work at higher ambient (Figure 2), and its THERMABOX
exists precisely to pin ambient at 26 ± 0.5 °C.  Profiles here describe how
the *room* behaves; the chamber model (``repro.instruments.thermabox``)
regulates against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Tuple

from repro.errors import ConfigurationError


class AmbientProfile(Protocol):
    """Anything that can report an ambient temperature at a sim time."""

    def temperature(self, time_s: float) -> float:
        """Ambient temperature in °C at ``time_s`` seconds."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ConstantAmbient:
    """A perfectly steady ambient."""

    temp_c: float

    def temperature(self, time_s: float) -> float:
        """Ambient temperature (constant), °C."""
        return self.temp_c


@dataclass(frozen=True)
class StepAmbient:
    """Ambient that jumps from one temperature to another at ``step_at_s``."""

    before_c: float
    after_c: float
    step_at_s: float

    def temperature(self, time_s: float) -> float:
        """Ambient temperature, °C."""
        return self.before_c if time_s < self.step_at_s else self.after_c


@dataclass(frozen=True)
class RampAmbient:
    """Ambient that ramps linearly between two temperatures."""

    start_c: float
    end_c: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")

    def temperature(self, time_s: float) -> float:
        """Ambient temperature, °C."""
        frac = min(max(time_s / self.duration_s, 0.0), 1.0)
        return self.start_c + frac * (self.end_c - self.start_c)


@dataclass(frozen=True)
class DiurnalAmbient:
    """A day/night sinusoid — the uncontrolled room a crowdsourced
    benchmark (paper §VI) would run in."""

    mean_c: float
    amplitude_c: float
    period_s: float = 86400.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.amplitude_c < 0:
            raise ConfigurationError("amplitude_c must be non-negative")
        if self.period_s <= 0:
            raise ConfigurationError("period_s must be positive")

    def temperature(self, time_s: float) -> float:
        """Ambient temperature, °C."""
        angle = 2.0 * math.pi * (time_s + self.phase_s) / self.period_s
        return self.mean_c + self.amplitude_c * math.sin(angle)


def sweep(start_c: float, stop_c: float, count: int) -> Tuple[ConstantAmbient, ...]:
    """Evenly spaced constant ambients for parameter sweeps (Figure 2)."""
    if count < 2:
        raise ConfigurationError("a sweep needs at least two points")
    step = (stop_c - start_c) / (count - 1)
    return tuple(ConstantAmbient(start_c + i * step) for i in range(count))
