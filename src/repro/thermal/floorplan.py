"""Die floorplan thermal model (Therminator-lite).

The paper's related work includes Therminator [25], a full-device thermal
simulator producing chip temperature maps.  The campaign simulator uses a
lumped "cpu" hotspot node for speed; this module provides the detailed
view that justifies it: a 2-D conduction grid over the die floorplan,
resolving per-core hotspots, lateral spreading and the gradient between a
busy core and the die average.

Physics: thin-die conduction.  Each grid cell stores heat
(``ρ·c_p·p²·t``), conducts laterally to its four neighbours
(``G = k·t`` for square cells), and sinks vertically into the package
through an effective heat-transfer coefficient.  Silicon constants are
standard (k = 120 W/m·K for a thinned die, ρ = 2330 kg/m³,
c_p = 700 J/kg·K).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError

#: Thermal conductivity of thinned silicon, W/(m·K).
SILICON_K = 120.0

#: Density × specific heat of silicon, J/(m³·K).
SILICON_RHO_CP = 2330.0 * 700.0

#: Default die thickness, metres (a thinned mobile die).
DEFAULT_THICKNESS_M = 0.3e-3

#: Default die-to-package effective heat-transfer coefficient, W/(m²·K).
DEFAULT_H_PACKAGE = 18_000.0


@dataclass(frozen=True)
class Block:
    """One floorplan block in normalized die coordinates.

    Attributes
    ----------
    name:
        Block name, e.g. ``"core0"`` or ``"l2"``.
    x, y:
        Lower-left corner, as fractions of die width/height in [0, 1].
    width, height:
        Extent, as fractions of die width/height.
    """

    name: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("block name must be non-empty")
        for value in (self.x, self.y):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{self.name}: corner must be in [0, 1)")
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(f"{self.name}: extent must be positive")
        if self.x + self.width > 1.0 + 1e-9 or self.y + self.height > 1.0 + 1e-9:
            raise ConfigurationError(f"{self.name}: block exceeds the die")


@dataclass(frozen=True)
class Floorplan:
    """A die outline with named blocks.

    Attributes
    ----------
    die_width_m / die_height_m:
        Physical die size, metres.
    blocks:
        The named power-dissipating regions.
    """

    die_width_m: float
    die_height_m: float
    blocks: Tuple[Block, ...]

    def __post_init__(self) -> None:
        if self.die_width_m <= 0 or self.die_height_m <= 0:
            raise ConfigurationError("die dimensions must be positive")
        if not self.blocks:
            raise ConfigurationError("a floorplan needs at least one block")
        names = [block.name for block in self.blocks]
        if len(set(names)) != len(names):
            raise ConfigurationError("block names must be unique")

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        for candidate in self.blocks:
            if candidate.name == name:
                return candidate
        known = ", ".join(b.name for b in self.blocks)
        raise ConfigurationError(f"unknown block {name!r}; blocks: {known}")


def sd800_floorplan() -> Floorplan:
    """A plausible SD-800-class floorplan: four cores in a row over a
    shared L2, with the uncore (memory controller, modem glue) beside."""
    core_w = 0.17
    cores = tuple(
        Block(name=f"core{i}", x=0.04 + i * (core_w + 0.02), y=0.62,
              width=core_w, height=0.33)
        for i in range(4)
    )
    return Floorplan(
        die_width_m=9.0e-3,
        die_height_m=9.0e-3,
        blocks=cores + (
            Block(name="l2", x=0.04, y=0.40, width=0.72, height=0.18),
            Block(name="uncore", x=0.04, y=0.04, width=0.92, height=0.32),
        ),
    )


class GridThermalModel:
    """Explicit 2-D conduction over the die, sinking into the package."""

    def __init__(
        self,
        floorplan: Floorplan,
        grid: Tuple[int, int] = (24, 24),
        thickness_m: float = DEFAULT_THICKNESS_M,
        h_package: float = DEFAULT_H_PACKAGE,
        initial_temp_c: float = 25.0,
    ) -> None:
        nx, ny = grid
        if nx < 2 or ny < 2:
            raise ConfigurationError("grid must be at least 2x2")
        if thickness_m <= 0:
            raise ConfigurationError("thickness_m must be positive")
        if h_package <= 0:
            raise ConfigurationError("h_package must be positive")
        self.floorplan = floorplan
        self._nx, self._ny = nx, ny
        self._dx = floorplan.die_width_m / nx
        self._dy = floorplan.die_height_m / ny
        self._thickness = thickness_m
        cell_area = self._dx * self._dy
        self._cell_capacity = SILICON_RHO_CP * cell_area * thickness_m
        # Lateral conductances (uniform grid): G = k · t · (span / pitch).
        self._gx = SILICON_K * thickness_m * self._dy / self._dx
        self._gy = SILICON_K * thickness_m * self._dx / self._dy
        self._gv = h_package * cell_area
        self._temps = np.full((ny, nx), float(initial_temp_c))
        self._masks = {
            block.name: self._block_mask(block) for block in floorplan.blocks
        }
        # Explicit stability: dt < C / (sum of conductances per cell).
        worst = 2.0 * self._gx + 2.0 * self._gy + self._gv
        self._max_step = 0.5 * self._cell_capacity / worst

    def _block_mask(self, block: Block) -> np.ndarray:
        xs = (np.arange(self._nx) + 0.5) / self._nx
        ys = (np.arange(self._ny) + 0.5) / self._ny
        in_x = (xs >= block.x) & (xs < block.x + block.width)
        in_y = (ys >= block.y) & (ys < block.y + block.height)
        mask = np.outer(in_y, in_x)
        if not mask.any():
            raise ConfigurationError(
                f"block {block.name!r} covers no grid cells; refine the grid"
            )
        return mask

    @property
    def max_stable_step_s(self) -> float:
        """Largest explicit sub-step the solver will take, seconds."""
        return self._max_step

    def step(
        self,
        block_powers_w: Mapping[str, float],
        package_temp_c: float,
        dt: float,
    ) -> None:
        """Advance the die by ``dt`` seconds.

        Block power spreads uniformly over the block's cells; the package
        under the die is held at ``package_temp_c`` for the step.
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        power = np.zeros_like(self._temps)
        for name, watts in block_powers_w.items():
            if name not in self._masks:
                raise ConfigurationError(f"unknown block {name!r}")
            mask = self._masks[name]
            power[mask] += watts / mask.sum()

        substeps = max(1, int(np.ceil(dt / self._max_step)))
        h = dt / substeps
        for _ in range(substeps):
            temps = self._temps
            flux = np.zeros_like(temps)
            flux[:, :-1] += self._gx * (temps[:, 1:] - temps[:, :-1])
            flux[:, 1:] += self._gx * (temps[:, :-1] - temps[:, 1:])
            flux[:-1, :] += self._gy * (temps[1:, :] - temps[:-1, :])
            flux[1:, :] += self._gy * (temps[:-1, :] - temps[1:, :])
            flux += self._gv * (package_temp_c - temps)
            self._temps = temps + h * (power + flux) / self._cell_capacity

    # -- readouts ----------------------------------------------------------

    def block_temp_c(self, name: str) -> float:
        """Mean temperature of one block, °C."""
        if name not in self._masks:
            raise ConfigurationError(f"unknown block {name!r}")
        return float(self._temps[self._masks[name]].mean())

    def block_peak_c(self, name: str) -> float:
        """Peak temperature within one block, °C."""
        if name not in self._masks:
            raise ConfigurationError(f"unknown block {name!r}")
        return float(self._temps[self._masks[name]].max())

    def die_mean_c(self) -> float:
        """Area-mean die temperature, °C (the lumped model's 'cpu' node)."""
        return float(self._temps.mean())

    def hotspot_c(self) -> float:
        """Hottest cell on the die, °C."""
        return float(self._temps.max())

    def temperature_map(self) -> np.ndarray:
        """A copy of the (ny, nx) cell-temperature array, °C."""
        return self._temps.copy()

    def settle(
        self,
        block_powers_w: Mapping[str, float],
        package_temp_c: float,
        duration_s: float = 5.0,
        dt: float = 0.05,
    ) -> None:
        """Run to (near) steady state under constant power."""
        steps = max(1, int(duration_s / dt))
        for _ in range(steps):
            self.step(block_powers_w, package_temp_c, dt)

    def hotspot_resistance_k_per_w(
        self, block: str, watts: float = 1.0, package_temp_c: float = 45.0
    ) -> float:
        """Steady-state hotspot rise per watt for one busy block, K/W.

        This is the quantity the lumped simulator abstracts as its
        ``r_cpu_pkg`` hotspot resistance; comparing the two grounds the
        calibrated values (see docs/calibration.md).
        """
        if watts <= 0:
            raise ConfigurationError("watts must be positive")
        probe = GridThermalModel(
            self.floorplan,
            grid=(self._nx, self._ny),
            thickness_m=self._thickness,
            h_package=self._gv / (self._dx * self._dy),
            initial_temp_c=package_temp_c,
        )
        probe.settle({block: watts}, package_temp_c, duration_s=8.0)
        return (probe.block_peak_c(block) - package_temp_c) / watts
