"""Lumped-parameter thermal modelling.

Smartphones are passively cooled: all heat leaves through the case.  A small
RC network (die → package → battery/case → ambient) captures the dynamics
that drive thermal throttling — seconds-scale die heating, minutes-scale case
soak — which is exactly the behaviour the ACCUBENCH warmup and cooldown
phases exist to normalize.
"""

from repro.thermal.ambient import (
    AmbientProfile,
    ConstantAmbient,
    DiurnalAmbient,
    RampAmbient,
    StepAmbient,
    sweep,
)
from repro.thermal.floorplan import (
    Block,
    Floorplan,
    GridThermalModel,
    sd800_floorplan,
)
from repro.thermal.integrator import StableEuler
from repro.thermal.network import ThermalLink, ThermalNetwork, ThermalNode
from repro.thermal.propagator import ExpmPropagator
from repro.thermal.sensors import TemperatureSensor
from repro.thermal.skin import SkinModel, SkinThrottle, SkinThrottleSpec

__all__ = [
    "AmbientProfile",
    "Block",
    "Floorplan",
    "GridThermalModel",
    "ConstantAmbient",
    "DiurnalAmbient",
    "ExpmPropagator",
    "RampAmbient",
    "SkinModel",
    "SkinThrottle",
    "SkinThrottleSpec",
    "StableEuler",
    "StepAmbient",
    "TemperatureSensor",
    "ThermalLink",
    "ThermalNetwork",
    "ThermalNode",
    "sd800_floorplan",
    "sweep",
]
