"""Skin (case-surface) temperature and comfort limits.

The paper's related work measures what users actually feel: skin
temperature (Straume et al. [21]) and its role in user-centric thermal
management (Mercati et al. [22]).  Phones of the studied era increasingly
throttled on *skin* estimates, not just die temperature — a policy with
very different dynamics, because the case responds over minutes, not
seconds.

The model: the touchable surface sits between the case node and the
ambient/hand through a thin contact layer,

    T_skin = T_case − (T_case − T_ambient) · R_surface / (R_surface + R_contact)

with standard comfort thresholds from the handheld-ergonomics literature
(warm ≈ 40 °C, hot ≈ 45 °C for plastic; metal feels hotter at equal
temperature, captured by a material factor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Skin-contact comfort thresholds for plastic surfaces, °C.
COMFORT_WARM_C = 40.0
COMFORT_HOT_C = 45.0


@dataclass(frozen=True)
class SkinModel:
    """Surface-temperature estimate from the case node.

    Attributes
    ----------
    contact_resistance:
        Case-to-surface thermal resistance, K/W-normalized fraction of the
        surface film; expressed as the fraction of the case-to-ambient
        temperature drop that happens *inside* the case wall (0 = surface
        is exactly case temperature, 1 = surface is exactly ambient).
    material_feel_factor:
        Perceived-temperature multiplier on the rise above skin-neutral
        (33 °C): ~1.0 for plastic, ~1.25 for metal (higher effusivity
        conducts heat into the finger faster).
    """

    contact_resistance: float = 0.35
    material_feel_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.contact_resistance < 1.0:
            raise ConfigurationError("contact_resistance must be within [0, 1)")
        if self.material_feel_factor <= 0:
            raise ConfigurationError("material_feel_factor must be positive")

    def surface_temp_c(self, case_temp_c: float, ambient_c: float) -> float:
        """Touchable surface temperature, °C."""
        return case_temp_c - (case_temp_c - ambient_c) * self.contact_resistance

    def perceived_temp_c(self, case_temp_c: float, ambient_c: float) -> float:
        """What the surface *feels* like, material effects included, °C."""
        neutral = 33.0  # skin-neutral contact temperature
        surface = self.surface_temp_c(case_temp_c, ambient_c)
        return neutral + (surface - neutral) * self.material_feel_factor

    def comfort_level(self, case_temp_c: float, ambient_c: float) -> str:
        """Classify the surface: ``"comfortable"``, ``"warm"`` or ``"hot"``."""
        felt = self.perceived_temp_c(case_temp_c, ambient_c)
        if felt >= COMFORT_HOT_C:
            return "hot"
        if felt >= COMFORT_WARM_C:
            return "warm"
        return "comfortable"


@dataclass(frozen=True)
class SkinThrottleSpec:
    """Immutable configuration for a :class:`SkinThrottle` (device catalogs
    hold specs; each built device gets fresh mutable state)."""

    contact_resistance: float = 0.35
    material_feel_factor: float = 1.0
    throttle_surface_c: float = 41.0
    clear_surface_c: float = 38.5
    poll_interval_s: float = 20.0
    max_steps: int = 8

    def build(self) -> "SkinThrottle":
        """Instantiate the policy with fresh state."""
        return SkinThrottle(
            skin_model=SkinModel(
                contact_resistance=self.contact_resistance,
                material_feel_factor=self.material_feel_factor,
            ),
            throttle_surface_c=self.throttle_surface_c,
            clear_surface_c=self.clear_surface_c,
            poll_interval_s=self.poll_interval_s,
            max_steps=self.max_steps,
        )


@dataclass
class SkinThrottle:
    """Skin-temperature mitigation: cap frequency when the surface runs hot.

    Unlike the die-temperature stepwise loop (seconds-scale), skin policies
    poll slowly and step conservatively — the case integrates over minutes,
    so reacting fast just oscillates.

    Attributes
    ----------
    skin_model:
        How surface temperature is estimated from the case node.
    throttle_surface_c:
        Estimated surface temperature that triggers a step down.
    clear_surface_c:
        Surface temperature below which a step is returned.
    poll_interval_s:
        Policy sampling period (tens of seconds on shipping devices).
    max_steps:
        Deepest allowed ceiling reduction.
    """

    skin_model: SkinModel
    throttle_surface_c: float = 41.0
    clear_surface_c: float = 38.5
    poll_interval_s: float = 20.0
    max_steps: int = 8

    def __post_init__(self) -> None:
        if self.clear_surface_c >= self.throttle_surface_c:
            raise ConfigurationError(
                "clear_surface_c must be below throttle_surface_c"
            )
        if self.poll_interval_s <= 0:
            raise ConfigurationError("poll_interval_s must be positive")
        if self.max_steps < 1:
            raise ConfigurationError("max_steps must be at least 1")
        self._steps = 0
        self._next_poll_s = 0.0

    @property
    def steps(self) -> int:
        """Current ceiling reduction, ladder steps."""
        return self._steps

    def reset(self) -> None:
        """Clear mitigation state."""
        self._steps = 0
        self._next_poll_s = 0.0

    def update(self, case_temp_c: float, ambient_c: float, now_s: float) -> int:
        """Advance the policy; returns the ceiling reduction in steps."""
        while now_s >= self._next_poll_s:
            self._next_poll_s += self.poll_interval_s
            surface = self.skin_model.surface_temp_c(case_temp_c, ambient_c)
            if surface >= self.throttle_surface_c:
                self._steps = min(self._steps + 1, self.max_steps)
            elif surface <= self.clear_surface_c:
                self._steps = max(self._steps - 1, 0)
        return self._steps
