"""Lumped-parameter (RC) thermal networks.

A :class:`ThermalNetwork` is a set of nodes with heat capacities joined by
thermal resistances.  Boundary nodes (infinite capacity) hold a forced
temperature — the ambient, or a thermal chamber's air.  Heat flows follow

    C_i · dT_i/dt = P_i + Σ_j (T_j − T_i) / R_ij

integrated by a pluggable solver: explicit Euler with automatic
sub-stepping for stability (:mod:`repro.thermal.integrator`, the default)
or the exact zero-order-hold matrix-exponential propagator
(:mod:`repro.thermal.propagator`, ``solver="expm"``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.thermal.integrator import StableEuler
from repro.thermal.propagator import ExpmPropagator

#: Accepted ``ThermalNetwork`` solver names.
SOLVERS = ("euler", "expm")


@dataclass(frozen=True)
class ThermalNode:
    """One thermal mass.

    Attributes
    ----------
    name:
        Unique node name, e.g. ``"cpu"`` or ``"case"``.
    heat_capacity:
        Heat capacity in J/K.  ``math.inf`` marks a boundary node whose
        temperature is externally forced (ambient air, chamber air).
    """

    name: str
    heat_capacity: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node name must be non-empty")
        if not (self.heat_capacity > 0):
            raise ConfigurationError(
                f"node {self.name!r}: heat_capacity must be positive (or inf)"
            )

    @property
    def is_boundary(self) -> bool:
        """True if this node's temperature is externally forced."""
        return math.isinf(self.heat_capacity)


@dataclass(frozen=True)
class ThermalLink:
    """A thermal resistance between two nodes.

    Attributes
    ----------
    node_a, node_b:
        Names of the joined nodes.
    resistance:
        Thermal resistance in K/W, strictly positive.
    """

    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ConfigurationError("a link cannot join a node to itself")
        if self.resistance <= 0:
            raise ConfigurationError("link resistance must be positive")

    @property
    def conductance(self) -> float:
        """Thermal conductance in W/K."""
        return 1.0 / self.resistance


class ThermalNetwork:
    """A mutable thermal state over a fixed node/link topology."""

    def __init__(
        self,
        nodes: Iterable[ThermalNode],
        links: Iterable[ThermalLink],
        initial_temp_c: float = 25.0,
        initial_temps_c: Optional[Mapping[str, float]] = None,
        solver: str = "euler",
    ) -> None:
        if solver not in SOLVERS:
            raise ConfigurationError(
                f"unknown solver {solver!r}; choose one of {', '.join(SOLVERS)}"
            )
        self._nodes: Tuple[ThermalNode, ...] = tuple(nodes)
        if not self._nodes:
            raise ConfigurationError("a network needs at least one node")
        names = [node.name for node in self._nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("node names must be unique")
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}

        size = len(self._nodes)
        conductance = np.zeros((size, size))
        self._links: Tuple[ThermalLink, ...] = tuple(links)
        for link in self._links:
            for endpoint in (link.node_a, link.node_b):
                if endpoint not in self._index:
                    raise ConfigurationError(
                        f"link references unknown node {endpoint!r}"
                    )
            a, b = self._index[link.node_a], self._index[link.node_b]
            conductance[a, b] += link.conductance
            conductance[b, a] += link.conductance
        self._conductance = conductance
        self._row_conductance = conductance.sum(axis=1)

        self._capacity = np.array([node.heat_capacity for node in self._nodes])
        self._boundary = np.array([node.is_boundary for node in self._nodes])
        if not self._boundary.any():
            raise ConfigurationError(
                "a network needs at least one boundary (infinite-capacity) node"
            )

        self._temps = np.full(size, float(initial_temp_c))
        if initial_temps_c:
            for name, temp in initial_temps_c.items():
                self.set_temperature(name, temp)

        self._power_scratch = np.zeros(size)
        self._rate_scratch = np.empty(size)
        self._inflow_scratch = np.empty(size)

        finite = ~self._boundary
        with np.errstate(divide="ignore"):
            rates = np.where(
                finite & (self._row_conductance > 0),
                self._row_conductance / self._capacity,
                0.0,
            )
        self._integrator = StableEuler(max_rate=float(rates.max()))
        self._solver = solver
        self._propagator: Optional[ExpmPropagator] = (
            ExpmPropagator(self._conductance, self._capacity, self._boundary)
            if solver == "expm"
            else None
        )

    @property
    def solver(self) -> str:
        """The active solver name (``"euler"`` or ``"expm"``)."""
        return self._solver

    @property
    def is_exact(self) -> bool:
        """True if a step of *any* size is an exact ZOH propagation —
        what the engine's sleep fast-forward requires."""
        return self._propagator is not None

    @property
    def propagator(self) -> Optional[ExpmPropagator]:
        """The exact propagator, when the ``expm`` solver is active."""
        return self._propagator

    @property
    def node_names(self) -> Tuple[str, ...]:
        """Node names in index order."""
        return tuple(node.name for node in self._nodes)

    @property
    def links(self) -> Tuple[ThermalLink, ...]:
        """The network's links."""
        return self._links

    def temperature(self, name: str) -> float:
        """Current temperature of a node, °C."""
        return float(self._temps[self._node_index(name)])

    def node_index(self, name: str) -> int:
        """Stable index of a node, for the ``*_at`` fast-path accessors."""
        return self._node_index(name)

    def temperature_at(self, index: int) -> float:
        """Current temperature of the node at ``index``, °C."""
        return float(self._temps[index])

    def set_temperature_at(self, index: int, temp_c: float) -> None:
        """Force the temperature of the node at ``index`` (fast path)."""
        self._temps[index] = temp_c

    def temperatures(self) -> Dict[str, float]:
        """Snapshot of all node temperatures, °C."""
        return {node.name: float(t) for node, t in zip(self._nodes, self._temps)}

    def set_temperature(self, name: str, temp_c: float) -> None:
        """Force a node's temperature (used for boundary nodes and resets)."""
        self._temps[self._node_index(name)] = float(temp_c)

    def settle_to(self, temp_c: float) -> None:
        """Force every node to one temperature (long idle soak shortcut)."""
        self._temps[:] = float(temp_c)

    def step(self, powers_w: Mapping[str, float], dt: float) -> None:
        """Advance the network by ``dt`` seconds with the given heat inputs.

        ``powers_w`` maps node names to injected power in watts; omitted
        nodes receive none.  Boundary node temperatures are left untouched.
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        power = self._power_scratch
        power[:] = 0.0
        for name, watts in powers_w.items():
            index = self._node_index(name)
            if self._boundary[index]:
                raise SimulationError(
                    f"cannot inject power into boundary node {name!r}"
                )
            power[index] = watts
        self._advance(power, dt)

    def injection_indices(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Validated node indices for repeated injection via :meth:`step_vector`.

        Resolves names and rejects boundary nodes once, so per-step callers
        can skip both checks.
        """
        indices = tuple(self._node_index(name) for name in names)
        for name, index in zip(names, indices):
            if self._boundary[index]:
                raise SimulationError(
                    f"cannot inject power into boundary node {name!r}"
                )
        return indices

    def step_vector(self, power_w: np.ndarray, dt: float) -> None:
        """Advance ``dt`` seconds with a full-size injected-power vector.

        The hot-loop variant of :meth:`step`: ``power_w`` is indexed by node
        (see :meth:`injection_indices`) and must be zero at boundary nodes.
        No per-call name resolution or allocation.
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        self._advance(power_w, dt)

    def _advance(self, power: np.ndarray, dt: float) -> None:
        propagator = self._propagator
        if propagator is not None:
            propagator.advance(self._temps, power, dt)
        else:
            self._integrator.advance(self._derivative, self._temps, power, dt)

    def _derivative(self, temps: np.ndarray, power: np.ndarray) -> np.ndarray:
        # Same arithmetic as `(power + (G@T - rowG*T)) / C`, evaluated into
        # scratch buffers to keep the per-step path allocation-free.
        rate = self._rate_scratch
        inflow = self._inflow_scratch
        np.matmul(self._conductance, temps, out=rate)
        np.multiply(self._row_conductance, temps, out=inflow)
        np.subtract(rate, inflow, out=rate)
        np.add(power, rate, out=rate)
        np.divide(rate, self._capacity, out=rate)
        rate[self._boundary] = 0.0
        return rate

    def steady_state_rise(self, node: str, watts: float, into: str) -> float:
        """Steady-state temperature rise of ``node`` above boundary ``into``
        for a constant ``watts`` injected at ``node``, °C.

        Computed from the DC solution of the network; useful for calibration
        and for sanity checks in tests.
        """
        index = self._node_index(node)
        boundary_index = self._node_index(into)
        if not self._boundary[boundary_index]:
            raise ConfigurationError(f"{into!r} is not a boundary node")
        finite = np.flatnonzero(~self._boundary)
        if index not in finite:
            raise ConfigurationError(f"{node!r} is a boundary node")
        laplacian = np.diag(self._row_conductance) - self._conductance
        reduced = laplacian[np.ix_(finite, finite)]
        rhs = np.zeros(len(finite))
        rhs[list(finite).index(index)] = watts
        rise = np.linalg.solve(reduced, rhs)
        return float(rise[list(finite).index(index)])

    def _node_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown node {name!r}; nodes: {', '.join(self._index)}"
            ) from None
