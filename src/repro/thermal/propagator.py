"""Exact zero-order-hold propagation for linear RC networks.

The network ODE is linear:  C·dT/dt = P + G·(T_j − T_i)  with boundary
temperatures forced.  For the reduced (non-boundary) state ``x`` and a
constant input ``u = P_f + G_fb·T_b`` held over a step ``h`` (exactly how
the simulator applies power — one value per engine step), the solution has
the closed form

    x(h) = Φ(h)·x(0) + Ψ(h)·u,   Φ = e^{A h},   Ψ = ∫₀ʰ e^{A s} ds · C⁻¹,

with ``A = −C⁻¹·L_ff`` the reduced thermal Laplacian over capacity.  One
propagation is *exact* for any ``h`` — no stability bound, no sub-stepping
— so an engine step, a chamber sub-step and a whole cooldown poll window
all cost the same two small matvecs.

The pair (Φ, Ψ) depends only on the topology and the step size, so the
decomposition and the per-``dt`` pair cache are shared *process-wide*:
every :class:`ExpmPropagator` built over the same (conductance, capacity,
boundary, cache_size) arrays references one :class:`_SharedDecomposition`.
A fleet of same-model devices therefore pays for one ``eigh`` and one
(Φ, Ψ) build per step size, no matter how many device instances exist —
and the batched fleet engine reuses the very same pair for its stacked
update.  The matrix exponential is evaluated through the symmetrized
system ``M = C^{-1/2}·L_ff·C^{-1/2}`` (similar to ``−A``, and symmetric
positive semi-definite), whose stable eigendecomposition
``numpy.linalg.eigh`` provides — no SciPy dependency, and the modal decay
rates it yields are exact.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError

#: Distinct step sizes whose (Φ, Ψ) pairs are kept hot.  Engine dt, chamber
#: sub-steps and the cooldown poll window comfortably fit.
DEFAULT_CACHE_SIZE = 8


class _SharedDecomposition:
    """One topology's eigendecomposition plus its (Φ, Ψ) pair cache.

    Keyed process-wide by the raw constructor arrays, so every propagator
    over the same network shares both the spectral data and the per-``dt``
    cache.  Hit/miss accounting stays on the *instances* (each device still
    reports its own ``cache_hit_rate``); the shared object only stores the
    reusable math.
    """

    __slots__ = (
        "finite",
        "boundary",
        "coupling",
        "rates",
        "to_modal",
        "from_modal",
        "cache",
        "cache_size",
    )

    def __init__(
        self,
        conductance: np.ndarray,
        capacity: np.ndarray,
        boundary: np.ndarray,
        cache_size: int,
    ) -> None:
        self.finite = np.flatnonzero(~boundary)
        self.boundary = np.flatnonzero(boundary)
        if self.finite.size == 0:
            raise ConfigurationError("propagator needs at least one finite node")
        if self.boundary.size == 0:
            raise ConfigurationError("propagator needs at least one boundary node")

        row = conductance.sum(axis=1)
        laplacian = np.diag(row) - conductance
        reduced = laplacian[np.ix_(self.finite, self.finite)]
        #: G_fb — heat admittance from boundary nodes into finite ones.
        self.coupling = conductance[np.ix_(self.finite, self.boundary)]

        sqrt_c = np.sqrt(capacity[self.finite])
        sym = reduced / np.outer(sqrt_c, sqrt_c)
        eigenvalues, eigenvectors = np.linalg.eigh(sym)
        # L_ff is PSD, so negative eigenvalues are pure round-off; clipping
        # keeps Φ from growing on a ~1e-18 wobble.
        self.rates = np.clip(eigenvalues, 0.0, None)
        self.to_modal = eigenvectors.T * sqrt_c          # Qᵀ·C^{1/2}
        self.from_modal = eigenvectors / sqrt_c[:, None]  # C^{-1/2}·Q
        self.cache: "OrderedDict[float, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self.cache_size = cache_size


#: Process-level decomposition registry, keyed by the raw topology bytes.
_SHARED: Dict[Tuple[bytes, bytes, bytes, int], _SharedDecomposition] = {}


def _shared_decomposition(
    conductance: np.ndarray,
    capacity: np.ndarray,
    boundary: np.ndarray,
    cache_size: int,
) -> _SharedDecomposition:
    key = (
        conductance.tobytes(),
        capacity.tobytes(),
        boundary.tobytes(),
        cache_size,
    )
    shared = _SHARED.get(key)
    if shared is None:
        shared = _SHARED[key] = _SharedDecomposition(
            conductance, capacity, boundary, cache_size
        )
    return shared


def clear_shared_cache() -> None:
    """Drop every process-level decomposition (test isolation hook).

    Propagators built afterwards recompute their decomposition and start
    from an empty (Φ, Ψ) cache; already-built instances keep referencing
    the shared objects they registered with.
    """
    _SHARED.clear()


class ExpmPropagator:
    """Discrete exact propagator ``T' = Φ·T + Ψ·u`` for one topology.

    Built from the same arrays :class:`~repro.thermal.network.ThermalNetwork`
    assembles: the symmetric conductance matrix (W/K), per-node heat
    capacities (J/K, ``inf`` at boundary nodes) and the boundary mask.
    :meth:`advance` updates the full-size temperature vector in place,
    leaving boundary entries untouched; :meth:`advance_batch` does the same
    for a stacked ``(units, nodes)`` matrix with one GEMM per term.
    """

    def __init__(
        self,
        conductance: np.ndarray,
        capacity: np.ndarray,
        boundary: np.ndarray,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if cache_size < 1:
            raise ConfigurationError("cache_size must be at least 1")
        conductance = np.asarray(conductance, dtype=float)
        capacity = np.asarray(capacity, dtype=float)
        boundary = np.asarray(boundary, dtype=bool)
        # Constructor arrays are kept so pickled propagators re-register
        # against the worker process's shared cache on unpickle.
        self._conductance = conductance
        self._capacity = capacity
        self._boundary_mask = boundary
        self._cache_size = cache_size
        shared = _shared_decomposition(conductance, capacity, boundary, cache_size)
        self._shared = shared
        self._finite = shared.finite
        self._boundary = shared.boundary
        self._coupling = shared.coupling
        self._rates = shared.rates
        self._to_modal = shared.to_modal
        self._from_modal = shared.from_modal
        self._cache = shared.cache
        self.cache_hits = 0
        self.cache_misses = 0

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "conductance": self._conductance,
            "capacity": self._capacity,
            "boundary": self._boundary_mask,
            "cache_size": self._cache_size,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(
            state["conductance"],
            state["capacity"],
            state["boundary"],
            state["cache_size"],
        )
        self.cache_hits = state["cache_hits"]
        self.cache_misses = state["cache_misses"]

    @property
    def finite_count(self) -> int:
        """Number of evolving (non-boundary) nodes."""
        return int(self._finite.size)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of :meth:`pair` calls served from the (Φ, Ψ) cache
        (0.0 before the first call).  A healthy run sits near 1.0 — the
        simulator only ever asks for a handful of distinct step sizes, and
        the cache is shared across every same-topology propagator in the
        process, so fleet runs warm it once."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def slowest_time_constant_s(self) -> float:
        """The network's slowest modal time constant, seconds (inf if a
        mode is disconnected from every boundary)."""
        smallest = float(self._rates.min())
        return 1.0 / smallest if smallest > 0 else float("inf")

    def pair(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """The cached discrete pair (Φ, Ψ) for a step of ``dt`` seconds."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        cache = self._cache
        pair = cache.get(dt)
        if pair is not None:
            cache.move_to_end(dt)
            self.cache_hits += 1
            return pair
        self.cache_misses += 1
        decay = np.exp(-self._rates * dt)
        # φ₁(λ, h) = (1 − e^{−λh})/λ, continuously → h as λ → 0 (a mode
        # with no path to a boundary just integrates its input).
        ramp = np.full_like(self._rates, dt)
        active = self._rates > 0
        ramp[active] = (1.0 - decay[active]) / self._rates[active]
        phi = self._from_modal @ (decay[:, None] * self._to_modal)
        psi = (self._from_modal * ramp) @ self._from_modal.T
        pair = (phi, psi)
        cache[dt] = pair
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return pair

    def advance(self, temps: np.ndarray, power: np.ndarray, dt: float) -> None:
        """Propagate the full temperature vector ``dt`` seconds, in place.

        ``power`` is the injected power per node (watts, zero at boundary
        nodes), held constant over the step — the zero-order hold the
        closed form is exact for.
        """
        phi, psi = self.pair(dt)
        finite = self._finite
        forcing = power[finite] + self._coupling @ temps[self._boundary]
        temps[finite] = phi @ temps[finite] + psi @ forcing

    def advance_batch(self, temps: np.ndarray, power: np.ndarray, dt: float) -> None:
        """Propagate a stacked ``(units, nodes)`` temperature matrix in place.

        Row ``i`` of ``temps``/``power`` is unit ``i``'s full node vector,
        exactly as :meth:`advance` takes them; all rows share one (Φ, Ψ)
        pair, so the whole fleet advances with two GEMMs instead of
        ``units`` pairs of matvecs.  Results match :meth:`advance` row for
        row up to BLAS summation order (ulp-level).
        """
        phi, psi = self.pair(dt)
        finite = self._finite
        forcing = power[:, finite] + temps[:, self._boundary] @ self._coupling.T
        temps[:, finite] = temps[:, finite] @ phi.T + forcing @ psi.T
