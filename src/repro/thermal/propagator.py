"""Exact zero-order-hold propagation for linear RC networks.

The network ODE is linear:  C·dT/dt = P + G·(T_j − T_i)  with boundary
temperatures forced.  For the reduced (non-boundary) state ``x`` and a
constant input ``u = P_f + G_fb·T_b`` held over a step ``h`` (exactly how
the simulator applies power — one value per engine step), the solution has
the closed form

    x(h) = Φ(h)·x(0) + Ψ(h)·u,   Φ = e^{A h},   Ψ = ∫₀ʰ e^{A s} ds · C⁻¹,

with ``A = −C⁻¹·L_ff`` the reduced thermal Laplacian over capacity.  One
propagation is *exact* for any ``h`` — no stability bound, no sub-stepping
— so an engine step, a chamber sub-step and a whole cooldown poll window
all cost the same two small matvecs.

The pair (Φ, Ψ) depends only on the topology and the step size, so
:class:`ExpmPropagator` precomputes it per ``dt`` and keeps the results in
a small LRU cache.  The matrix exponential is evaluated through the
symmetrized system ``M = C^{-1/2}·L_ff·C^{-1/2}`` (similar to ``−A``, and
symmetric positive semi-definite), whose stable eigendecomposition
``numpy.linalg.eigh`` provides — no SciPy dependency, and the modal decay
rates it yields are exact.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError

#: Distinct step sizes whose (Φ, Ψ) pairs are kept hot.  Engine dt, chamber
#: sub-steps and the cooldown poll window comfortably fit.
DEFAULT_CACHE_SIZE = 8


class ExpmPropagator:
    """Discrete exact propagator ``T' = Φ·T + Ψ·u`` for one topology.

    Built from the same arrays :class:`~repro.thermal.network.ThermalNetwork`
    assembles: the symmetric conductance matrix (W/K), per-node heat
    capacities (J/K, ``inf`` at boundary nodes) and the boundary mask.
    :meth:`advance` updates the full-size temperature vector in place,
    leaving boundary entries untouched.
    """

    def __init__(
        self,
        conductance: np.ndarray,
        capacity: np.ndarray,
        boundary: np.ndarray,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if cache_size < 1:
            raise ConfigurationError("cache_size must be at least 1")
        conductance = np.asarray(conductance, dtype=float)
        capacity = np.asarray(capacity, dtype=float)
        boundary = np.asarray(boundary, dtype=bool)
        self._finite = np.flatnonzero(~boundary)
        self._boundary = np.flatnonzero(boundary)
        if self._finite.size == 0:
            raise ConfigurationError("propagator needs at least one finite node")
        if self._boundary.size == 0:
            raise ConfigurationError("propagator needs at least one boundary node")

        row = conductance.sum(axis=1)
        laplacian = np.diag(row) - conductance
        reduced = laplacian[np.ix_(self._finite, self._finite)]
        #: G_fb — heat admittance from boundary nodes into finite ones.
        self._coupling = conductance[np.ix_(self._finite, self._boundary)]

        sqrt_c = np.sqrt(capacity[self._finite])
        sym = reduced / np.outer(sqrt_c, sqrt_c)
        eigenvalues, eigenvectors = np.linalg.eigh(sym)
        # L_ff is PSD, so negative eigenvalues are pure round-off; clipping
        # keeps Φ from growing on a ~1e-18 wobble.
        self._rates = np.clip(eigenvalues, 0.0, None)
        self._to_modal = eigenvectors.T * sqrt_c          # Qᵀ·C^{1/2}
        self._from_modal = eigenvectors / sqrt_c[:, None]  # C^{-1/2}·Q
        self._cache: "OrderedDict[float, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def finite_count(self) -> int:
        """Number of evolving (non-boundary) nodes."""
        return int(self._finite.size)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of :meth:`pair` calls served from the (Φ, Ψ) cache
        (0.0 before the first call).  A healthy run sits near 1.0 — the
        simulator only ever asks for a handful of distinct step sizes."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def slowest_time_constant_s(self) -> float:
        """The network's slowest modal time constant, seconds (inf if a
        mode is disconnected from every boundary)."""
        smallest = float(self._rates.min())
        return 1.0 / smallest if smallest > 0 else float("inf")

    def pair(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """The cached discrete pair (Φ, Ψ) for a step of ``dt`` seconds."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        cache = self._cache
        pair = cache.get(dt)
        if pair is not None:
            cache.move_to_end(dt)
            self.cache_hits += 1
            return pair
        self.cache_misses += 1
        decay = np.exp(-self._rates * dt)
        # φ₁(λ, h) = (1 − e^{−λh})/λ, continuously → h as λ → 0 (a mode
        # with no path to a boundary just integrates its input).
        ramp = np.full_like(self._rates, dt)
        active = self._rates > 0
        ramp[active] = (1.0 - decay[active]) / self._rates[active]
        phi = self._from_modal @ (decay[:, None] * self._to_modal)
        psi = (self._from_modal * ramp) @ self._from_modal.T
        pair = (phi, psi)
        cache[dt] = pair
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return pair

    def advance(self, temps: np.ndarray, power: np.ndarray, dt: float) -> None:
        """Propagate the full temperature vector ``dt`` seconds, in place.

        ``power`` is the injected power per node (watts, zero at boundary
        nodes), held constant over the step — the zero-order hold the
        closed form is exact for.
        """
        phi, psi = self.pair(dt)
        finite = self._finite
        forcing = power[finite] + self._coupling @ temps[self._boundary]
        temps[finite] = phi @ temps[finite] + psi @ forcing
