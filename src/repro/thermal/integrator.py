"""Explicit integration with automatic sub-stepping.

Forward Euler on a stiff RC network diverges if the step exceeds the fastest
node's time constant.  :class:`StableEuler` knows the network's maximum rate
(``max_i Σ_j G_ij / C_i``) and silently splits any requested step into enough
sub-steps to stay comfortably inside the stability bound.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Fraction of the theoretical stability limit (2/max_rate) actually used.
SAFETY_FACTOR = 0.25

#: Distinct requested step sizes whose sub-step plans are memoized.
PLAN_CACHE_SIZE = 32


class StableEuler:
    """Forward-Euler integrator with a precomputed stable step size."""

    def __init__(self, max_rate: float) -> None:
        if max_rate < 0:
            raise ConfigurationError("max_rate must be non-negative")
        if max_rate == 0:
            self._max_step = math.inf
        else:
            self._max_step = SAFETY_FACTOR * 2.0 / max_rate
        # The engine requests the same dt millions of times; memoize the
        # (sub-step count, sub-step size) plan instead of re-deriving it.
        self._plans: Dict[float, Tuple[int, float]] = {}

    @property
    def max_stable_step(self) -> float:
        """Largest sub-step the integrator will take, seconds."""
        return self._max_step

    def advance(
        self,
        derivative: Callable[[np.ndarray, np.ndarray], np.ndarray],
        state: np.ndarray,
        forcing: np.ndarray,
        dt: float,
    ) -> None:
        """Integrate ``state`` in place over ``dt`` seconds.

        ``derivative(state, forcing)`` must return d(state)/dt.  ``forcing``
        is held constant across the step (zero-order hold), matching how the
        simulator computes power once per engine step.
        """
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        substeps, h = self.plan(dt)
        for _ in range(substeps):
            state += h * derivative(state, forcing)

    def plan(self, dt: float) -> Tuple[int, float]:
        """The memoized (sub-step count, sub-step size) pair for ``dt``."""
        plan = self._plans.get(dt)
        if plan is None:
            if len(self._plans) >= PLAN_CACHE_SIZE:
                self._plans.clear()
            substeps = max(1, int(math.ceil(dt / self._max_step)))
            plan = self._plans[dt] = (substeps, dt / substeps)
        return plan
