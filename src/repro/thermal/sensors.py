"""Temperature sensors.

The ACCUBENCH cooldown phase polls the CPU temperature sensor every five
seconds; throttling governors poll it continuously.  Real sensors quantize,
drift and jitter, so the model includes those error terms — they are part of
why back-to-back benchmark runs differ, which the paper's methodology is
designed to control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.thermal.network import ThermalNetwork


@dataclass
class TemperatureSensor:
    """A noisy, quantized reading of one thermal node.

    Attributes
    ----------
    node:
        Name of the thermal node the sensor is attached to.
    quantization_c:
        Reading granularity, °C (Qualcomm tsens reports ~0.1 °C steps).
    noise_sigma_c:
        Gaussian read noise standard deviation, °C.
    offset_c:
        Fixed calibration offset, °C.
    rng:
        Random generator for the noise; ``None`` disables noise entirely
        (used by deterministic tests).
    """

    node: str
    quantization_c: float = 0.1
    noise_sigma_c: float = 0.0
    offset_c: float = 0.0
    rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.quantization_c < 0:
            raise ConfigurationError("quantization_c must be non-negative")
        if self.noise_sigma_c < 0:
            raise ConfigurationError("noise_sigma_c must be non-negative")
        if self.noise_sigma_c > 0 and self.rng is None:
            raise ConfigurationError("noise_sigma_c > 0 requires an rng")

    def read(self, network: ThermalNetwork) -> float:
        """Return the sensed temperature of the node, °C."""
        value = network.temperature(self.node) + self.offset_c
        if self.noise_sigma_c > 0 and self.rng is not None:
            value += float(self.rng.normal(0.0, self.noise_sigma_c))
        if self.quantization_c > 0:
            value = round(value / self.quantization_c) * self.quantization_c
        return value
