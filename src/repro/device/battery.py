"""Battery model.

Open-circuit voltage as a function of state of charge, plus internal
resistance producing voltage sag under load.  The paper powers devices from
a Monsoon *instead of* the battery to remove battery state as a variance
source — this model exists so that substitution is a choice the library
user makes too (and so the LG G5's battery-vs-Monsoon comparison in
Figure 10 can be reproduced).

Solving for terminal voltage under a constant-power load:

    V = OCV − I·R  and  I = P / V   ⟹   V = (OCV + sqrt(OCV² − 4·P·R)) / 2
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.units import mwh_to_joules


@dataclass(frozen=True)
class BatterySpec:
    """Static battery parameters.

    Attributes
    ----------
    capacity_mah:
        Rated capacity, milliamp-hours.
    nominal_v:
        Voltage printed on the label (the LG G5 prints 3.85 V).
    max_v:
        Fully-charged voltage (the LG G5 prints 4.4 V).
    internal_resistance_ohm:
        Series resistance producing sag under load.
    ocv_curve:
        (state-of-charge, open-circuit-voltage) anchors, SoC ascending.
    """

    capacity_mah: float
    nominal_v: float
    max_v: float
    internal_resistance_ohm: float = 0.12
    ocv_curve: Tuple[Tuple[float, float], ...] = (
        (0.00, 3.30),
        (0.05, 3.55),
        (0.20, 3.68),
        (0.50, 3.80),
        (0.80, 4.05),
        (1.00, 4.35),
    )

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ConfigurationError("capacity_mah must be positive")
        if self.internal_resistance_ohm < 0:
            raise ConfigurationError("internal_resistance_ohm must be non-negative")
        if len(self.ocv_curve) < 2:
            raise ConfigurationError("ocv_curve needs at least two anchors")
        socs = [soc for soc, _ in self.ocv_curve]
        if socs != sorted(socs) or socs[0] != 0.0 or socs[-1] != 1.0:
            raise ConfigurationError("ocv_curve must ascend from SoC 0.0 to 1.0")

    @property
    def energy_capacity_j(self) -> float:
        """Approximate full-charge energy, joules (capacity × nominal V)."""
        return mwh_to_joules(self.capacity_mah * self.nominal_v)

    def ocv_v(self, state_of_charge: float) -> float:
        """Open-circuit voltage at a state of charge, volts."""
        if not 0.0 <= state_of_charge <= 1.0:
            raise ConfigurationError("state_of_charge must be within [0, 1]")
        curve = self.ocv_curve
        for (soc_lo, v_lo), (soc_hi, v_hi) in zip(curve, curve[1:]):
            if soc_lo <= state_of_charge <= soc_hi:
                frac = (state_of_charge - soc_lo) / (soc_hi - soc_lo)
                return v_lo + frac * (v_hi - v_lo)
        raise ConfigurationError("state_of_charge not bracketed")  # unreachable


class Battery:
    """A discharging battery implementing the PowerSupply interface."""

    def __init__(self, spec: BatterySpec, state_of_charge: float = 1.0) -> None:
        if not 0.0 < state_of_charge <= 1.0:
            raise ConfigurationError("state_of_charge must be within (0, 1]")
        self.spec = spec
        self._soc = state_of_charge
        self._last_load_w = 0.0
        self._energy_drawn_j = 0.0

    @property
    def state_of_charge(self) -> float:
        """Remaining charge fraction."""
        return self._soc

    @property
    def energy_drawn_j(self) -> float:
        """Total energy delivered since construction, joules."""
        return self._energy_drawn_j

    @property
    def output_voltage_v(self) -> float:
        """Terminal voltage under the most recent load, volts."""
        return self._terminal_voltage(self._last_load_w)

    def draw(self, power_w: float, dt: float) -> float:
        """Deliver ``power_w`` for ``dt`` seconds; returns the current, A."""
        if power_w < 0:
            raise SimulationError("drawn power must be non-negative")
        if dt <= 0:
            raise SimulationError("dt must be positive")
        if self._soc <= 0.0:
            raise SimulationError("battery is empty")
        voltage = self._terminal_voltage(power_w)
        current = power_w / voltage if voltage > 0 else 0.0
        self._last_load_w = power_w
        self._energy_drawn_j += power_w * dt
        self._soc = max(0.0, self._soc - power_w * dt / self.spec.energy_capacity_j)
        return current

    def _terminal_voltage(self, power_w: float) -> float:
        ocv = self.spec.ocv_v(self._soc)
        r = self.spec.internal_resistance_ohm
        if r == 0.0 or power_w == 0.0:
            return ocv
        discriminant = ocv * ocv - 4.0 * power_w * r
        if discriminant <= 0:
            raise SimulationError(
                f"load {power_w} W exceeds what the battery can deliver"
            )
        return 0.5 * (ocv + math.sqrt(discriminant))
