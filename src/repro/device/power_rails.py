"""Power-supply interface and rail accounting.

A device draws from *some* supply — its battery in the field, a Monsoon in
the lab.  Both present the same small interface: a terminal voltage and a
``draw`` call that accounts for energy leaving the supply.

The OS reads the terminal voltage; on the LG G5 that reading feeds a
throttling policy, which is how powering the phone from a Monsoon set to
the battery's *nominal* 3.85 V produced the paper's Figure 10 anomaly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError


@runtime_checkable
class PowerSupply(Protocol):
    """Anything a device can be powered from."""

    @property
    def output_voltage_v(self) -> float:
        """Terminal voltage seen by the device, volts."""
        ...  # pragma: no cover - protocol

    def draw(self, power_w: float, dt: float) -> float:
        """Account for drawing ``power_w`` for ``dt`` s; returns current, A."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RailBudget:
    """Fixed platform power levels outside the CPU rails.

    Attributes
    ----------
    awake_idle_w:
        Platform power with wakelock held, screen off, CPUs idle (SoC
        uncore, memory, rails) — watts.
    asleep_w:
        Suspended platform power during the cooldown phase, watts.
    regulator_efficiency:
        PMIC conversion efficiency; supply-side power = load / efficiency.
    """

    awake_idle_w: float
    asleep_w: float
    regulator_efficiency: float = 0.90

    def __post_init__(self) -> None:
        if self.awake_idle_w < 0 or self.asleep_w < 0:
            raise ConfigurationError("rail powers must be non-negative")
        if not 0.0 < self.regulator_efficiency <= 1.0:
            raise ConfigurationError("regulator_efficiency must be within (0, 1]")

    def supply_power_w(self, load_w: float) -> float:
        """Power drawn from the supply to deliver ``load_w`` to the rails."""
        if load_w < 0:
            raise ConfigurationError("load_w must be non-negative")
        return load_w / self.regulator_efficiency
