"""Battery aging and its throttling consequences (paper Section IV-C).

The paper's LG G5 finding — the OS throttles on input voltage — is, as the
authors note, "reminiscent of recent reports of old iPhones being
throttled": *the voltage that a battery is able to supply decreases over
time*, so an input-voltage policy silently slows the phone as its battery
wears.  This module models that wear so the effect can be studied:

* **capacity fade** — less charge per full cycle as cycles accumulate;
* **internal-resistance growth** — more sag under load, the dominant term
  for voltage-based throttling;
* **OCV depression** — the whole open-circuit curve sits slightly lower.

The wear laws are the standard empirical linear-in-cycles forms used in
battery state-of-health literature; coefficients give roughly 20% capacity
fade and doubled resistance around 500 cycles, typical for the era's
lithium-polymer packs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.battery import Battery, BatterySpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BatteryAge:
    """Wear state of one battery.

    Attributes
    ----------
    cycles:
        Equivalent full charge/discharge cycles accumulated.
    capacity_fade_per_cycle:
        Fraction of rated capacity lost per cycle.
    resistance_growth_per_cycle:
        Fractional internal-resistance increase per cycle.
    ocv_depression_v_per_cycle:
        Volts the open-circuit curve drops per cycle.
    """

    cycles: float
    capacity_fade_per_cycle: float = 4.0e-4
    resistance_growth_per_cycle: float = 2.0e-3
    ocv_depression_v_per_cycle: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigurationError("cycles must be non-negative")
        for field_name in (
            "capacity_fade_per_cycle",
            "resistance_growth_per_cycle",
            "ocv_depression_v_per_cycle",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")
        if self.capacity_fraction() <= 0.2:
            raise ConfigurationError(
                f"{self.cycles} cycles leaves under 20% capacity; a pack "
                "this worn would have been replaced (or died)"
            )

    @classmethod
    def new(cls) -> "BatteryAge":
        """A fresh pack."""
        return cls(cycles=0.0)

    def capacity_fraction(self) -> float:
        """Remaining fraction of rated capacity."""
        return max(0.0, 1.0 - self.capacity_fade_per_cycle * self.cycles)

    def resistance_multiplier(self) -> float:
        """Internal-resistance growth factor."""
        return 1.0 + self.resistance_growth_per_cycle * self.cycles

    def ocv_depression_v(self) -> float:
        """How far the OCV curve has sunk, volts."""
        return self.ocv_depression_v_per_cycle * self.cycles

    def applied_to(self, spec: BatterySpec) -> BatterySpec:
        """The worn battery's effective spec."""
        depressed = self.ocv_depression_v()
        return BatterySpec(
            capacity_mah=spec.capacity_mah * self.capacity_fraction(),
            nominal_v=spec.nominal_v,
            max_v=spec.max_v,
            internal_resistance_ohm=(
                spec.internal_resistance_ohm * self.resistance_multiplier()
            ),
            ocv_curve=tuple(
                (soc, voltage - depressed) for soc, voltage in spec.ocv_curve
            ),
        )


def aged_battery(
    spec: BatterySpec, age: BatteryAge, state_of_charge: float = 1.0
) -> Battery:
    """A :class:`Battery` instance wearing the given age."""
    return Battery(age.applied_to(spec), state_of_charge=state_of_charge)


def throttle_onset_soc(
    spec: BatterySpec,
    age: BatteryAge,
    threshold_v: float,
    load_w: float,
    resolution: float = 0.01,
) -> float:
    """State of charge at which an input-voltage throttle engages.

    Sweeps SoC downward and returns the highest value at which the
    terminal voltage under ``load_w`` is at or below ``threshold_v`` —
    i.e. the charge level where your phone starts feeling slow.  Returns
    1.0 if it is *always* throttled, 0.0 if never.
    """
    if not 0 < resolution <= 0.25:
        raise ConfigurationError("resolution must be within (0, 0.25]")
    worn = age.applied_to(spec)
    soc = 1.0
    while soc > 0.0:
        battery = Battery(worn, state_of_charge=max(soc, resolution))
        battery.draw(load_w, 1e-6)  # establish the load point
        if battery.output_voltage_v <= threshold_v:
            return round(soc, 10)
        soc = round(soc - resolution, 10)
    return 0.0
