"""The device under test.

:class:`Device` wires one sampled die into one chassis: SoC runtime, chassis
thermal network, temperature sensor, OS behaviour, and a power supply.  It
exposes exactly the control surface the paper's benchmarking app has —
wakelocks, loading all cores, pinning frequencies, and reading the CPU
temperature sensor — plus a :meth:`step` the simulation engine drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.device.battery import Battery
from repro.device.catalog import DeviceSpec
from repro.device.display import Display
from repro.device.os_model import OsBehavior
from repro.device.power_rails import PowerSupply
from repro.errors import ConfigurationError
from repro.rng import DEFAULT_ROOT_SEED, derive_stream
from repro.silicon.transistor import SiliconProfile
from repro.soc.catalog import soc_by_name
from repro.soc.dvfs import PerformanceGovernor, UserspaceGovernor
from repro.soc.instance import Soc
from repro.thermal.sensors import TemperatureSensor


@dataclass(frozen=True)
class StepReport:
    """What happened during one engine step.

    Attributes
    ----------
    time_s:
        Device-local time at the *end* of the step.
    supply_power_w:
        Power drawn from the supply (what a Monsoon measures), watts.
    soc_power_w:
        CPU-rail power (dynamic + leakage), watts.
    ops:
        Work retired this step, ops.
    current_a:
        Supply current, amperes.
    cpu_temp_c / case_temp_c:
        True node temperatures, °C.
    frequencies_mhz:
        Cluster frequencies at the end of the step.
    online_cores:
        Cores online at the end of the step.
    asleep:
        Whether the device was suspended for this step.
    """

    time_s: float
    supply_power_w: float
    soc_power_w: float
    ops: float
    current_a: float
    cpu_temp_c: float
    case_temp_c: float
    frequencies_mhz: Dict[str, float]
    online_cores: int
    asleep: bool


class Device:
    """One physical handset: chassis + die + OS + supply."""

    def __init__(
        self,
        spec: DeviceSpec,
        serial: str,
        profile: SiliconProfile,
        bin_index: int = 0,
        supply: Optional[PowerSupply] = None,
        root_seed: int = DEFAULT_ROOT_SEED,
        initial_temp_c: float = 25.0,
        thermal_solver: str = "euler",
    ) -> None:
        self.spec = spec
        self.serial = serial
        self.profile = profile
        soc_spec = soc_by_name(spec.soc_name)
        self.soc = Soc(
            spec=soc_spec,
            profile=profile,
            throttle=spec.throttle.build(),
            bin_index=bin_index,
        )
        self.thermal = spec.thermal.build(initial_temp_c, solver=thermal_solver)
        # Resolve the thermal nodes the step loop touches once; the power
        # vector is reused every step (non-injected entries stay zero).
        self._idx_ambient = self.thermal.node_index("ambient")
        self._idx_cpu, self._idx_case, self._idx_pkg = (
            self.thermal.injection_indices(("cpu", "case", "pkg"))
        )
        self._thermal_power = np.zeros(len(self.thermal.node_names))
        sensor_rng = derive_stream(root_seed, spec.name, serial, "sensor")
        self.sensor = TemperatureSensor(
            node="cpu",
            quantization_c=spec.sensor_quantization_c,
            noise_sigma_c=spec.sensor_noise_sigma_c,
            rng=sensor_rng if spec.sensor_noise_sigma_c > 0 else None,
        )
        os_rng = derive_stream(root_seed, spec.name, serial, "os")
        self.os = OsBehavior(voltage_throttle=spec.voltage_throttle, rng=os_rng)
        self.supply: PowerSupply = (
            supply if supply is not None else Battery(spec.battery)
        )
        self.skin_throttle = (
            spec.skin_throttle.build() if spec.skin_throttle is not None else None
        )
        #: The panel — off by default, exactly as the methodology requires.
        self.display = Display()
        self._now_s = 0.0
        self._load_active = False
        self._load_utilization = 1.0
        self._fixed_mhz: Optional[float] = None
        self._apply_governors()

    # -- benchmark-app control surface -----------------------------------

    @property
    def now_s(self) -> float:
        """Device-local simulation time, seconds."""
        return self._now_s

    def connect_supply(self, supply: PowerSupply) -> None:
        """Swap the power source (battery ↔ Monsoon)."""
        self.supply = supply

    def acquire_wakelock(self) -> None:
        """Keep the device awake (warmup and workload phases)."""
        self.os.acquire_wakelock()

    def release_wakelock(self) -> None:
        """Let the device suspend (cooldown phase)."""
        self.os.release_wakelock()

    def start_load(
        self, utilization: float = 1.0, memory_boundedness: float = 0.0
    ) -> None:
        """Load every core (the π loop on all CPUs).

        ``memory_boundedness`` > 0 models a workload that stalls on memory
        for that fraction of its time (at top frequency) — unlike the
        paper's fully CPU-bound π task.
        """
        if not 0.0 < utilization <= 1.0:
            raise ConfigurationError("utilization must be within (0, 1]")
        self._load_active = True
        self._load_utilization = utilization
        self.soc.set_utilization(utilization)
        self.soc.set_memory_boundedness(memory_boundedness)
        self._apply_governors()

    def stop_load(self) -> None:
        """Stop the benchmark load."""
        self._load_active = False
        self.soc.set_utilization(0.0)
        self._apply_governors()

    def set_fixed_frequency(self, freq_mhz: float) -> None:
        """Pin all clusters at (their nearest ladder step below) a frequency
        — the FIXED-FREQUENCY workload configuration."""
        if freq_mhz <= 0:
            raise ConfigurationError("freq_mhz must be positive")
        self._fixed_mhz = freq_mhz
        self._apply_governors()

    def unconstrain_frequency(self) -> None:
        """Restore the performance governor — the UNCONSTRAINED workload."""
        self._fixed_mhz = None
        self._apply_governors()

    def read_cpu_temp(self) -> float:
        """What the benchmark app sees when it polls the temperature, °C."""
        return self.sensor.read(self.thermal)

    def reboot(self, soak_temp_c: Optional[float] = None) -> None:
        """Reset mitigation and (optionally) soak the chassis to a uniform
        temperature — used between experiments, not between iterations."""
        self.soc.reset()
        self.os.release_wakelock()
        self._now_s = 0.0
        self._load_active = False
        self._fixed_mhz = None
        self._apply_governors()
        if soak_temp_c is not None:
            temps = {name: soak_temp_c for name in self.thermal.node_names}
            for name, temp in temps.items():
                self.thermal.set_temperature(name, temp)

    # -- engine interface -------------------------------------------------

    @property
    def is_asleep(self) -> bool:
        """Suspended: no wakelock and no active load."""
        return not self.os.wakelock_held and not self._load_active

    def step(self, ambient_c: float, dt: float) -> StepReport:
        """Advance the device by ``dt`` seconds under a given ambient."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        thermal = self.thermal
        soc = self.soc
        os_state = self.os
        now_s = self._now_s
        thermal.set_temperature_at(self._idx_ambient, ambient_c)
        die_temp = thermal.temperature_at(self._idx_cpu)
        asleep = self.is_asleep

        display_w = 0.0
        if asleep:
            soc_power = 0.0
            ops = 0.0
            load_w = self.spec.rails.asleep_w
        else:
            soc.external_ceiling_mhz = os_state.cpu_ceiling_mhz(
                self.supply.output_voltage_v
            )
            if self.skin_throttle is not None:
                soc.external_ceiling_steps = self.skin_throttle.update(
                    thermal.temperature_at(self._idx_case), ambient_c, now_s
                )
            soc_power, ops = soc.step(die_temp, now_s, dt)
            ops *= 1.0 - os_state.steal_frac(now_s)
            display_w = self.display.power_w()
            load_w = (
                soc_power
                + display_w
                + self.spec.rails.awake_idle_w
                + os_state.background_noise_w()
            )

        supply_power = self.spec.rails.supply_power_w(load_w)
        current = self.supply.draw(supply_power, dt)
        # CPU power dissipates in the die; the panel heats the front of the
        # case; regulator losses and platform power land on the board (pkg).
        power_vec = self._thermal_power
        power_vec[self._idx_cpu] = soc_power
        power_vec[self._idx_case] = display_w
        power_vec[self._idx_pkg] = supply_power - soc_power - display_w
        thermal.step_vector(power_vec, dt)
        self._now_s = now_s = now_s + dt
        return StepReport(
            time_s=now_s,
            supply_power_w=supply_power,
            soc_power_w=soc_power,
            ops=ops,
            current_a=current,
            cpu_temp_c=thermal.temperature_at(self._idx_cpu),
            case_temp_c=thermal.temperature_at(self._idx_case),
            frequencies_mhz=soc.frequencies_mhz(),
            online_cores=soc.online_cores(),
            asleep=asleep,
        )

    # -- internals --------------------------------------------------------

    def _apply_governors(self) -> None:
        """Install governors reflecting load state and frequency pinning."""
        for cluster in self.soc.clusters:
            spec = cluster.spec
            if not self._load_active:
                governor = UserspaceGovernor(fixed_mhz=spec.min_freq_mhz)
            elif self._fixed_mhz is not None:
                governor = UserspaceGovernor(
                    fixed_mhz=spec.nearest_freq_mhz(self._fixed_mhz)
                )
            else:
                governor = PerformanceGovernor()
            self.soc.set_governor(governor, spec.name)
