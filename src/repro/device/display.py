"""Display power model.

The methodology locks the phone so "the display was off during an
experiment" (paper Section III).  This model makes that design choice
testable: a lit panel adds watts and heat (into the case side, where the
panel sits), polluting both the energy integral and the thermal budget.

Panel power follows the standard affine-in-brightness form measured on
LCD panels of the era (AMOLED would add content dependence; the study's
devices span both, and the affine model bounds either).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DisplaySpec:
    """Panel power characteristics.

    Attributes
    ----------
    base_power_w:
        Power at minimum brightness, screen on, watts.
    full_brightness_power_w:
        Power at maximum brightness, watts.
    """

    base_power_w: float = 0.35
    full_brightness_power_w: float = 1.6

    def __post_init__(self) -> None:
        if self.base_power_w < 0:
            raise ConfigurationError("base_power_w must be non-negative")
        if self.full_brightness_power_w < self.base_power_w:
            raise ConfigurationError(
                "full_brightness_power_w must be at least base_power_w"
            )

    def power_w(self, brightness: float) -> float:
        """Panel power at a brightness in [0, 1] (screen on)."""
        if not 0.0 <= brightness <= 1.0:
            raise ConfigurationError("brightness must be within [0, 1]")
        return self.base_power_w + brightness * (
            self.full_brightness_power_w - self.base_power_w
        )


@dataclass
class Display:
    """Runtime display state.

    Attributes
    ----------
    spec:
        Panel characteristics.
    """

    spec: DisplaySpec = field(default_factory=DisplaySpec)
    _on: bool = field(default=False, init=False)
    _brightness: float = field(default=0.6, init=False)

    @property
    def is_on(self) -> bool:
        """Whether the panel is lit."""
        return self._on

    @property
    def brightness(self) -> float:
        """Current brightness setting, [0, 1]."""
        return self._brightness

    def turn_on(self, brightness: float = 0.6) -> None:
        """Light the panel at a brightness."""
        if not 0.0 <= brightness <= 1.0:
            raise ConfigurationError("brightness must be within [0, 1]")
        self._on = True
        self._brightness = brightness

    def turn_off(self) -> None:
        """Blank the panel (the methodology's state)."""
        self._on = False

    def power_w(self) -> float:
        """Current panel power draw, watts."""
        if not self._on:
            return 0.0
        return self.spec.power_w(self._brightness)
