"""Battery charging (CC/CV) model.

The crowd-study simulator samples users at arbitrary charge levels; this
module supplies the other half of a phone's day — how charge is restored.
Lithium cells charge in two phases: **constant current** until the
terminal voltage hits the cell maximum, then **constant voltage** with the
current tapering exponentially.  Wear (``repro.device.aging``) slows
charging too: a worn pack's higher internal resistance reaches the CV
point earlier, so more of the charge happens in the slow tail — the
"my old phone charges slower *and* dies faster" experience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.device.battery import Battery
from repro.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class ChargerSpec:
    """Wall charger characteristics.

    Attributes
    ----------
    max_current_a:
        Constant-current phase limit (a 2013-era 1.8 A brick through a
        2016 3 A quick charger).
    cv_voltage_v:
        Constant-voltage setpoint — the cell's max voltage.
    taper_cutoff_a:
        CV-phase current below which charging terminates.
    efficiency:
        Charge acceptance efficiency (coulombic × converter).
    """

    max_current_a: float = 2.0
    cv_voltage_v: float = 4.35
    taper_cutoff_a: float = 0.08
    efficiency: float = 0.92

    def __post_init__(self) -> None:
        if self.max_current_a <= 0:
            raise ConfigurationError("max_current_a must be positive")
        if self.cv_voltage_v <= 0:
            raise ConfigurationError("cv_voltage_v must be positive")
        if not 0 < self.taper_cutoff_a < self.max_current_a:
            raise ConfigurationError(
                "taper_cutoff_a must be within (0, max_current_a)"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("efficiency must be within (0, 1]")


@dataclass(frozen=True)
class ChargeStep:
    """One recorded charging sample.

    Attributes
    ----------
    time_s:
        Seconds since charging began.
    state_of_charge:
        Battery SoC at the sample.
    current_a:
        Charge current flowing into the cell.
    phase:
        ``"cc"`` or ``"cv"``.
    """

    time_s: float
    state_of_charge: float
    current_a: float
    phase: str


def charge(
    battery: Battery,
    charger: ChargerSpec,
    dt: float = 10.0,
    timeout_s: float = 6 * 3600.0,
    record_every_s: float = 60.0,
) -> List[ChargeStep]:
    """Charge a battery to termination; returns the recorded curve.

    The battery object's state of charge is mutated in place (it is, after
    all, being charged).
    """
    if dt <= 0:
        raise SimulationError("dt must be positive")
    if timeout_s <= 0:
        raise SimulationError("timeout_s must be positive")
    spec = battery.spec
    capacity_j = spec.energy_capacity_j
    resistance = spec.internal_resistance_ohm

    samples: List[ChargeStep] = []
    elapsed = 0.0
    next_record = 0.0
    while elapsed < timeout_s:
        soc = battery.state_of_charge
        ocv = spec.ocv_v(soc)
        # CC phase: full current unless it would push the terminal voltage
        # (ocv + I·R) past the CV setpoint; then CV: I = (V_cv − ocv)/R.
        cv_limited_a = (
            (charger.cv_voltage_v - ocv) / resistance if resistance > 0 else float("inf")
        )
        if cv_limited_a >= charger.max_current_a:
            current = charger.max_current_a
            phase = "cc"
        else:
            current = max(0.0, cv_limited_a)
            phase = "cv"
        if phase == "cv" and current <= charger.taper_cutoff_a:
            break
        if soc >= 1.0:
            break

        if elapsed >= next_record:
            samples.append(
                ChargeStep(
                    time_s=elapsed, state_of_charge=soc,
                    current_a=current, phase=phase,
                )
            )
            next_record += record_every_s

        energy_in = current * ocv * dt * charger.efficiency
        new_soc = min(1.0, soc + energy_in / capacity_j)
        battery._soc = new_soc  # charging is the battery's own business
        elapsed += dt
    else:
        raise SimulationError(f"charging did not terminate within {timeout_s} s")

    samples.append(
        ChargeStep(
            time_s=elapsed, state_of_charge=battery.state_of_charge,
            current_a=0.0, phase="done",
        )
    )
    return samples


def time_to_charge_s(
    battery: Battery, charger: ChargerSpec, target_soc: float = 1.0, dt: float = 10.0
) -> float:
    """Seconds to charge the battery to a target state of charge."""
    if not 0.0 < target_soc <= 1.0:
        raise ConfigurationError("target_soc must be within (0, 1]")
    if battery.state_of_charge >= target_soc:
        return 0.0
    curve = charge(battery, charger, dt=dt, record_every_s=dt)
    for sample in curve:
        if sample.state_of_charge >= target_soc:
            return sample.time_s
    return curve[-1].time_s
