"""Operating-system behaviours relevant to the methodology.

The paper's setup strips the OS down hard — radios off, display off, Google
services removed — precisely because background activity is measurement
noise.  The model keeps a small residual noise term (nothing is ever fully
quiet), wakelock/suspend semantics for the cooldown phase, and the LG G5's
input-voltage throttling policy (paper Figure 10): when the supply terminal
voltage is at or below a threshold, the OS caps the CPU frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InputVoltageThrottle:
    """An OS policy capping CPU frequency on low supply voltage.

    Attributes
    ----------
    threshold_v:
        At or below this terminal voltage, the cap engages.
    ceiling_mhz:
        Maximum CPU frequency while capped.
    """

    threshold_v: float
    ceiling_mhz: float

    def __post_init__(self) -> None:
        if self.threshold_v <= 0:
            raise ConfigurationError("threshold_v must be positive")
        if self.ceiling_mhz <= 0:
            raise ConfigurationError("ceiling_mhz must be positive")

    def ceiling_for(self, supply_voltage_v: float) -> Optional[float]:
        """The frequency cap for a given supply voltage (None = uncapped)."""
        if supply_voltage_v <= self.threshold_v:
            return self.ceiling_mhz
        return None


@dataclass
class OsBehavior:
    """Runtime OS state and residual noise.

    Attributes
    ----------
    background_power_w:
        Mean residual platform activity with everything disabled, watts.
    background_sigma_w:
        Standard deviation of that residual (sampled per engine step).
    steal_mean / steal_sigma:
        Background tasks occasionally steal CPU cycles from the benchmark.
        The steal fraction is piecewise-constant (a background job runs for
        a while, then stops), resampled every ``steal_interval_s`` from
        N(mean, sigma) clamped to [0, ``steal_max``].  This correlated
        noise is what makes even FIXED-FREQUENCY performance repeat only
        to ~1% RSD (paper Section IV-A).
    voltage_throttle:
        Optional input-voltage throttling policy (LG G5).
    rng:
        Stream for the noise; ``None`` makes the residual deterministic.
    """

    background_power_w: float = 0.015
    background_sigma_w: float = 0.004
    steal_mean: float = 0.010
    steal_sigma: float = 0.010
    steal_max: float = 0.08
    steal_interval_s: float = 60.0
    voltage_throttle: Optional[InputVoltageThrottle] = None
    rng: Optional[np.random.Generator] = field(default=None, repr=False)
    _wakelock_held: bool = field(default=False, init=False)
    _steal_frac: float = field(default=0.0, init=False)
    _steal_until_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.background_power_w < 0:
            raise ConfigurationError("background_power_w must be non-negative")
        if self.background_sigma_w < 0:
            raise ConfigurationError("background_sigma_w must be non-negative")
        if self.steal_mean < 0 or self.steal_sigma < 0:
            raise ConfigurationError("steal parameters must be non-negative")
        if not 0.0 <= self.steal_max < 1.0:
            raise ConfigurationError("steal_max must be within [0, 1)")
        if self.steal_interval_s <= 0:
            raise ConfigurationError("steal_interval_s must be positive")
        if (self.background_sigma_w > 0 or self.steal_sigma > 0) and self.rng is None:
            raise ConfigurationError("noisy OS behaviour requires an rng")

    @property
    def wakelock_held(self) -> bool:
        """Whether a wakelock currently prevents suspend."""
        return self._wakelock_held

    def acquire_wakelock(self) -> None:
        """Hold the device awake (benchmark phases)."""
        self._wakelock_held = True

    def release_wakelock(self) -> None:
        """Allow the device to suspend (cooldown phase)."""
        self._wakelock_held = False

    def background_noise_w(self) -> float:
        """Sample this step's residual background power, watts."""
        noise = self.background_power_w
        if self.background_sigma_w > 0 and self.rng is not None:
            noise += float(self.rng.normal(0.0, self.background_sigma_w))
        return max(0.0, noise)

    def steal_frac(self, now_s: float) -> float:
        """Fraction of benchmark cycles background tasks currently steal."""
        if self.rng is None or self.steal_sigma == 0 and self.steal_mean == 0:
            return 0.0
        if now_s >= self._steal_until_s:
            sampled = float(self.rng.normal(self.steal_mean, self.steal_sigma))
            self._steal_frac = min(max(sampled, 0.0), self.steal_max)
            self._steal_until_s = now_s + self.steal_interval_s
        return self._steal_frac

    def cpu_ceiling_mhz(self, supply_voltage_v: float) -> Optional[float]:
        """Frequency cap the OS imposes for the current supply voltage."""
        if self.voltage_throttle is None:
            return None
        return self.voltage_throttle.ceiling_for(supply_voltage_v)
