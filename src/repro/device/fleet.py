"""Device fleets: the paper's units and synthetic populations.

The study used small fleets — 4× Nexus 5 (voltage bins 0–3; the bin-4 chip
died mid-study), 3× Nexus 6, 3× Nexus 6P, 5× LG G5 and 3× Google Pixel —
and the paper is explicit that its variation numbers are therefore *lower
bounds* (Section VII).  ``paper_fleet`` reconstructs those units with their
silicon placed where the paper's results put them; ``synthetic_fleet``
samples arbitrary-size populations for larger studies (the §VI future-work
direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.device.catalog import DeviceSpec, device_spec
from repro.device.phone import Device
from repro.device.power_rails import PowerSupply
from repro.errors import ConfigurationError, UnknownModelError
from repro.rng import DEFAULT_ROOT_SEED
from repro.silicon.binning import assign_bin_index, bin_profile
from repro.silicon.transistor import SiliconProfile
from repro.silicon.variation import VariationSampler
from repro.soc.catalog import soc_by_name


@dataclass(frozen=True)
class FleetUnit:
    """One physical unit of a model.

    Exactly one of ``bin_index`` (binned-voltage SoCs) or ``percentile``
    (adaptive-voltage SoCs; 0 = slowest silicon, 100 = fastest/leakiest)
    places the unit's silicon.

    Attributes
    ----------
    model:
        Handset model name, e.g. ``"Nexus 5"``.
    serial:
        Unit identifier used in reports (the paper uses the last digits of
        device serials: device-363, device-793...).
    bin_index:
        Voltage bin of the unit's chip, for binned SoCs.
    bin_fraction:
        Position within the bin slice (0 slow edge … 1 fast edge).
    percentile:
        Population V_th percentile, for adaptive SoCs.
    """

    model: str
    serial: str
    bin_index: Optional[int] = None
    bin_fraction: float = 0.5
    percentile: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.bin_index is None) == (self.percentile is None):
            raise ConfigurationError(
                "exactly one of bin_index or percentile must be given"
            )


#: The units used in the paper's study, per model (Section IV, Table II).
#: Serial naming follows the paper where it names devices; silicon
#: placement is calibrated to the reported spreads.
PAPER_FLEETS = {
    "Nexus 5": (
        FleetUnit(model="Nexus 5", serial="bin-0", bin_index=0),
        FleetUnit(model="Nexus 5", serial="bin-1", bin_index=1),
        FleetUnit(model="Nexus 5", serial="bin-2", bin_index=2),
        FleetUnit(model="Nexus 5", serial="bin-3", bin_index=3),
    ),
    "Nexus 6": (
        # All three units landed in the same bin with nearly identical
        # silicon: the paper saw only ~2% variation on this model.
        FleetUnit(model="Nexus 6", serial="n6-a", bin_index=3, bin_fraction=0.42),
        FleetUnit(model="Nexus 6", serial="n6-b", bin_index=3, bin_fraction=0.50),
        FleetUnit(model="Nexus 6", serial="n6-c", bin_index=3, bin_fraction=0.58),
    ),
    "Nexus 6P": (
        # device-793 was the paper's best unit, device-363 its worst
        # (10% slower, 12% more energy).
        FleetUnit(model="Nexus 6P", serial="device-793", percentile=30.0),
        FleetUnit(model="Nexus 6P", serial="device-571", percentile=55.0),
        FleetUnit(model="Nexus 6P", serial="device-363", percentile=86.0),
    ),
    "LG G5": (
        FleetUnit(model="LG G5", serial="g5-114", percentile=22.0),
        FleetUnit(model="LG G5", serial="g5-207", percentile=38.0),
        FleetUnit(model="LG G5", serial="g5-332", percentile=50.0),
        FleetUnit(model="LG G5", serial="g5-409", percentile=63.0),
        FleetUnit(model="LG G5", serial="g5-588", percentile=81.0),
    ),
    "Google Pixel": (
        # device-488 was 7% faster than device-653 (paper Figure 11).
        FleetUnit(model="Google Pixel", serial="device-488", percentile=20.0),
        FleetUnit(model="Google Pixel", serial="device-520", percentile=50.0),
        FleetUnit(model="Google Pixel", serial="device-653", percentile=88.0),
    ),
}


def unit_profile(unit: FleetUnit, root_seed: int = DEFAULT_ROOT_SEED) -> SiliconProfile:
    """The silicon profile implied by a unit's placement."""
    spec = device_spec(unit.model)
    soc = soc_by_name(spec.soc_name)
    if unit.bin_index is not None:
        return bin_profile(
            process=soc.process,
            bin_count=soc.bin_count,
            bin_index=unit.bin_index,
            fraction=unit.bin_fraction,
        )
    sampler = VariationSampler(process=soc.process, root_seed=root_seed)
    assert unit.percentile is not None  # enforced by FleetUnit validation
    return sampler.from_percentile(unit.percentile)


def build_device(
    unit: FleetUnit,
    supply: Optional[PowerSupply] = None,
    root_seed: int = DEFAULT_ROOT_SEED,
    initial_temp_c: float = 25.0,
    spec: Optional[DeviceSpec] = None,
    thermal_solver: str = "euler",
) -> Device:
    """Instantiate one fleet unit as a runnable :class:`Device`."""
    if spec is None:
        spec = device_spec(unit.model)
    return Device(
        spec=spec,
        serial=unit.serial,
        profile=unit_profile(unit, root_seed),
        bin_index=unit.bin_index if unit.bin_index is not None else 0,
        supply=supply,
        root_seed=root_seed,
        initial_temp_c=initial_temp_c,
        thermal_solver=thermal_solver,
    )


def paper_fleet(
    model: str,
    root_seed: int = DEFAULT_ROOT_SEED,
    initial_temp_c: float = 25.0,
    thermal_solver: str = "euler",
) -> List[Device]:
    """The paper's units of one model, as runnable devices.

    Each device defaults to battery power; experiment runners swap in a
    Monsoon per the methodology.
    """
    try:
        units = PAPER_FLEETS[model]
    except KeyError:
        raise UnknownModelError(
            "fleet", model, tuple(PAPER_FLEETS)
        ) from None
    return [
        build_device(
            unit,
            root_seed=root_seed,
            initial_temp_c=initial_temp_c,
            thermal_solver=thermal_solver,
        )
        for unit in units
    ]


def synthetic_fleet(
    model: str,
    count: int,
    lot_name: str = "synthetic",
    root_seed: int = DEFAULT_ROOT_SEED,
    initial_temp_c: float = 25.0,
    thermal_solver: str = "euler",
    start_index: int = 0,
) -> List[Device]:
    """Sample ``count`` units of a model from the manufacturing lottery.

    Unlike :func:`paper_fleet`, silicon here is randomly drawn — the fleets
    a crowdsourced study (paper §VI) would encounter.  Each unit's silicon
    stream is keyed by its serial alone, so ``start_index`` slices a
    larger lot without replaying its predecessors: the units of
    ``synthetic_fleet(m, 4, start_index=4)`` are identical to units 4–7
    of ``synthetic_fleet(m, 8)`` — which is what lets a streaming crowd
    campaign materialize one cohort at a time.
    """
    if count < 1:
        raise ConfigurationError("count must be at least 1")
    if start_index < 0:
        raise ConfigurationError("start_index must be non-negative")
    spec = device_spec(model)
    soc = soc_by_name(spec.soc_name)
    sampler = VariationSampler(process=soc.process, root_seed=root_seed)
    devices = []
    for index in range(start_index, start_index + count):
        serial = f"{lot_name}-{index:03d}"
        profile = sampler.sample(spec.name, lot_name, serial)
        bin_index = assign_bin_index(soc.process, soc.bin_count, profile)
        devices.append(
            Device(
                spec=spec,
                serial=serial,
                profile=profile,
                bin_index=bin_index,
                root_seed=root_seed,
                initial_temp_c=initial_temp_c,
                thermal_solver=thermal_solver,
            )
        )
    return devices
