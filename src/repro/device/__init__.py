"""Whole-phone models.

A :class:`~repro.device.phone.Device` composes a SoC instance, a thermal
network, an OS-behaviour model and a power supply (battery or Monsoon) into
the thing ACCUBENCH actually drives.  The catalog builds the paper's five
handsets; the fleet module instantiates the paper's specific units.
"""

from repro.device.aging import BatteryAge, aged_battery, throttle_onset_soc
from repro.device.battery import Battery, BatterySpec
from repro.device.charging import ChargerSpec, ChargeStep, charge, time_to_charge_s
from repro.device.display import Display, DisplaySpec
from repro.device.catalog import (
    DEVICE_NAMES,
    DeviceSpec,
    ThermalSpec,
    ThrottleSpec,
    device_spec,
    google_pixel,
    lg_g5,
    nexus5,
    nexus6,
    nexus6p,
)
from repro.device.fleet import FleetUnit, build_device, paper_fleet, synthetic_fleet
from repro.device.os_model import OsBehavior
from repro.device.phone import Device, StepReport
from repro.device.power_rails import PowerSupply

__all__ = [
    "Battery",
    "BatteryAge",
    "BatterySpec",
    "ChargeStep",
    "ChargerSpec",
    "DEVICE_NAMES",
    "Device",
    "Display",
    "DisplaySpec",
    "DeviceSpec",
    "FleetUnit",
    "OsBehavior",
    "PowerSupply",
    "StepReport",
    "ThermalSpec",
    "ThrottleSpec",
    "aged_battery",
    "build_device",
    "charge",
    "device_spec",
    "google_pixel",
    "lg_g5",
    "nexus5",
    "nexus6",
    "nexus6p",
    "paper_fleet",
    "synthetic_fleet",
    "throttle_onset_soc",
    "time_to_charge_s",
]
