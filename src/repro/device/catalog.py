"""The five handsets of the study (paper Section III/IV).

Each :class:`DeviceSpec` bundles the SoC choice with the phone-level
constants that shape thermal behaviour: the RC network of the chassis, the
kernel's throttling thresholds, platform rail power, and the battery.  The
constants are calibrated to reproduce the paper's observed behaviour
(DESIGN.md §5), sized plausibly for each chassis (plastic Nexus 5, large
Nexus 6, metal Nexus 6P...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.device.battery import BatterySpec
from repro.device.os_model import InputVoltageThrottle
from repro.device.power_rails import RailBudget
from repro.errors import UnknownModelError
from repro.soc.throttling import CoreShutdownPolicy, StepwiseThrottle, ThrottlePolicy
from repro.thermal.network import ThermalLink, ThermalNetwork, ThermalNode
from repro.thermal.skin import SkinThrottleSpec


@dataclass(frozen=True)
class ThermalSpec:
    """The chassis RC network: cpu → pkg → {battery, case} → ambient.

    Capacities in J/K, resistances in K/W.
    """

    cpu_capacity: float
    pkg_capacity: float
    battery_capacity: float
    case_capacity: float
    r_cpu_pkg: float
    r_pkg_case: float
    r_pkg_battery: float
    r_battery_case: float
    r_case_ambient: float

    def build(
        self, initial_temp_c: float = 25.0, solver: str = "euler"
    ) -> ThermalNetwork:
        """Instantiate the chassis network at a uniform temperature.

        ``solver`` selects the integration scheme — sub-stepped explicit
        Euler or the exact ``expm`` propagator (see
        :mod:`repro.thermal.propagator`).
        """
        return ThermalNetwork(
            nodes=[
                ThermalNode("cpu", self.cpu_capacity),
                ThermalNode("pkg", self.pkg_capacity),
                ThermalNode("battery", self.battery_capacity),
                ThermalNode("case", self.case_capacity),
                ThermalNode("ambient", math.inf),
            ],
            links=[
                ThermalLink("cpu", "pkg", self.r_cpu_pkg),
                ThermalLink("pkg", "case", self.r_pkg_case),
                ThermalLink("pkg", "battery", self.r_pkg_battery),
                ThermalLink("battery", "case", self.r_battery_case),
                ThermalLink("case", "ambient", self.r_case_ambient),
            ],
            initial_temp_c=initial_temp_c,
            solver=solver,
        )


@dataclass(frozen=True)
class ThrottleSpec:
    """Kernel thermal-mitigation configuration.

    ``critical_temp_c`` of ``None`` disables the hotplug hard limit
    (only the Nexus 5 in the study sheds a core).
    """

    throttle_temp_c: float
    clear_temp_c: float
    poll_interval_s: float = 1.0
    max_steps: int = 12
    critical_temp_c: Optional[float] = None
    restore_temp_c: float = 75.0
    max_offline: int = 1

    def build(self) -> ThrottlePolicy:
        """Instantiate fresh mitigation state."""
        shutdown = None
        if self.critical_temp_c is not None:
            shutdown = CoreShutdownPolicy(
                critical_temp_c=self.critical_temp_c,
                restore_temp_c=self.restore_temp_c,
                max_offline=self.max_offline,
                poll_interval_s=min(0.5, self.poll_interval_s),
            )
        return ThrottlePolicy(
            stepwise=StepwiseThrottle(
                throttle_temp_c=self.throttle_temp_c,
                clear_temp_c=self.clear_temp_c,
                poll_interval_s=self.poll_interval_s,
                max_steps=self.max_steps,
            ),
            shutdown=shutdown,
        )


@dataclass(frozen=True)
class DeviceSpec:
    """Everything needed to instantiate one handset model."""

    name: str
    soc_name: str
    thermal: ThermalSpec
    throttle: ThrottleSpec
    rails: RailBudget
    battery: BatterySpec
    voltage_throttle: Optional[InputVoltageThrottle] = None
    #: Optional skin-temperature mitigation (none of the paper's five
    #: models ship one in this catalog; custom specs can add it).
    skin_throttle: Optional[SkinThrottleSpec] = None
    sensor_quantization_c: float = 0.1
    sensor_noise_sigma_c: float = 0.05
    #: Fixed frequency used for the FIXED-FREQUENCY workload (low enough
    #: to never thermally throttle on any unit), MHz.
    fixed_freq_mhz: float = 960.0


def nexus5() -> DeviceSpec:
    """Nexus 5 (SD-800, 2013): plastic chassis, the 80 °C core-shedding
    policy of paper Figure 1, and the Table I voltage bins."""
    return DeviceSpec(
        name="Nexus 5",
        soc_name="SD-800",
        thermal=ThermalSpec(
            cpu_capacity=1.2, pkg_capacity=12.0,
            battery_capacity=40.0, case_capacity=16.0,
            r_cpu_pkg=8.0, r_pkg_case=2.2, r_pkg_battery=3.5,
            r_battery_case=4.0, r_case_ambient=10.0,
        ),
        throttle=ThrottleSpec(
            throttle_temp_c=78.0, clear_temp_c=75.0, poll_interval_s=3.0,
            critical_temp_c=80.0, restore_temp_c=76.0, max_offline=1,
        ),
        rails=RailBudget(awake_idle_w=0.30, asleep_w=0.020),
        battery=BatterySpec(capacity_mah=2300.0, nominal_v=3.8, max_v=4.3),
        fixed_freq_mhz=960.0,
    )


def nexus6() -> DeviceSpec:
    """Nexus 6 (SD-805, 2014): a physically larger phone — more thermal
    mass and surface — pushing a 28 nm Krait to 2.65 GHz."""
    return DeviceSpec(
        name="Nexus 6",
        soc_name="SD-805",
        thermal=ThermalSpec(
            cpu_capacity=1.3, pkg_capacity=14.0,
            battery_capacity=50.0, case_capacity=22.0,
            r_cpu_pkg=7.0, r_pkg_case=2.2, r_pkg_battery=3.2,
            r_battery_case=3.8, r_case_ambient=8.8,
        ),
        throttle=ThrottleSpec(throttle_temp_c=76.0, clear_temp_c=73.0),
        rails=RailBudget(awake_idle_w=0.35, asleep_w=0.022),
        battery=BatterySpec(capacity_mah=3220.0, nominal_v=3.8, max_v=4.3),
        fixed_freq_mhz=960.0,
    )


def nexus6p() -> DeviceSpec:
    """Nexus 6P (SD-810, 2015): metal chassis spreads heat well, but the
    20 nm octa-core underneath throttles notoriously hard [18]."""
    return DeviceSpec(
        name="Nexus 6P",
        soc_name="SD-810",
        thermal=ThermalSpec(
            cpu_capacity=1.5, pkg_capacity=16.0,
            battery_capacity=50.0, case_capacity=24.0,
            r_cpu_pkg=4.5, r_pkg_case=2.0, r_pkg_battery=3.0,
            r_battery_case=3.4, r_case_ambient=8.0,
        ),
        throttle=ThrottleSpec(throttle_temp_c=73.0, clear_temp_c=70.0),
        rails=RailBudget(awake_idle_w=0.40, asleep_w=0.025),
        battery=BatterySpec(capacity_mah=3450.0, nominal_v=3.82, max_v=4.35),
        fixed_freq_mhz=960.0,
    )


def lg_g5() -> DeviceSpec:
    """LG G5 (SD-820, 2016): 14 nm FinFET quad Kryo — and the OS policy
    that throttles on battery input voltage (paper Figure 10)."""
    return DeviceSpec(
        name="LG G5",
        soc_name="SD-820",
        thermal=ThermalSpec(
            cpu_capacity=1.0, pkg_capacity=12.0,
            battery_capacity=40.0, case_capacity=16.0,
            r_cpu_pkg=7.2, r_pkg_case=2.5, r_pkg_battery=3.2,
            r_battery_case=3.8, r_case_ambient=9.0,
        ),
        throttle=ThrottleSpec(throttle_temp_c=80.0, clear_temp_c=77.0),
        rails=RailBudget(awake_idle_w=0.32, asleep_w=0.020),
        battery=BatterySpec(capacity_mah=2800.0, nominal_v=3.85, max_v=4.4),
        voltage_throttle=InputVoltageThrottle(threshold_v=4.0, ceiling_mhz=1478.0),
        fixed_freq_mhz=883.0,
    )


def google_pixel() -> DeviceSpec:
    """Google Pixel (SD-821, 2016): the matured 14 nm respin."""
    return DeviceSpec(
        name="Google Pixel",
        soc_name="SD-821",
        thermal=ThermalSpec(
            cpu_capacity=1.0, pkg_capacity=12.0,
            battery_capacity=38.0, case_capacity=15.0,
            r_cpu_pkg=9.0, r_pkg_case=2.5, r_pkg_battery=3.2,
            r_battery_case=3.8, r_case_ambient=9.2,
        ),
        throttle=ThrottleSpec(throttle_temp_c=79.0, clear_temp_c=76.0),
        rails=RailBudget(awake_idle_w=0.30, asleep_w=0.018),
        battery=BatterySpec(capacity_mah=2770.0, nominal_v=3.85, max_v=4.4),
        fixed_freq_mhz=883.0,
    )


_BUILDERS = {
    "Nexus 5": nexus5,
    "Nexus 6": nexus6,
    "Nexus 6P": nexus6p,
    "LG G5": lg_g5,
    "Google Pixel": google_pixel,
}

#: All catalogued handsets, generation order.
DEVICE_NAMES: Tuple[str, ...] = tuple(_BUILDERS)


def device_spec(name: str) -> DeviceSpec:
    """Build a catalogued handset spec by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise UnknownModelError("device", name, DEVICE_NAMES) from None
