"""Abstract CPU-bound task specifications.

The simulator does not execute real π iterations; it accounts for them
(:mod:`repro.soc.perf`).  These specs say *how long* or *how much* to run:

* :class:`FixedDurationTask` — run flat out for T seconds and count
  completed iterations: the paper's main performance metric
  (T_workload = 5 minutes).
* :class:`FixedWorkTask` — run until N iterations complete and integrate
  energy: the paper's Figure 1 / Figure 2 energy-for-fixed-work metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FixedDurationTask:
    """Run all cores at ``utilization`` for ``duration_s`` seconds.

    Attributes
    ----------
    duration_s:
        Wall-clock run time, seconds (the paper uses 300 s).
    utilization:
        Per-core utilization, in (0, 1].
    """

    duration_s: float
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError("utilization must be within (0, 1]")


@dataclass(frozen=True)
class FixedWorkTask:
    """Run all cores until ``iterations`` π iterations complete.

    Attributes
    ----------
    iterations:
        Work target, in π-workload iterations.
    utilization:
        Per-core utilization, in (0, 1].
    timeout_s:
        Abort bound — a heavily-throttled device must still terminate.
    """

    iterations: float
    utilization: float = 1.0
    timeout_s: float = 7200.0

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError("utilization must be within (0, 1]")
        if self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
