"""Real micro-kernels with known compute/memory character.

The simulator abstracts workloads by a memory-boundedness fraction β; this
module grounds that abstraction in runnable code.  Each kernel is a small,
deterministic Python routine with a known character:

* ``pi_spigot`` — integer arithmetic on a tiny state: fully CPU-bound, the
  paper's actual benchmark (β ≈ 0);
* ``alu_mix`` — arithmetic over registers/immediates: CPU-bound;
* ``stream_walk`` — strided traversal of a large buffer: memory-bound on
  real hardware (β high);
* ``pointer_chase`` — dependent random loads: latency-bound, the extreme
  memory case.

``characterize`` times a kernel at two problem sizes to expose whether its
cost scales with compute or with touched bytes, and suggests a β for the
simulator.  (Python timings are not silicon timings; the *classification*
is what transfers.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.rng import derive_stream
from repro.workloads.pi_digits import pi_digits


@dataclass(frozen=True)
class Kernel:
    """One runnable micro-kernel.

    Attributes
    ----------
    name:
        Kernel name.
    run:
        Callable taking a problem size and returning a checksum (so the
        work cannot be optimized away and tests can verify determinism).
    suggested_beta:
        The memory-boundedness the kernel maps to in the simulator.
    """

    name: str
    run: Callable[[int], int]
    suggested_beta: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.suggested_beta < 1.0:
            raise ConfigurationError("suggested_beta must be within [0, 1)")


def _pi_spigot(size: int) -> int:
    digits = pi_digits(max(1, size))
    return sum(int(d) for d in digits)


def _alu_mix(size: int) -> int:
    acc = 0x9E3779B9
    for i in range(size):
        acc = (acc * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        acc ^= acc >> 33
        acc = (acc + i) & (2**64 - 1)
    return acc & 0xFFFFFFFF


def _stream_walk(size: int) -> int:
    buffer = list(range(size))
    total = 0
    stride = 16
    for start in range(stride):
        total += sum(buffer[start::stride])
    return total & 0xFFFFFFFF


def _pointer_chase(size: int) -> int:
    rng = derive_stream(size, "pointer-chase")
    permutation = rng.permutation(size)
    index = 0
    for _ in range(size):
        index = int(permutation[index])
    return index


#: The kernel suite, keyed by name.
KERNELS: Dict[str, Kernel] = {
    "pi_spigot": Kernel(name="pi_spigot", run=_pi_spigot, suggested_beta=0.0),
    "alu_mix": Kernel(name="alu_mix", run=_alu_mix, suggested_beta=0.05),
    "stream_walk": Kernel(
        name="stream_walk", run=_stream_walk, suggested_beta=0.45
    ),
    "pointer_chase": Kernel(
        name="pointer_chase", run=_pointer_chase, suggested_beta=0.75
    ),
}


def kernel(name: str) -> Kernel:
    """Look up a kernel by name."""
    try:
        return KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel {name!r}; kernels: {', '.join(KERNELS)}"
        ) from None


@dataclass(frozen=True)
class KernelProfile:
    """Timing characterization of one kernel.

    Attributes
    ----------
    name:
        Kernel name.
    seconds_per_unit:
        Wall time per problem-size unit at the large size.
    scaling_exponent:
        log-log slope of time vs size between the two probe sizes
        (1.0 = linear; the π spigot is superlinear in digit count).
    suggested_beta:
        The simulator boundedness to use for this kernel.
    """

    name: str
    seconds_per_unit: float
    scaling_exponent: float
    suggested_beta: float


def characterize(
    name: str, small: int = 400, large: int = 1600
) -> KernelProfile:
    """Time one kernel at two sizes and summarize its scaling."""
    if not 0 < small < large:
        raise ConfigurationError("need 0 < small < large problem sizes")
    chosen = kernel(name)
    import math

    def timed(size: int) -> float:
        start = time.perf_counter()
        chosen.run(size)
        return max(time.perf_counter() - start, 1e-9)

    t_small = timed(small)
    t_large = timed(large)
    exponent = math.log(t_large / t_small) / math.log(large / small)
    return KernelProfile(
        name=chosen.name,
        seconds_per_unit=t_large / large,
        scaling_exponent=exponent,
        suggested_beta=chosen.suggested_beta,
    )
