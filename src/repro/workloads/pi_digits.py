"""Computing the digits of π (the paper's actual benchmark payload).

The benchmark app computed the first 4,285 digits of π per iteration — a
number chosen to take about one second at the Nexus 6's top frequency
(Section III).  We implement the unbounded Rabinowitz–Wagon spigot
algorithm, which streams decimal digits using only integer arithmetic —
fully CPU-bound with a tiny working set, exactly the properties that make
performance linear in clock frequency.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from repro.errors import ConfigurationError
from repro.soc.perf import PI_DIGITS_PER_ITERATION

#: Ground truth for validation: the first 50 decimal digits of π.
PI_FIRST_50_DIGITS = "31415926535897932384626433832795028841971693993751"


def pi_digit_stream() -> Iterator[int]:
    """Yield decimal digits of π indefinitely (3, 1, 4, 1, 5, ...).

    Unbounded spigot after Gibbons' streaming formulation of
    Rabinowitz–Wagon: maintain a linear fractional transformation
    ``(q, r, t, k)`` and emit a digit whenever the integer part of the
    interval is pinned down.
    """
    q, r, t, k, digit, n = 1, 0, 1, 1, 3, 3
    while True:
        if 4 * q + r - t < digit * t:
            yield digit
            q, r, digit = 10 * q, 10 * (r - digit * t), (10 * (3 * q + r)) // t - 10 * digit
        else:
            q, r, t, digit, k, n = (
                q * k,
                (2 * q + r) * n,
                t * n,
                (q * (7 * k + 2) + r * n) // (t * n),
                k + 1,
                n + 2,
            )


def pi_digits(count: int) -> str:
    """Return the first ``count`` decimal digits of π as a string ("314…")."""
    if count < 1:
        raise ConfigurationError("count must be at least 1")
    stream = pi_digit_stream()
    return "".join(str(next(stream)) for _ in range(count))


def pi_iteration(digit_count: int = PI_DIGITS_PER_ITERATION) -> str:
    """Run one benchmark iteration and return a digest of the digits.

    This is the real computation a device under test performs; the examples
    use it to demonstrate the workload, and the digest lets tests verify
    the computation was not optimized away.
    """
    digits = pi_digits(digit_count)
    return hashlib.sha256(digits.encode("ascii")).hexdigest()
