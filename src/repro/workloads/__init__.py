"""Benchmark workloads.

The paper's workload is "compute the first 4,285 digits of π in a loop on
all cores".  :mod:`repro.workloads.pi_digits` really computes those digits
(a spigot algorithm) for the examples and as the work-unit anchor;
:mod:`repro.workloads.cpu_task` gives the simulator's abstract view of the
same task (fixed-duration or fixed-work, fully CPU-bound).
"""

from repro.workloads.cpu_task import FixedDurationTask, FixedWorkTask
from repro.workloads.kernels import (
    KERNELS,
    Kernel,
    KernelProfile,
    characterize,
    kernel,
)
from repro.workloads.pi_digits import (
    PI_FIRST_50_DIGITS,
    pi_digit_stream,
    pi_digits,
    pi_iteration,
)

__all__ = [
    "FixedDurationTask",
    "FixedWorkTask",
    "KERNELS",
    "Kernel",
    "KernelProfile",
    "PI_FIRST_50_DIGITS",
    "characterize",
    "kernel",
    "pi_digit_stream",
    "pi_digits",
    "pi_iteration",
]
