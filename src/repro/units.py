"""Unit conventions and conversion helpers.

The library uses a single unit convention everywhere:

========================  =======================================
Quantity                  Unit
========================  =======================================
temperature               degrees Celsius (``float``)
frequency                 megahertz (``float`` or ``int``)
voltage                   volts (``float``)
current                   amperes (``float``)
power                     watts (``float``)
energy                    joules (``float``)
time                      seconds (``float``)
heat capacity             joules per kelvin
thermal resistance        kelvin per watt
========================  =======================================

Voltage tables extracted from kernel sources (the paper's Table I) are in
millivolts; :func:`mv_to_v` converts them at the boundary.
"""

from __future__ import annotations

import math

ZERO_CELSIUS_IN_KELVIN = 273.15

#: Ambient target used throughout the paper's experiments (Section III).
PAPER_AMBIENT_C = 26.0

#: THERMABOX regulation band around the target (Section III).
PAPER_AMBIENT_TOLERANCE_C = 0.5


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return temp_c + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    return temp_k - ZERO_CELSIUS_IN_KELVIN


def mv_to_v(millivolts: float) -> float:
    """Convert millivolts (kernel voltage-table units) to volts."""
    return millivolts / 1000.0


def v_to_mv(volts: float) -> float:
    """Convert volts to millivolts."""
    return volts * 1000.0


def mhz_to_hz(mhz: float) -> float:
    """Convert megahertz to hertz."""
    return mhz * 1e6


def hz_to_mhz(hz: float) -> float:
    """Convert hertz to megahertz."""
    return hz / 1e6


def joules_to_mwh(joules: float) -> float:
    """Convert joules to milliwatt-hours (a common battery-capacity unit)."""
    return joules / 3.6


def mwh_to_joules(mwh: float) -> float:
    """Convert milliwatt-hours to joules."""
    return mwh * 3.6


def minutes(count: float) -> float:
    """Return ``count`` minutes expressed in seconds."""
    return count * 60.0


def require_finite(context: str, **fields: float) -> None:
    """Reject NaN/infinite numbers at a construction boundary.

    Range checks like ``value <= 0`` silently pass NaN (every comparison
    with NaN is false), so configs must screen for finiteness *first*.
    Raises :class:`~repro.errors.ConfigurationError` naming the offending
    field, e.g. ``require_finite("AccubenchConfig", warmup_s=self.warmup_s)``.
    """
    from repro.errors import ConfigurationError

    for name, value in fields.items():
        if not math.isfinite(value):
            raise ConfigurationError(
                f"{context}.{name} must be a finite number, got {value!r}"
            )
