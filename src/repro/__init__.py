"""repro - reproduction of *Quantifying Process Variations and Its Impacts
on Smartphones* (Srinivasa, Haseley, Hempstead, Challen; ISPASS 2019).

The paper measured, on physical handsets inside a temperature-stabilized
chamber, how silicon process variation makes identical-looking smartphones
differ in performance and energy.  This library rebuilds the entire
measurement stack as a physics-based simulation -- silicon variation and
binning, chassis thermals, DVFS and throttling, the Monsoon power monitor,
the THERMABOX chamber -- and the paper's ACCUBENCH methodology on top.

Quick start::

    from repro import CampaignRunner, unconstrained

    runner = CampaignRunner()
    result = runner.run_fleet("Nexus 5", unconstrained())
    print(f"performance spread: {result.performance_variation:.1%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    Accubench,
    AccubenchConfig,
    CampaignConfig,
    CampaignRunner,
    DeviceResult,
    ExperimentResult,
    ExperimentSpec,
    IterationResult,
    fixed_frequency,
    unconstrained,
)
from repro.device import (
    Device,
    DeviceSpec,
    FleetUnit,
    build_device,
    device_spec,
    paper_fleet,
    synthetic_fleet,
)
from repro.errors import ReproError
from repro.instruments import MonsoonPowerMonitor, Thermabox, ThermaboxConfig
from repro.sim import World
from repro.silicon import SiliconProfile, nexus5_table
from repro.soc import soc_by_name

__version__ = "1.0.0"

__all__ = [
    "Accubench",
    "AccubenchConfig",
    "CampaignConfig",
    "CampaignRunner",
    "Device",
    "DeviceResult",
    "DeviceSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "FleetUnit",
    "IterationResult",
    "MonsoonPowerMonitor",
    "ReproError",
    "SiliconProfile",
    "Thermabox",
    "ThermaboxConfig",
    "World",
    "build_device",
    "device_spec",
    "fixed_frequency",
    "nexus5_table",
    "paper_fleet",
    "soc_by_name",
    "synthetic_fleet",
    "unconstrained",
    "__version__",
]
