"""Experiment logging (the benchmark app's record-keeping).

The paper's app "uses APIs exposed by the app to perform restricted
operations such as reading the CPU temperature, acquiring wakelocks,
logging and storing experimental logs" (Section III).  This logger is that
storage backend: an append-only JSONL file, one document per record, with
typed helpers for iterations and free-form events plus a loader for
analysis sessions.

Used bare, every append opens and closes the file — crash-safe, right for
the occasional note.  Used as a context manager, the logger holds one
file handle for the duration of the block (with :meth:`flush`/:meth:`close`
under caller control) — right for campaigns that log hundreds of records::

    with ExperimentLogger(path) as log:
        for result in results:
            log.log_iteration(result)

Either way the format is identical: one JSON document per line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Union

from repro.core.results import IterationResult
from repro.core.serialize import iteration_from_dict, iteration_to_dict
from repro.errors import InstrumentError

#: Format marker written into every record.
LOG_FORMAT = "repro-log-v1"


class ExperimentLogger:
    """Append-only JSONL experiment log."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = None

    @property
    def path(self) -> Path:
        """Where records are stored."""
        return self._path

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ExperimentLogger":
        if self._handle is None:
            self._handle = self._path.open("a")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def flush(self) -> None:
        """Push buffered records to disk (no-op outside a context)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Close the held handle; subsequent appends reopen per record."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def log_iteration(self, result: IterationResult) -> None:
        """Append one protocol iteration."""
        self._append({"kind": "iteration", "data": iteration_to_dict(result)})

    def log_event(self, event: str, **detail: Any) -> None:
        """Append a free-form event (phase markers, chamber status...)."""
        if not event:
            raise InstrumentError("event name must be non-empty")
        self._append({"kind": "event", "event": event, "detail": detail})

    def log_note(self, text: str) -> None:
        """Append an operator note."""
        self._append({"kind": "note", "text": text})

    def _append(self, record: Dict[str, Any]) -> None:
        record = {"format": LOG_FORMAT, **record}
        line = json.dumps(record, sort_keys=True) + "\n"
        if self._handle is not None:
            self._handle.write(line)
        else:
            with self._path.open("a") as fp:
                fp.write(line)

    # -- reading ---------------------------------------------------------

    def records(self) -> Iterator[Dict[str, Any]]:
        """Yield every record, oldest first.

        Safe to call mid-context: buffered appends are flushed first so a
        reader always sees everything logged so far.
        """
        self.flush()
        if not self._path.exists():
            return
        with self._path.open() as fp:
            for line_number, line in enumerate(fp, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise InstrumentError(
                        f"{self._path}:{line_number}: corrupt log line ({error})"
                    ) from None
                if record.get("format") != LOG_FORMAT:
                    raise InstrumentError(
                        f"{self._path}:{line_number}: unknown log format "
                        f"{record.get('format')!r}"
                    )
                yield record

    def iterations(
        self, serial: Optional[str] = None, workload: Optional[str] = None
    ) -> List[IterationResult]:
        """Load logged iterations, optionally filtered."""
        results = []
        for record in self.records():
            if record["kind"] != "iteration":
                continue
            result = iteration_from_dict(record["data"])
            if serial is not None and result.serial != serial:
                continue
            if workload is not None and result.workload != workload:
                continue
            results.append(result)
        return results

    def events(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        """Load logged events, optionally filtered by name."""
        return [
            record
            for record in self.records()
            if record["kind"] == "event"
            and (event is None or record["event"] == event)
        ]

    def summary(self) -> Dict[str, int]:
        """Counts per record kind."""
        counts: Dict[str, int] = {}
        for record in self.records():
            counts[record["kind"]] = counts.get(record["kind"], 0) + 1
        return counts
