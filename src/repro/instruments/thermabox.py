"""THERMABOX: the paper's controlled thermal environment (Figure 3).

A RaspberryPi polls a thermistor probe and power-cycles a compressor (cool)
and a 250 W halogen lamp (heat) to hold the chamber air at the target
temperature within ±0.5 °C.  The chamber is modelled as a single air/wall
thermal mass leaking to the room, with the device under test's waste heat
injected as an extra load.

Actuation realism that matters for regulation quality: the controller is a
bang-bang loop with a deadband *inside* the reported tolerance, and the
compressor has a minimum off-time (short-cycling a refrigeration compressor
destroys it, so every real build rate-limits it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, InstrumentError
from repro.instruments.probe import ThermistorProbe
from repro.units import PAPER_AMBIENT_C, PAPER_AMBIENT_TOLERANCE_C


@dataclass(frozen=True)
class ThermaboxConfig:
    """THERMABOX build parameters.

    Attributes
    ----------
    target_c:
        Setpoint, °C (the paper runs everything at 26 °C).
    tolerance_c:
        Guaranteed regulation band half-width, °C.
    heater_w:
        Halogen-lamp heat input when on, watts.
    cooler_w:
        Heat removed by the compressor when on, watts (positive number).
    air_heat_capacity:
        Chamber air + inner-wall thermal mass, J/K.
    wall_resistance:
        Chamber-to-room thermal resistance, K/W.
    controller_period_s:
        RaspberryPi control-loop period, seconds.
    deadband_c:
        Bang-bang deadband half-width (must be inside ``tolerance_c``).
    compressor_min_off_s:
        Minimum compressor off-time between runs, seconds.
    """

    target_c: float = PAPER_AMBIENT_C
    tolerance_c: float = PAPER_AMBIENT_TOLERANCE_C
    heater_w: float = 250.0
    cooler_w: float = 220.0
    air_heat_capacity: float = 6000.0
    wall_resistance: float = 0.22
    controller_period_s: float = 1.0
    deadband_c: float = 0.2
    compressor_min_off_s: float = 20.0

    def __post_init__(self) -> None:
        if self.tolerance_c <= 0:
            raise ConfigurationError("tolerance_c must be positive")
        if self.deadband_c <= 0 or self.deadband_c >= self.tolerance_c:
            raise ConfigurationError("deadband_c must be within (0, tolerance_c)")
        if self.heater_w <= 0 or self.cooler_w <= 0:
            raise ConfigurationError("actuator powers must be positive")
        if self.air_heat_capacity <= 0 or self.wall_resistance <= 0:
            raise ConfigurationError("chamber plant constants must be positive")
        if self.controller_period_s <= 0:
            raise ConfigurationError("controller_period_s must be positive")
        if self.compressor_min_off_s < 0:
            raise ConfigurationError("compressor_min_off_s must be non-negative")


class Thermabox:
    """The chamber plant plus its bang-bang controller."""

    def __init__(
        self,
        config: ThermaboxConfig = ThermaboxConfig(),
        initial_temp_c: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config
        self._air_c = config.target_c if initial_temp_c is None else initial_temp_c
        self._probe = ThermistorProbe(
            noise_sigma_c=0.05 if rng is not None else 0.0,
            initial_temp_c=self._air_c,
            rng=rng,
        )
        self._heater_on = False
        self._cooler_on = False
        self._time_s = 0.0
        self._next_control_s = 0.0
        self._cooler_off_since_s = -config.compressor_min_off_s
        self._heater_seconds = 0.0
        self._cooler_seconds = 0.0

    @property
    def air_temp_c(self) -> float:
        """True chamber air temperature, °C."""
        return self._air_c

    @property
    def heater_on(self) -> bool:
        """Whether the halogen lamp is currently powered."""
        return self._heater_on

    @property
    def cooler_on(self) -> bool:
        """Whether the compressor is currently powered."""
        return self._cooler_on

    @property
    def heater_duty_seconds(self) -> float:
        """Total heater on-time so far, seconds."""
        return self._heater_seconds

    @property
    def cooler_duty_seconds(self) -> float:
        """Total compressor on-time so far, seconds."""
        return self._cooler_seconds

    @property
    def elapsed_s(self) -> float:
        """Total chamber time simulated so far, seconds — the denominator
        for actuator duty cycles."""
        return self._time_s

    def probe_reading_c(self) -> float:
        """What the controller's thermistor currently reads, °C."""
        return self._probe.read()

    def is_within_band(self) -> bool:
        """True if the true air temperature is inside target ± tolerance."""
        return abs(self._air_c - self.config.target_c) <= self.config.tolerance_c

    def wait_until_stable(
        self, room_temp_c: float, dt: float = 1.0, timeout_s: float = 3600.0
    ) -> float:
        """Run the chamber until it holds the band for 60 s; returns the time
        spent settling.  The benchmarking app performs exactly this check
        before starting iterations (Section III).
        """
        settled_for = 0.0
        waited = 0.0
        while settled_for < 60.0:
            if waited >= timeout_s:
                raise InstrumentError(
                    f"THERMABOX failed to stabilize within {timeout_s} s"
                )
            self.step(room_temp_c, dt)
            waited += dt
            settled_for = settled_for + dt if self.is_within_band() else 0.0
        return waited

    def run_for(
        self, room_temp_c: float, duration_s: float, load_w: float = 0.0
    ) -> None:
        """Advance the chamber by ``duration_s`` in controller-period chunks.

        The macro-step companion to :meth:`step`: the engine's sleep
        fast-forward covers a whole poll window at once, but the RaspberryPi
        still wakes every ``controller_period_s`` — so the window is split
        into even chunks no longer than one controller period, preserving
        the control cadence (and the probe's per-decision noise draws)
        exactly.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        period = self.config.controller_period_s
        chunks = max(1, math.ceil(duration_s / period - 1e-9))
        h = duration_s / chunks
        for _ in range(chunks):
            self.step(room_temp_c, h, load_w=load_w)

    def step(self, room_temp_c: float, dt: float, load_w: float = 0.0) -> None:
        """Advance the chamber by ``dt`` seconds.

        ``load_w`` is heat dumped into the chamber by the device under test.
        """
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        self._probe.advance(self._air_c, dt)
        self._time_s += dt
        while self._time_s >= self._next_control_s:
            self._next_control_s += self.config.controller_period_s
            self._control()
        power = load_w
        if self._heater_on:
            power += self.config.heater_w
            self._heater_seconds += dt
        if self._cooler_on:
            power -= self.config.cooler_w
            self._cooler_seconds += dt
        leak = (self._air_c - room_temp_c) / self.config.wall_resistance
        self._air_c += dt * (power - leak) / self.config.air_heat_capacity

    def _control(self) -> None:
        """One RaspberryPi control decision from the probe reading."""
        reading = self._probe.read()
        low = self.config.target_c - self.config.deadband_c
        high = self.config.target_c + self.config.deadband_c
        if reading < low:
            self._heater_on = True
            if self._cooler_on:
                self._cooler_on = False
                self._cooler_off_since_s = self._time_s
        elif reading > high:
            self._heater_on = False
            can_start = (
                self._time_s - self._cooler_off_since_s
                >= self.config.compressor_min_off_s
            )
            if not self._cooler_on and can_start:
                self._cooler_on = True
        else:
            self._heater_on = False
            if self._cooler_on:
                self._cooler_on = False
                self._cooler_off_since_s = self._time_s


class BatchedThermabox:
    """A column of independent THERMABOXes advanced with array arithmetic.

    The batched fleet engine gives every unit its own chamber (exactly as
    the serial runner builds one :class:`Thermabox` per device), but holds
    all of their state in ``(units,)`` arrays so one engine step costs a
    handful of vector operations instead of ``units`` Python calls.  Units
    whose simulation is frozen (e.g. already past their cooldown target
    while others still cool) are excluded via the boolean ``mask`` — a
    masked-out chamber does not advance at all, matching a serial world
    that simply is not being stepped.

    Deterministic only: the serial runner builds chambers with ``rng=None``
    (noiseless probe), and that is the only configuration the batch path
    accepts — per-unit probe noise would reintroduce per-unit draw loops.
    Step-for-step, each column reproduces a serial :class:`Thermabox`
    bit-exactly (same float operation order per unit).
    """

    def __init__(
        self,
        config: ThermaboxConfig = ThermaboxConfig(),
        count: int = 1,
        initial_temp_c: Optional[float] = None,
    ) -> None:
        if count < 1:
            raise ConfigurationError("count must be at least 1")
        self.config = config
        base = config.target_c if initial_temp_c is None else initial_temp_c
        probe = ThermistorProbe(noise_sigma_c=0.0, initial_temp_c=base)
        self._probe_tau = probe._tau
        self._probe_quantum = probe._quantum
        self._count = count
        self._air = np.full(count, float(base))
        self._element = np.full(count, float(base))
        self._time = np.zeros(count)
        self._next_control = np.zeros(count)
        self._heater = np.zeros(count, dtype=bool)
        self._cooler = np.zeros(count, dtype=bool)
        self._off_since = np.full(count, -config.compressor_min_off_s)
        self._heater_seconds = np.zeros(count)
        self._cooler_seconds = np.zeros(count)
        # Scalar fast-path state: an upper bound on every column's clock,
        # a lower bound on the next control deadline, and whether any
        # column's heater/cooler is currently on.  They only gate *skips*
        # (a step that provably cannot fire a control decision or accrue
        # duty), so a loose bound falls through to the exact vector path.
        self._time_max = 0.0
        self._next_control_min = 0.0
        self._any_heater = False
        self._any_cooler = False

    @property
    def count(self) -> int:
        """Number of chamber columns."""
        return self._count

    @property
    def air_temps_c(self) -> np.ndarray:
        """True per-unit chamber air temperatures, °C (read-only view)."""
        view = self._air.view()
        view.setflags(write=False)
        return view

    @property
    def heater_duty_seconds(self) -> np.ndarray:
        """Per-unit heater on-time so far, seconds."""
        return self._heater_seconds.copy()

    @property
    def cooler_duty_seconds(self) -> np.ndarray:
        """Per-unit compressor on-time so far, seconds."""
        return self._cooler_seconds.copy()

    @property
    def elapsed_s(self) -> np.ndarray:
        """Per-unit chamber time simulated so far, seconds."""
        return self._time.copy()

    def step_masked(
        self,
        mask: Optional[np.ndarray],
        room_temp_c: float,
        dt: float,
        load_w: np.ndarray,
    ) -> None:
        """Advance the masked chamber columns by ``dt`` seconds.

        ``load_w`` is each unit's device waste heat; entries outside the
        mask are ignored.  ``mask=None`` means every column: the
        all-units hot path performs the same per-element arithmetic
        without boolean gather/scatter, so it is bit-exact with passing
        a full mask.
        """
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        alpha = 1.0 - math.exp(-dt / self._probe_tau)
        if mask is None:
            self._element += alpha * (self._air - self._element)
            self._time += dt
            self._time_max += dt
            if self._time_max >= self._next_control_min:
                due = self._time >= self._next_control
                while due.any():
                    self._next_control[due] += self.config.controller_period_s
                    self._control(due)
                    due = self._time >= self._next_control
                self._next_control_min = float(self._next_control.min())
        else:
            self._element[mask] += alpha * (self._air[mask] - self._element[mask])
            self._time[mask] += dt
            self._time_max += dt
            if self._time_max >= self._next_control_min:
                due = mask & (self._time >= self._next_control)
                while due.any():
                    self._next_control[due] += self.config.controller_period_s
                    self._control(due)
                    due = mask & (self._time >= self._next_control)
                # Masked columns may still sit before their deadline, so
                # the lower bound over all columns remains valid.
                self._next_control_min = float(self._next_control.min())
        if self._any_heater or self._any_cooler:
            heating = self._heater if mask is None else (mask & self._heater)
            cooling = self._cooler if mask is None else (mask & self._cooler)
            self._heater_seconds[heating] += dt
            self._cooler_seconds[cooling] += dt
            power = (
                np.asarray(load_w, dtype=float)
                + heating * self.config.heater_w
                - cooling * self.config.cooler_w
            )
        else:
            # All elements off: the duty adds and the heater/cooler power
            # terms are exact zeros, so dropping them changes nothing.
            power = np.asarray(load_w, dtype=float)
        leak = (self._air - room_temp_c) / self.config.wall_resistance
        delta = dt * (power - leak) / self.config.air_heat_capacity
        if mask is None:
            self._air += delta
        else:
            self._air[mask] += delta[mask]

    def run_for_masked(
        self,
        mask: Optional[np.ndarray],
        room_temp_c: float,
        duration_s: float,
        load_w: np.ndarray,
    ) -> None:
        """Advance masked columns (``None`` for all) by ``duration_s`` in
        controller-period chunks — the batched mirror of
        :meth:`Thermabox.run_for`."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        period = self.config.controller_period_s
        chunks = max(1, math.ceil(duration_s / period - 1e-9))
        h = duration_s / chunks
        for _ in range(chunks):
            self.step_masked(mask, room_temp_c, h, load_w)

    def wait_until_stable(
        self, room_temp_c: float, dt: float = 1.0, timeout_s: float = 3600.0
    ) -> np.ndarray:
        """Run every column until it holds the band for 60 s; returns the
        per-unit settling times.  Each column advances only until *its own*
        settle completes, exactly like serial chambers settled one by one."""
        pending = np.ones(self._count, dtype=bool)
        settled = np.zeros(self._count)
        waited = np.zeros(self._count)
        no_load = np.zeros(self._count)
        while pending.any():
            if (waited[pending] >= timeout_s).any():
                raise InstrumentError(
                    f"THERMABOX failed to stabilize within {timeout_s} s"
                )
            self.step_masked(pending, room_temp_c, dt, no_load)
            waited[pending] += dt
            in_band = (
                np.abs(self._air - self.config.target_c) <= self.config.tolerance_c
            )
            settled[pending] = np.where(
                in_band[pending], settled[pending] + dt, 0.0
            )
            pending &= settled < 60.0
        return waited

    def _control(self, due: np.ndarray) -> None:
        """One control decision for every due column (vector bang-bang)."""
        reading = self._element
        if self._probe_quantum > 0:
            reading = (
                np.rint(self._element / self._probe_quantum) * self._probe_quantum
            )
        low = self.config.target_c - self.config.deadband_c
        high = self.config.target_c + self.config.deadband_c
        heat = due & (reading < low)
        chill = due & (reading > high)
        band = due & ~heat & ~chill

        self._heater[heat] = True
        stop_cool = heat & self._cooler
        self._cooler[stop_cool] = False
        self._off_since[stop_cool] = self._time[stop_cool]

        self._heater[chill] = False
        can_start = chill & ~self._cooler & (
            self._time - self._off_since >= self.config.compressor_min_off_s
        )
        self._cooler[can_start] = True

        self._heater[band] = False
        stop_band = band & self._cooler
        self._cooler[stop_band] = False
        self._off_since[stop_band] = self._time[stop_band]

        self._any_heater = bool(self._heater.any())
        self._any_cooler = bool(self._cooler.any())
