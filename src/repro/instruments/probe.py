"""Thermistor temperature probe (ESP-8266 + thermistor, paper Figure 3).

A thermistor in free air is a first-order system: its reading lags the true
air temperature with a time constant of a few seconds, plus ADC noise and
quantization.  The THERMABOX controller regulates on *this* reading, so the
lag and noise bound how tightly the chamber can hold its band.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class ThermistorProbe:
    """First-order-lag temperature probe with read noise."""

    def __init__(
        self,
        time_constant_s: float = 4.0,
        noise_sigma_c: float = 0.05,
        quantization_c: float = 0.0625,
        initial_temp_c: float = 25.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if time_constant_s <= 0:
            raise ConfigurationError("time_constant_s must be positive")
        if noise_sigma_c < 0:
            raise ConfigurationError("noise_sigma_c must be non-negative")
        if quantization_c < 0:
            raise ConfigurationError("quantization_c must be non-negative")
        if noise_sigma_c > 0 and rng is None:
            raise ConfigurationError("noise_sigma_c > 0 requires an rng")
        self._tau = time_constant_s
        self._noise = noise_sigma_c
        self._quantum = quantization_c
        self._element_c = initial_temp_c
        self._rng = rng

    @property
    def element_temp_c(self) -> float:
        """Current sensing-element temperature (before noise), °C."""
        return self._element_c

    def advance(self, true_temp_c: float, dt: float) -> None:
        """Let the element track the true temperature for ``dt`` seconds."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        alpha = 1.0 - math.exp(-dt / self._tau)
        self._element_c += alpha * (true_temp_c - self._element_c)

    def read(self) -> float:
        """Sample the probe: element temperature + noise, quantized, °C."""
        value = self._element_c
        if self._noise > 0 and self._rng is not None:
            value += float(self._rng.normal(0.0, self._noise))
        if self._quantum > 0:
            value = round(value / self._quantum) * self._quantum
        return value
