"""Simulated measurement apparatus.

The paper's numbers come from two instruments, both modelled here:

* the **Monsoon power monitor** [15], which replaces the battery, supplies a
  configurable voltage and samples the current drawn; and
* the **THERMABOX**, a home-built thermal chamber (RaspberryPi controller,
  thermistor probe, 250 W halogen heater, compressor) holding the ambient
  at 26 ± 0.5 °C.
"""

from repro.instruments.logger import ExperimentLogger
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.probe import ThermistorProbe
from repro.instruments.thermabox import Thermabox, ThermaboxConfig

__all__ = [
    "ExperimentLogger",
    "MonsoonPowerMonitor",
    "Thermabox",
    "ThermaboxConfig",
    "ThermistorProbe",
]
