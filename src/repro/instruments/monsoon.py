"""Monsoon power monitor model.

The Monsoon replaces the phone's battery: it supplies a configured voltage
on the main channel and samples the drawn current at 5 kHz.  Powering the
device this way removes battery state as a variance source (Section III) —
and, on the LG G5, *created* the paper's Figure 10 anomaly, because the OS
throttles on input voltage and the battery's printed nominal 3.85 V is far
below a healthy cell's working voltage.

Energy here is the trapezoid-free exact integral of ``P = V·I`` over engine
steps (the simulated current is piecewise constant per step, so the sum is
exact, not an approximation).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import InstrumentError

#: Monsoon main-channel sampling rate, Hz (for reported sample counts).
SAMPLE_RATE_HZ = 5000.0

#: Main channel output range of the real instrument, volts.
MIN_OUTPUT_V = 2.01
MAX_OUTPUT_V = 4.55


class MonsoonPowerMonitor:
    """A Monsoon main channel: voltage source + current/energy meter."""

    def __init__(self, output_voltage_v: float, record_samples: bool = False) -> None:
        self._voltage = 0.0
        self.set_voltage(output_voltage_v)
        self._record = record_samples
        self._samples: List[Tuple[float, float]] = []
        self._elapsed_s = 0.0
        self._energy_j = 0.0
        self._energy_total_j = 0.0
        self._charge_c = 0.0
        self._peak_current_a = 0.0
        self._enabled = True

    # -- supply interface (what the device sees) ------------------------

    @property
    def output_voltage_v(self) -> float:
        """Voltage presented on the main channel, volts."""
        if not self._enabled:
            raise InstrumentError("Monsoon output is disabled")
        return self._voltage

    def draw(self, power_w: float, dt: float) -> float:
        """Account for the device drawing ``power_w`` for ``dt`` seconds.

        Returns the sampled current in amperes.
        """
        if not self._enabled:
            raise InstrumentError("cannot draw from a disabled Monsoon output")
        if power_w < 0:
            raise InstrumentError("drawn power must be non-negative")
        if dt <= 0:
            raise InstrumentError("dt must be positive")
        current = power_w / self._voltage
        self._elapsed_s += dt
        self._energy_j += power_w * dt
        self._energy_total_j += power_w * dt
        self._charge_c += current * dt
        self._peak_current_a = max(self._peak_current_a, current)
        if self._record:
            self._samples.append((self._elapsed_s, current))
        return current

    # -- operator interface (what the experimenter uses) ----------------

    def set_voltage(self, output_voltage_v: float) -> None:
        """Configure the main-channel voltage (instrument hard limits apply)."""
        if not MIN_OUTPUT_V <= output_voltage_v <= MAX_OUTPUT_V:
            raise InstrumentError(
                f"output voltage {output_voltage_v} V outside the instrument's "
                f"[{MIN_OUTPUT_V}, {MAX_OUTPUT_V}] V range"
            )
        self._voltage = output_voltage_v

    def disable_output(self) -> None:
        """Cut power to the device."""
        self._enabled = False

    def enable_output(self) -> None:
        """Restore power to the device."""
        self._enabled = True

    def reset_counters(self) -> None:
        """Zero the integrators (start of a measurement window)."""
        self._elapsed_s = 0.0
        self._energy_j = 0.0
        self._charge_c = 0.0
        self._peak_current_a = 0.0
        self._samples.clear()

    @property
    def elapsed_s(self) -> float:
        """Measurement window length so far, seconds."""
        return self._elapsed_s

    @property
    def energy_j(self) -> float:
        """Energy delivered in the current window, joules."""
        return self._energy_j

    @property
    def energy_drawn_j(self) -> float:
        """Total energy delivered since construction (never reset), joules.

        This is the metering interface shared with
        :class:`~repro.device.battery.Battery`; window counters above are
        Monsoon-specific conveniences.
        """
        return self._energy_total_j

    @property
    def charge_c(self) -> float:
        """Charge delivered in the current window, coulombs."""
        return self._charge_c

    @property
    def mean_power_w(self) -> float:
        """Mean power over the current window, watts."""
        if self._elapsed_s == 0.0:
            raise InstrumentError("no samples in the current window")
        return self._energy_j / self._elapsed_s

    @property
    def mean_current_a(self) -> float:
        """Mean current over the current window, amperes."""
        if self._elapsed_s == 0.0:
            raise InstrumentError("no samples in the current window")
        return self._charge_c / self._elapsed_s

    @property
    def peak_current_a(self) -> float:
        """Largest current sample in the current window, amperes."""
        return self._peak_current_a

    @property
    def nominal_sample_count(self) -> int:
        """Samples the real instrument would have taken at 5 kHz."""
        return int(self._elapsed_s * SAMPLE_RATE_HZ)

    def samples(self) -> List[Tuple[float, float]]:
        """Recorded (time, current) samples, if recording was enabled."""
        if not self._record:
            raise InstrumentError("sample recording was not enabled")
        return list(self._samples)
