"""Acceptance validation: does this build still reproduce the paper?

Runs the calibrated checks of DESIGN.md §5 programmatically — the same
bands the benchmark suite asserts — and reports pass/fail per check.  Used
by ``repro-bench validate`` and handy after touching any calibrated
constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.paper_targets import TABLE2_TARGETS, in_band
from repro.core.runner import CampaignRunner
from repro.device.catalog import device_spec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one acceptance check.

    Attributes
    ----------
    name:
        What was checked, e.g. ``"Nexus 5 performance variation"``.
    passed:
        Whether the measurement landed in its band.
    measured:
        The measured value.
    expected:
        Human-readable expectation, e.g. ``"0.08..0.22 (paper 0.14)"``.
    """

    name: str
    passed: bool
    measured: float
    expected: str


def validate_model(
    runner: CampaignRunner, model: str
) -> List[CheckResult]:
    """Run both workloads on one model's paper fleet and check its bands."""
    if model not in TABLE2_TARGETS:
        raise ConfigurationError(
            f"no paper targets for {model!r}; known: {', '.join(TABLE2_TARGETS)}"
        )
    target = TABLE2_TARGETS[model]
    spec = device_spec(model)
    performance = runner.run_fleet(model, unconstrained())
    energy = runner.run_fleet(model, fixed_frequency(spec))

    checks = [
        CheckResult(
            name=f"{model} performance variation",
            passed=in_band(
                performance.performance_variation, target.performance_band
            ),
            measured=performance.performance_variation,
            expected=(
                f"{target.performance_band[0]:.2f}.."
                f"{target.performance_band[1]:.2f} (paper {target.performance:.2f})"
            ),
        ),
        CheckResult(
            name=f"{model} energy variation",
            passed=in_band(energy.energy_variation, target.energy_band),
            measured=energy.energy_variation,
            expected=(
                f"{target.energy_band[0]:.2f}.."
                f"{target.energy_band[1]:.2f} (paper {target.energy:.2f})"
            ),
        ),
    ]

    fixed_perfs = [d.performance for d in energy.devices]
    fixed_spread = (max(fixed_perfs) - min(fixed_perfs)) / min(fixed_perfs)
    checks.append(
        CheckResult(
            name=f"{model} fixed-frequency perf spread",
            passed=fixed_spread < 0.04,
            measured=fixed_spread,
            expected="< 0.04 (paper ≤ 0.013..0.026)",
        )
    )
    checks.append(
        CheckResult(
            name=f"{model} repeatability RSD",
            passed=performance.mean_performance_rsd < 0.03,
            measured=performance.mean_performance_rsd,
            expected="< 0.03 (paper avg 0.011)",
        )
    )
    return checks


def validate_study(
    runner: CampaignRunner, models: Optional[Sequence[str]] = None
) -> List[CheckResult]:
    """Validate several models (default: all five)."""
    chosen = list(models) if models else list(TABLE2_TARGETS)
    results: List[CheckResult] = []
    for model in chosen:
        results.extend(validate_model(runner, model))
    return results


def all_passed(results: Sequence[CheckResult]) -> bool:
    """True if every check passed."""
    return all(check.passed for check in results)


def render_report(results: Sequence[CheckResult]) -> str:
    """Human-readable validation report."""
    lines = []
    for check in results:
        status = "PASS" if check.passed else "FAIL"
        lines.append(
            f"[{status}] {check.name:<42s} measured {check.measured:6.3f}  "
            f"expected {check.expected}"
        )
    passed = sum(1 for c in results if c.passed)
    lines.append(f"{passed}/{len(results)} checks passed")
    return "\n".join(lines)
