"""A running SoC: one physical die's CPU subsystem.

:class:`Soc` binds a :class:`~repro.soc.catalog.SocSpec` to one sampled
:class:`~repro.silicon.transistor.SiliconProfile` and evolves the runtime
state — governor decisions, thermal mitigation, RBCPR voltage — one
simulation step at a time.  The paper's causal chain lives here:

    silicon profile → leakage → die temperature → mitigation → frequency
    → performance (and, integrated over time, energy).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.silicon.transistor import SiliconProfile
from repro.soc.catalog import SocSpec, VoltageMode
from repro.soc.cluster import ClusterState
from repro.soc.dvfs import Governor, PerformanceGovernor
from repro.soc.rbcpr import RbcprBlock
from repro.soc.throttling import MitigationState, ThrottlePolicy


class Soc:
    """Runtime state of one SoC instance (one physical chip)."""

    def __init__(
        self,
        spec: SocSpec,
        profile: SiliconProfile,
        throttle: ThrottlePolicy,
        bin_index: int = 0,
        rbcpr: Optional[RbcprBlock] = None,
    ) -> None:
        if spec.voltage_mode is VoltageMode.ADAPTIVE and rbcpr is None:
            rbcpr = RbcprBlock(process=spec.process)
        if spec.voltage_mode is VoltageMode.BINNED and rbcpr is not None:
            raise ConfigurationError("binned-voltage SoCs have no RBCPR block")
        effective_bin = bin_index if spec.voltage_mode is VoltageMode.BINNED else 0
        self.spec = spec
        self.profile = profile
        self.bin_index = effective_bin
        self.throttle = throttle
        self.rbcpr = rbcpr
        self.clusters: Tuple[ClusterState, ...] = tuple(
            ClusterState(cluster_spec, spec.process, profile, effective_bin)
            for cluster_spec in spec.clusters
        )
        self._governors: Dict[str, Governor] = {
            cluster.spec.name: PerformanceGovernor() for cluster in self.clusters
        }
        self.mitigation = MitigationState()
        #: Ceiling imposed from outside the thermal stack (the LG G5's
        #: input-voltage throttle, paper Figure 10), MHz; ``None`` = none.
        self.external_ceiling_mhz: Optional[float] = None
        #: Extra ladder steps shaved off the ceiling by device-level
        #: policies that watch other sensors (skin-temperature throttles).
        self.external_ceiling_steps: int = 0

    def set_governor(self, governor: Governor, cluster: Optional[str] = None) -> None:
        """Install a governor on one cluster or (default) all clusters."""
        if cluster is None:
            for state in self.clusters:
                self._governors[state.spec.name] = governor
            return
        if cluster not in self._governors:
            known = ", ".join(self._governors)
            raise ConfigurationError(f"unknown cluster {cluster!r}; known: {known}")
        self._governors[cluster] = governor

    def set_utilization(self, utilization: float) -> None:
        """Load (or idle) every core on every cluster."""
        for cluster in self.clusters:
            cluster.set_utilization(utilization)

    def set_memory_boundedness(self, fraction: float) -> None:
        """Set the running workload's memory-stall fraction on all clusters."""
        for cluster in self.clusters:
            cluster.set_memory_boundedness(fraction)

    def reset(self) -> None:
        """Return to a just-booted state (between experiment iterations the
        app does not reboot, so callers reset only at experiment start)."""
        self.throttle.reset()
        self.mitigation = MitigationState()
        for cluster in self.clusters:
            cluster.set_frequency(cluster.spec.min_freq_mhz)
            cluster.set_utilization(0.0)
            cluster.set_online_count(cluster.spec.core_count)
            cluster.voltage_adjust_v = 0.0

    def step(self, die_temp_c: float, now_s: float, dt: float) -> Tuple[float, float]:
        """Advance one simulation step.

        Runs the mitigation loop, lets governors pick frequencies under the
        mitigated ceiling, applies RBCPR voltage, and returns
        ``(power_w, ops_done)`` for the step.
        """
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        mitigation = self.throttle.update(die_temp_c, now_s)
        self.mitigation = mitigation

        total_steps = mitigation.ceiling_steps + self.external_ceiling_steps
        external_mhz = self.external_ceiling_mhz
        governors = self._governors
        # RBCPR's adjustment depends only on die temperature and silicon,
        # so one evaluation serves every cluster this step.
        adjust = (
            self.rbcpr.voltage_adjust_v(self.profile, die_temp_c)
            if self.rbcpr is not None
            else None
        )
        for cluster in self.clusters:
            spec = cluster.spec
            ladder = spec.freq_table_mhz
            ceiling_index = len(ladder) - 1 - total_steps
            if ceiling_index < 0:
                ceiling_index = 0
            ceiling_mhz = ladder[ceiling_index]
            if external_mhz is not None and external_mhz < ceiling_mhz:
                ceiling_mhz = external_mhz
            cores = cluster.cores
            total_util = 0.0
            for core in cores:
                total_util += core.utilization
            cluster.set_frequency(
                governors[spec.name].target_frequency(
                    spec, total_util / len(cores), ceiling_mhz
                )
            )
            if adjust is not None:
                cluster.voltage_adjust_v = adjust

        # Hard-limit hotplug applies to the big (first) cluster, matching
        # the Nexus 5 behaviour of dropping one Krait core at 80 °C.
        big = self.clusters[0]
        big.set_online_count(
            max(0, big.spec.core_count - mitigation.offline_cores)
        )

        power_w = 0.0
        ops_rate_total = 0.0
        for cluster in self.clusters:
            power_w += cluster.power_w(die_temp_c)
            ops_rate_total += cluster.ops_per_second()
        return power_w, ops_rate_total * dt

    def leakage_w(self, die_temp_c: float) -> float:
        """Leakage power at the current operating point, watts."""
        return sum(cluster.leakage_w(die_temp_c) for cluster in self.clusters)

    def frequencies_mhz(self) -> Dict[str, float]:
        """Current frequency per cluster, MHz."""
        return {cluster.spec.name: cluster.freq_mhz for cluster in self.clusters}

    def voltages_v(self) -> Dict[str, float]:
        """Current rail voltage per cluster, volts."""
        return {cluster.spec.name: cluster.voltage_v() for cluster in self.clusters}

    def online_cores(self) -> int:
        """Total online cores across clusters."""
        return sum(cluster.online_count for cluster in self.clusters)
