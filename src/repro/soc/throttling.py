"""Thermal throttling policies (msm_thermal-style mitigation).

Two mechanisms, composable per device:

* :class:`StepwiseThrottle` — the sampled mitigation loop: every poll, if
  the die is above the throttle temperature, lower the frequency ceiling by
  one ladder step; once it cools below the clear temperature (hysteresis),
  raise the ceiling one step.
* :class:`CoreShutdownPolicy` — the hard-limit hotplug response: at the
  critical temperature take cores offline (the Nexus 5 drops one core at
  80 °C, paper Figure 1) and restore them after the die cools.

The *interaction* of silicon leakage with these policies is the paper's
entire performance-variation story: leakier dies recover more slowly after
a mitigation step, so they spend more time capped (Section IV-B, the
device-653 Pixel anecdote).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MitigationState:
    """What the thermal policy currently allows.

    Attributes
    ----------
    ceiling_steps:
        How many ladder steps the frequency ceiling is lowered by.
    offline_cores:
        How many cores the policy is holding offline.
    """

    ceiling_steps: int = 0
    offline_cores: int = 0


@dataclass
class StepwiseThrottle:
    """Sampled step-down/step-up frequency mitigation with hysteresis.

    Attributes
    ----------
    throttle_temp_c:
        Die temperature above which the ceiling steps down each poll.
    clear_temp_c:
        Die temperature below which the ceiling steps back up each poll;
        must be below ``throttle_temp_c`` (hysteresis band).
    poll_interval_s:
        Mitigation loop period (msm_thermal polls at ~1 s... 250 ms
        depending on era; per-device catalogs choose).
    max_steps:
        Deepest allowed ceiling reduction, ladder steps.
    """

    throttle_temp_c: float
    clear_temp_c: float
    poll_interval_s: float = 1.0
    max_steps: int = 12
    _steps: int = field(default=0, init=False)
    _next_poll_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.clear_temp_c >= self.throttle_temp_c:
            raise ConfigurationError("clear_temp_c must be below throttle_temp_c")
        if self.poll_interval_s <= 0:
            raise ConfigurationError("poll_interval_s must be positive")
        if self.max_steps < 1:
            raise ConfigurationError("max_steps must be at least 1")

    def reset(self) -> None:
        """Clear mitigation state (device reboot between experiments)."""
        self._steps = 0
        self._next_poll_s = 0.0

    @property
    def steps(self) -> int:
        """Current ceiling reduction, ladder steps."""
        return self._steps

    def update(self, die_temp_c: float, now_s: float) -> int:
        """Advance the mitigation loop; returns the ceiling reduction."""
        while now_s >= self._next_poll_s:
            self._next_poll_s += self.poll_interval_s
            if die_temp_c >= self.throttle_temp_c:
                self._steps = min(self._steps + 1, self.max_steps)
            elif die_temp_c <= self.clear_temp_c:
                self._steps = max(self._steps - 1, 0)
        return self._steps


@dataclass
class CoreShutdownPolicy:
    """Hard-limit hotplug mitigation.

    Attributes
    ----------
    critical_temp_c:
        Die temperature at which a core is taken offline.
    restore_temp_c:
        Die temperature below which one core is brought back.
    max_offline:
        Most cores the policy will remove (the Nexus 5 removes one).
    poll_interval_s:
        How often the hard-limit monitor samples.
    """

    critical_temp_c: float
    restore_temp_c: float
    max_offline: int = 1
    poll_interval_s: float = 1.0
    _offline: int = field(default=0, init=False)
    _next_poll_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.restore_temp_c >= self.critical_temp_c:
            raise ConfigurationError("restore_temp_c must be below critical_temp_c")
        if self.max_offline < 0:
            raise ConfigurationError("max_offline must be non-negative")
        if self.poll_interval_s <= 0:
            raise ConfigurationError("poll_interval_s must be positive")

    def reset(self) -> None:
        """Clear mitigation state."""
        self._offline = 0
        self._next_poll_s = 0.0

    @property
    def offline(self) -> int:
        """Cores currently held offline."""
        return self._offline

    def update(self, die_temp_c: float, now_s: float) -> int:
        """Advance the hard-limit monitor; returns cores held offline."""
        while now_s >= self._next_poll_s:
            self._next_poll_s += self.poll_interval_s
            if die_temp_c >= self.critical_temp_c:
                self._offline = min(self._offline + 1, self.max_offline)
            elif die_temp_c <= self.restore_temp_c:
                self._offline = max(self._offline - 1, 0)
        return self._offline


@dataclass
class ThrottlePolicy:
    """A device's complete thermal-mitigation stack.

    Attributes
    ----------
    stepwise:
        The frequency-capping loop (always present on the studied devices).
    shutdown:
        Optional hard-limit hotplug policy (Nexus 5).
    """

    stepwise: StepwiseThrottle
    shutdown: Optional[CoreShutdownPolicy] = None

    def reset(self) -> None:
        """Clear all mitigation state."""
        self.stepwise.reset()
        if self.shutdown is not None:
            self.shutdown.reset()

    def update(self, die_temp_c: float, now_s: float) -> MitigationState:
        """Advance both mechanisms and return the combined allowance."""
        steps = self.stepwise.update(die_temp_c, now_s)
        offline = (
            self.shutdown.update(die_temp_c, now_s)
            if self.shutdown is not None
            else 0
        )
        return MitigationState(ceiling_steps=steps, offline_cores=offline)
