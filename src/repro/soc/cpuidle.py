"""CPU idle states (cpuidle) and idle-state selection.

The ACCUBENCH cooldown phase works because idle silicon stops burning
power: cores drop into WFI, retention, or full power collapse, trading
wake latency for leakage savings.  This module models that ladder and the
menu-governor selection logic — including the energy break-even point that
makes deep states *lose* energy on short idles (the entry/exit work costs
more than the leakage saved).

Leakage fractions are relative to the core's active-idle leakage: WFI
clock-gates (leakage continues), retention drops the rail to a
data-holding voltage, power collapse removes it entirely (the device
model's suspended state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IdleState:
    """One rung of the cpuidle ladder.

    Attributes
    ----------
    name:
        State name, e.g. ``"wfi"`` or ``"power-collapse"``.
    leak_fraction:
        Residual leakage relative to an idle-but-powered core, in [0, 1].
    entry_exit_latency_us:
        Round-trip latency to use the state once, microseconds.
    entry_energy_uj:
        Energy burned entering + exiting (cache flush, state save),
        microjoules.
    """

    name: str
    leak_fraction: float
    entry_exit_latency_us: float
    entry_energy_uj: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("idle-state name must be non-empty")
        if not 0.0 <= self.leak_fraction <= 1.0:
            raise ConfigurationError("leak_fraction must be within [0, 1]")
        if self.entry_exit_latency_us < 0 or self.entry_energy_uj < 0:
            raise ConfigurationError("latency and energy must be non-negative")

    def break_even_us(self, idle_leak_w: float) -> float:
        """Idle duration above which the state saves energy, microseconds.

        Saved power while resident is ``idle_leak_w · (1 − leak_fraction)``;
        the state pays for itself once that integral covers the entry
        energy.  A state that saves nothing never breaks even (``inf``).
        """
        if idle_leak_w < 0:
            raise ConfigurationError("idle_leak_w must be non-negative")
        saved_w = idle_leak_w * (1.0 - self.leak_fraction)
        if saved_w <= 0.0:
            return float("inf")
        return self.entry_energy_uj / saved_w  # µJ / W = µs


def qcom_idle_ladder() -> Tuple[IdleState, ...]:
    """A Qualcomm-era idle ladder: WFI → retention → power collapse."""
    return (
        IdleState(
            name="wfi",
            leak_fraction=1.0,  # clock-gated: dynamic stops, leakage stays
            entry_exit_latency_us=2.0,
            entry_energy_uj=0.2,
        ),
        IdleState(
            name="retention",
            leak_fraction=0.35,
            entry_exit_latency_us=80.0,
            entry_energy_uj=35.0,
        ),
        IdleState(
            name="power-collapse",
            leak_fraction=0.03,
            entry_exit_latency_us=900.0,
            entry_energy_uj=350.0,
        ),
    )


@dataclass(frozen=True)
class MenuGovernor:
    """Idle-state selection à la Linux's menu governor.

    Picks the deepest state whose round-trip latency fits the latency
    budget *and* whose energy break-even fits the predicted idle duration.

    Attributes
    ----------
    ladder:
        Available states, shallow to deep.
    latency_budget_us:
        QoS bound on wakeup latency (interactive systems keep this small).
    """

    ladder: Tuple[IdleState, ...]
    latency_budget_us: float = 10_000.0

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ConfigurationError("the idle ladder must not be empty")
        if self.latency_budget_us <= 0:
            raise ConfigurationError("latency_budget_us must be positive")
        depths = [state.leak_fraction for state in self.ladder]
        if depths != sorted(depths, reverse=True):
            raise ConfigurationError(
                "ladder must be ordered shallow (leaky) to deep"
            )

    def select(
        self, predicted_idle_us: float, idle_leak_w: float
    ) -> IdleState:
        """The deepest admissible state for a predicted idle period."""
        if predicted_idle_us < 0:
            raise ConfigurationError("predicted_idle_us must be non-negative")
        choice = self.ladder[0]
        for state in self.ladder:
            if state.entry_exit_latency_us > self.latency_budget_us:
                continue
            if state.entry_exit_latency_us > predicted_idle_us:
                continue
            if state.break_even_us(idle_leak_w) > predicted_idle_us:
                continue
            choice = state
        return choice

    def idle_energy_uj(
        self, state: IdleState, idle_us: float, idle_leak_w: float
    ) -> float:
        """Energy spent across one idle period in a given state, µJ."""
        if idle_us < 0:
            raise ConfigurationError("idle_us must be non-negative")
        resident_uj = idle_leak_w * state.leak_fraction * idle_us
        return state.entry_energy_uj + resident_uj


def best_state_by_energy(
    ladder: Sequence[IdleState], idle_us: float, idle_leak_w: float
) -> IdleState:
    """Oracle choice: the state minimizing energy for a known idle length."""
    if not ladder:
        raise ConfigurationError("the idle ladder must not be empty")
    governor = MenuGovernor(ladder=tuple(ladder))
    return min(
        ladder, key=lambda s: governor.idle_energy_uj(s, idle_us, idle_leak_w)
    )


def sleep_residency_fraction(
    poll_interval_s: float, wake_duration_s: float
) -> float:
    """Fraction of the cooldown phase actually spent power-collapsed.

    The app wakes every ``poll_interval_s`` (the paper's 5 s) for
    ``wake_duration_s`` to read the sensor; the rest is deep sleep.
    """
    if poll_interval_s <= 0:
        raise ConfigurationError("poll_interval_s must be positive")
    if not 0.0 <= wake_duration_s < poll_interval_s:
        raise ConfigurationError(
            "wake_duration_s must be within [0, poll_interval_s)"
        )
    return 1.0 - wake_duration_s / poll_interval_s
