"""Thread placement across clusters (HMP-style scheduling).

The paper's workload deliberately saturates every core, but studying
partial loads — one busy thread, a game using two cores — needs a
placement policy.  big.LITTLE kernels of the era used HMP: demanding
threads go to the big cluster first; power-saving placements fill the
LITTLE cluster first.  This module assigns N fully-busy threads to a
:class:`~repro.soc.instance.Soc` under either policy.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.soc.instance import Soc


class Placement(enum.Enum):
    """Which cluster soaks up threads first."""

    #: Performance-first: the big cluster fills before the LITTLE one
    #: (HMP's behaviour for heavy threads).
    BIG_FIRST = "big-first"

    #: Efficiency-first: the LITTLE cluster fills before the big one.
    LITTLE_FIRST = "little-first"


def place_threads(
    soc: Soc, thread_count: int, placement: Placement = Placement.BIG_FIRST
) -> Dict[str, int]:
    """Assign ``thread_count`` fully-busy threads to the SoC's cores.

    Each thread pins one core at utilization 1.0; remaining cores idle.
    Returns ``{cluster_name: threads_placed}``.  More threads than online
    cores is rejected — this models bound, CPU-pinned benchmark threads,
    not an oversubscribed run queue.
    """
    if thread_count < 0:
        raise ConfigurationError("thread_count must be non-negative")
    clusters = list(soc.clusters)
    if placement is Placement.LITTLE_FIRST:
        clusters = list(reversed(clusters))
    capacity = sum(c.online_count for c in clusters)
    if thread_count > capacity:
        raise ConfigurationError(
            f"{thread_count} threads exceed {capacity} online cores"
        )

    assignment: Dict[str, int] = {}
    remaining = thread_count
    for cluster in clusters:
        take = min(remaining, cluster.online_count)
        assignment[cluster.spec.name] = take
        online_seen = 0
        for core in cluster.cores:
            if not core.online:
                core.set_utilization(0.0)
                continue
            core.set_utilization(1.0 if online_seen < take else 0.0)
            online_seen += 1
        remaining -= take
    return assignment


def busy_core_count(soc: Soc) -> int:
    """How many online cores currently carry a thread."""
    return sum(
        1
        for cluster in soc.clusters
        for core in cluster.cores
        if core.online and core.utilization > 0.0
    )


def idle_all(soc: Soc) -> None:
    """Remove every thread (all cores to zero utilization)."""
    soc.set_utilization(0.0)


def sweep_thread_counts(
    soc: Soc,
    die_temp_c: float,
    placement: Placement = Placement.BIG_FIRST,
    dt: float = 0.1,
) -> List[Dict[str, float]]:
    """Power/throughput at every thread count (a little scaling study).

    Returns one record per thread count from 0 to the total core count:
    ``{"threads", "power_w", "ops_per_s"}``.  The SoC's mitigation state
    advances trivially (one step per point at the given temperature);
    callers wanting thermal realism should drive a full simulation.
    """
    records = []
    total = sum(c.spec.core_count for c in soc.clusters)
    for threads in range(total + 1):
        place_threads(soc, threads, placement)
        power, ops = soc.step(die_temp_c, now_s=0.0, dt=dt)
        records.append(
            {
                "threads": float(threads),
                "power_w": power,
                "ops_per_s": ops / dt,
            }
        )
    idle_all(soc)
    return records
