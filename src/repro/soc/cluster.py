"""CPU clusters: specifications and runtime state.

A cluster is a set of identical cores sharing one clock and one voltage rail
— the DVFS granularity on every SoC in the study.  big.LITTLE SoCs
(SD-810) have two clusters; Kryo SoCs (SD-820/821) pair a performance and a
power cluster; Krait SoCs (SD-800/805) have a single quad cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.silicon.dynamic import DynamicPowerModel
from repro.silicon.leakage import LeakageModel
from repro.silicon.process import ProcessNode
from repro.silicon.transistor import SiliconProfile
from repro.silicon.vf_tables import VoltageFrequencyTable
from repro.soc.core import CoreState
from repro.soc.perf import ops_rate
from repro.units import mhz_to_hz


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one cluster.

    Attributes
    ----------
    name:
        Cluster name, e.g. ``"krait"``, ``"a57"``, ``"kryo-perf"``.
    core_count:
        Number of cores in the cluster.
    freq_table_mhz:
        The DVFS frequency ladder, strictly increasing, MHz.
    ipc:
        Work retired per cycle relative to the study's reference core
        (Krait at 1.0); drives the performance model.
    c_eff_f:
        Per-core effective switched capacitance, farads.
    leak_ref_w:
        Per-core nominal-die leakage at ``leak_ref_voltage_v`` and the
        leakage reference temperature, watts.
    leak_ref_voltage_v:
        Voltage at which ``leak_ref_w`` is specified, volts.
    vf_table:
        Binned voltage table for this cluster (one row per bin; a single
        row for SoCs that hide binning behind adaptive voltage).
    """

    name: str
    core_count: int
    freq_table_mhz: Tuple[float, ...]
    ipc: float
    c_eff_f: float
    leak_ref_w: float
    leak_ref_voltage_v: float
    vf_table: VoltageFrequencyTable

    def __post_init__(self) -> None:
        if self.core_count < 1:
            raise ConfigurationError("core_count must be at least 1")
        if self.ipc <= 0:
            raise ConfigurationError("ipc must be positive")
        if not self.freq_table_mhz:
            raise ConfigurationError("freq_table_mhz must be non-empty")
        if any(
            later <= earlier
            for earlier, later in zip(self.freq_table_mhz, self.freq_table_mhz[1:])
        ):
            raise ConfigurationError("freq_table_mhz must be strictly increasing")

    @property
    def max_freq_mhz(self) -> float:
        """Top ladder frequency, MHz."""
        return self.freq_table_mhz[-1]

    @property
    def min_freq_mhz(self) -> float:
        """Bottom ladder frequency, MHz."""
        return self.freq_table_mhz[0]

    def freq_index(self, freq_mhz: float) -> int:
        """Index of an exact ladder frequency."""
        try:
            return self.freq_table_mhz.index(freq_mhz)
        except ValueError:
            raise ConfigurationError(
                f"{freq_mhz} MHz is not in cluster {self.name!r}'s ladder"
            ) from None

    def nearest_freq_mhz(self, freq_mhz: float) -> float:
        """The highest ladder frequency not above ``freq_mhz`` (or the bottom)."""
        # Called every governor poll; the ladder is strictly increasing, so
        # walk it and stop at the first rung above the target.
        best = None
        for candidate in self.freq_table_mhz:
            if candidate > freq_mhz:
                break
            best = candidate
        return best if best is not None else self.freq_table_mhz[0]


class ClusterState:
    """Mutable runtime state of one cluster on one physical die."""

    def __init__(
        self,
        spec: ClusterSpec,
        process: ProcessNode,
        profile: SiliconProfile,
        bin_index: int = 0,
    ) -> None:
        if not 0 <= bin_index < spec.vf_table.bin_count:
            raise ConfigurationError(
                f"bin_index {bin_index} out of range for cluster {spec.name!r}"
            )
        self.spec = spec
        self.profile = profile
        self.bin_index = bin_index
        self.cores: List[CoreState] = [
            CoreState(index=i) for i in range(spec.core_count)
        ]
        self.freq_mhz: float = spec.min_freq_mhz
        #: Fraction of per-iteration time spent in frequency-independent
        #: memory stalls, measured at the cluster's top frequency.  The
        #: paper's π workload is fully CPU-bound (0.0); raising this models
        #: memory-bound work whose speed no longer tracks the clock.
        self.memory_boundedness: float = 0.0
        #: Extra voltage relative to the table, volts (set by RBCPR).
        self.voltage_adjust_v: float = 0.0
        self._dynamic = DynamicPowerModel(c_eff_f=spec.c_eff_f)
        self._leakage = LeakageModel(
            process=process,
            leak_ref_w=spec.leak_ref_w,
            ref_voltage=spec.leak_ref_voltage_v,
        )
        # Table voltage per ladder frequency, filled lazily (the table scan
        # would otherwise run every power computation).
        self._table_voltage_cache: dict = {}

    @property
    def online_count(self) -> int:
        """Number of hotplugged-in cores."""
        count = 0
        for core in self.cores:
            if core.online:
                count += 1
        return count

    def set_frequency(self, freq_mhz: float) -> None:
        """Set the shared cluster clock to an exact ladder frequency."""
        if freq_mhz == self.freq_mhz:
            return  # already validated when it was first set
        self.spec.freq_index(freq_mhz)  # validates membership
        self.freq_mhz = freq_mhz

    def set_utilization(self, utilization: float) -> None:
        """Set every core's utilization (the π workload loads all cores)."""
        for core in self.cores:
            core.set_utilization(utilization)

    def set_memory_boundedness(self, fraction: float) -> None:
        """Set the workload's memory-stall fraction (at top frequency)."""
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError("memory_boundedness must be within [0, 1)")
        self.memory_boundedness = fraction

    def _cpu_time_share(self) -> float:
        """Fraction of busy time actually switching at the current clock.

        With stall time ``t_mem`` fixed (defined via the boundedness β at
        the top frequency) and CPU time scaling as 1/f, lower clocks spend
        proportionally more of each iteration computing.
        """
        beta = self.memory_boundedness
        if beta == 0.0:
            return 1.0
        # t_cpu ∝ 1/f; t_mem = β/(1−β) · t_cpu(f_max).
        cpu_time = 1.0 / self.freq_mhz
        mem_time = (beta / (1.0 - beta)) / self.spec.max_freq_mhz
        return cpu_time / (cpu_time + mem_time)

    def set_online_count(self, count: int) -> None:
        """Hotplug cores so exactly ``count`` are online (highest-index first
        to go offline, mirroring msm hotplug behaviour)."""
        if not 0 <= count <= self.spec.core_count:
            raise ConfigurationError(
                f"online count {count} out of range for {self.spec.name!r}"
            )
        for core in self.cores:
            core.online = core.index < count

    def voltage_v(self) -> float:
        """Current rail voltage: binned table voltage plus any adjustment."""
        freq = self.freq_mhz
        table_v = self._table_voltage_cache.get(freq)
        if table_v is None:
            table_v = self.spec.vf_table.voltage_v(self.bin_index, freq)
            self._table_voltage_cache[freq] = table_v
        voltage = table_v + self.voltage_adjust_v
        if voltage <= 0:
            raise ConfigurationError("voltage adjustment drove rail non-positive")
        return voltage

    def power_w(self, die_temp_c: float) -> float:
        """Total cluster power at the current operating point, watts.

        Memory stalls don't switch the pipeline: the dynamic term scales
        by the CPU-time share of the running workload.
        """
        voltage = self.voltage_v()
        cpu_share = self._cpu_time_share()
        # Per-core dynamic power is `base * activity` with the base invariant
        # across cores; keep the per-core product and summation order of the
        # straightforward formulation so results stay bit-identical.
        base = self._dynamic.c_eff_f * voltage * voltage * mhz_to_hz(self.freq_mhz)
        dynamic = 0.0
        online = 0
        for core in self.cores:
            if core.online:
                dynamic += base * (core.utilization * cpu_share)
                online += 1
        leak_per_core = self._leakage.power(self.profile, voltage, die_temp_c)
        return dynamic + leak_per_core * online

    def leakage_w(self, die_temp_c: float) -> float:
        """Leakage-only power at the current operating point, watts."""
        voltage = self.voltage_v()
        return self._leakage.power(self.profile, voltage, die_temp_c) * self.online_count

    def ops_per_second(self) -> float:
        """Work retired per second across online cores, ops/s.

        For memory-bound work the retire rate is throughput-limited:
        1/(t_cpu(f) + t_mem), which approaches frequency-independence as
        the boundedness grows.
        """
        beta = self.memory_boundedness
        per_core = ops_rate(self.freq_mhz, self.spec.ipc)
        if beta > 0.0:
            top_rate = ops_rate(self.spec.max_freq_mhz, self.spec.ipc)
            mem_time = (beta / (1.0 - beta)) / top_rate
            per_core = 1.0 / (1.0 / per_core + mem_time)
        total = 0.0
        for core in self.cores:
            if core.online:
                total += per_core * core.utilization
        return total
