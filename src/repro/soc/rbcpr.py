"""Rapid-Bridge Core Power Reduction (RBCPR) adaptive voltage.

From SD-810 onward the studied SoCs carry a CPR hardware block [16, 17]
that closes a feedback loop around on-die ring-oscillator sensors: instead
of a static per-bin voltage table, each chip converges to the voltage *its
own silicon* needs at the current temperature.  That is why the paper found
no extractable voltage tables on the Nexus 6P, LG G5 or Pixel, and why all
Nexus 6P units report "speed-bin 0".

The model: the chip's required voltage is the nominal table value corrected
for its threshold-voltage shift (slow dies up, fast dies down), plus a
safety margin that CPR shaves as temperature rises (timing slack grows with
leakier/hotter transistors up to the inversion point; we model the shipped
behaviour: a linear recovery, floored).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.silicon.process import ProcessNode
from repro.silicon.transistor import SiliconProfile
from repro.units import mv_to_v


@dataclass(frozen=True)
class RbcprBlock:
    """Closed-loop voltage adjustment for one cluster rail.

    Attributes
    ----------
    process:
        The manufacturing process (provides volts-per-V_th compensation).
    compensation_factor:
        Fraction of the die's ideal V_th compensation the loop actually
        applies.  Shipped CPR fuses are conservative: fast silicon is not
        given the full voltage reduction its timing slack would allow
        (voltage floors, aging guard-bands), which is why leaky chips
        still run hotter — the effect the paper measures.
    base_margin_mv:
        Safety margin applied at ``reference_temp_c``, millivolts.
    margin_recovery_mv_per_c:
        Margin shaved per °C above the reference temperature.
    min_margin_mv:
        Floor the margin never drops below.
    reference_temp_c:
        Temperature at which the base margin applies.
    """

    process: ProcessNode
    compensation_factor: float = 0.55
    base_margin_mv: float = 50.0
    margin_recovery_mv_per_c: float = 0.35
    min_margin_mv: float = 10.0
    reference_temp_c: float = 25.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.compensation_factor <= 1.0:
            raise ConfigurationError("compensation_factor must be within [0, 1]")
        if self.base_margin_mv < 0:
            raise ConfigurationError("base_margin_mv must be non-negative")
        if self.min_margin_mv < 0:
            raise ConfigurationError("min_margin_mv must be non-negative")
        if self.min_margin_mv > self.base_margin_mv:
            raise ConfigurationError("min_margin_mv cannot exceed base_margin_mv")
        if self.margin_recovery_mv_per_c < 0:
            raise ConfigurationError("margin_recovery_mv_per_c must be non-negative")

    def margin_mv(self, die_temp_c: float) -> float:
        """Current safety margin, millivolts."""
        recovered = self.margin_recovery_mv_per_c * max(
            0.0, die_temp_c - self.reference_temp_c
        )
        return max(self.min_margin_mv, self.base_margin_mv - recovered)

    def voltage_adjust_v(self, profile: SiliconProfile, die_temp_c: float) -> float:
        """Adjustment added to the nominal table voltage, volts.

        Positive for slow silicon (needs more volts to close timing),
        negative for fast silicon; plus the temperature-dependent margin.
        """
        compensation = (
            self.compensation_factor * self.process.volt_per_vth * profile.vth_delta
        )
        return compensation + mv_to_v(self.margin_mv(die_temp_c))
