"""Performance model for the paper's π workload.

The paper measures performance as the number of completed iterations of
"compute the first 4,285 digits of π" across all cores in a fixed
5-minute window.  The digit count was chosen to take roughly one second at
the Nexus 6's top frequency, which anchors our work unit:

    one iteration = :data:`PI_ITERATION_OPS` ops
    ops/s of a core = frequency(Hz) · IPC

with Krait IPC defined as 1.0.  Because the workload is fully CPU-bound and
cache-resident, retired work is linear in clock frequency — the property the
paper relies on when reading performance deltas off mean-frequency deltas
(Figures 11, 12).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import mhz_to_hz

#: Nexus 6 (SD-805 Krait, IPC 1.0) top frequency, MHz.
_NEXUS6_TOP_MHZ = 2649.0

#: Ops per π iteration: one second of one Krait core at the Nexus 6's top
#: frequency (paper Section III).
PI_ITERATION_OPS = mhz_to_hz(_NEXUS6_TOP_MHZ) * 1.0

#: Digits computed per iteration (paper Section III) — used by the real
#: spigot workload in :mod:`repro.workloads.pi_digits`.
PI_DIGITS_PER_ITERATION = 4285


def ops_rate(freq_mhz: float, ipc: float) -> float:
    """Work retired per second by one fully-busy core, ops/s."""
    if freq_mhz < 0:
        raise ConfigurationError("freq_mhz must be non-negative")
    if ipc <= 0:
        raise ConfigurationError("ipc must be positive")
    return mhz_to_hz(freq_mhz) * ipc


def iterations_from_ops(total_ops: float) -> float:
    """Convert accumulated ops to (fractional) π-workload iterations."""
    if total_ops < 0:
        raise ConfigurationError("total_ops must be non-negative")
    return total_ops / PI_ITERATION_OPS
