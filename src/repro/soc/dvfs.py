"""DVFS (cpufreq) governors.

Governors pick the cluster frequency each polling interval, subject to
whatever ceiling the thermal policy currently allows.  Two of them map
directly onto the paper's experiments:

* :class:`PerformanceGovernor` — the UNCONSTRAINED workload: always run at
  the highest allowed frequency, letting thermal throttling do its thing.
* :class:`UserspaceGovernor` — the FIXED-FREQUENCY workload: pin a low
  frequency guaranteed never to throttle, so every chip does the same work
  and only energy differs.

:class:`OndemandGovernor` is the classic utilization-driven policy, included
for fidelity (idle phases) and for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ConfigurationError
from repro.soc.cluster import ClusterSpec


class Governor(Protocol):
    """A cpufreq governor: chooses a ladder frequency each poll."""

    def target_frequency(
        self, spec: ClusterSpec, utilization: float, ceiling_mhz: float
    ) -> float:
        """Return the ladder frequency to run at (≤ ``ceiling_mhz``)."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class PerformanceGovernor:
    """Always request the highest allowed frequency."""

    def target_frequency(
        self, spec: ClusterSpec, utilization: float, ceiling_mhz: float
    ) -> float:
        """The highest ladder frequency not above the ceiling."""
        return spec.nearest_freq_mhz(ceiling_mhz)


@dataclass(frozen=True)
class UserspaceGovernor:
    """Pin an exact ladder frequency (still honouring the thermal ceiling)."""

    fixed_mhz: float

    def target_frequency(
        self, spec: ClusterSpec, utilization: float, ceiling_mhz: float
    ) -> float:
        """The pinned frequency, clamped by the thermal ceiling."""
        spec.freq_index(self.fixed_mhz)  # validates ladder membership
        return spec.nearest_freq_mhz(min(self.fixed_mhz, ceiling_mhz))


@dataclass
class InteractiveGovernor:
    """The era's shipped default: jump to ``hispeed_freq`` on load, climb
    to the ceiling only after the load persists.

    A simplified qcom ``interactive``: when utilization crosses
    ``go_hispeed_load`` the clock jumps straight to ``hispeed_freq``; if
    the load is still high after ``above_hispeed_delay_s`` it ramps one
    ladder step per evaluation until the ceiling; dropping load falls back
    toward the proportional target immediately.

    Attributes
    ----------
    hispeed_freq_mhz:
        The first jump target (a mid-ladder frequency on real devices).
    go_hispeed_load:
        Utilization that triggers the jump.
    above_hispeed_delay_s:
        Dwell time at/above hispeed before climbing further.
    eval_interval_s:
        Governor evaluation period (timer rate).
    """

    hispeed_freq_mhz: float
    go_hispeed_load: float = 0.85
    above_hispeed_delay_s: float = 0.2
    eval_interval_s: float = 0.1
    _current_mhz: float = field(default=0.0, init=False)
    _hispeed_since_s: float = field(default=-1.0, init=False)
    _clock_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.hispeed_freq_mhz <= 0:
            raise ConfigurationError("hispeed_freq_mhz must be positive")
        if not 0.0 < self.go_hispeed_load <= 1.0:
            raise ConfigurationError("go_hispeed_load must be within (0, 1]")
        if self.above_hispeed_delay_s < 0:
            raise ConfigurationError("above_hispeed_delay_s must be non-negative")
        if self.eval_interval_s <= 0:
            raise ConfigurationError("eval_interval_s must be positive")

    def target_frequency(
        self, spec: ClusterSpec, utilization: float, ceiling_mhz: float
    ) -> float:
        """Interactive frequency choice (advances an internal clock per call,
        one evaluation per ``eval_interval_s``)."""
        self._clock_s += self.eval_interval_s
        if self._current_mhz == 0.0:
            self._current_mhz = spec.min_freq_mhz
        ceiling = spec.nearest_freq_mhz(ceiling_mhz)
        hispeed = min(spec.nearest_freq_mhz(self.hispeed_freq_mhz), ceiling)

        if utilization >= self.go_hispeed_load:
            if self._current_mhz < hispeed:
                self._current_mhz = hispeed
                self._hispeed_since_s = self._clock_s
            elif (
                self._hispeed_since_s >= 0
                and self._clock_s - self._hispeed_since_s
                >= self.above_hispeed_delay_s
                and self._current_mhz < ceiling
            ):
                ladder = [f for f in spec.freq_table_mhz if f <= ceiling]
                index = ladder.index(self._current_mhz)
                self._current_mhz = ladder[min(index + 1, len(ladder) - 1)]
        else:
            # Proportional fallback: the smallest frequency that carries
            # the observed load with 10% headroom.
            needed = self._current_mhz * utilization / 0.9
            candidate = spec.min_freq_mhz
            for freq in spec.freq_table_mhz:
                if freq > ceiling:
                    break
                candidate = freq
                if freq >= needed:
                    break
            self._current_mhz = candidate
            self._hispeed_since_s = -1.0
        # Ceiling may have dropped (thermal mitigation) since last call.
        self._current_mhz = min(self._current_mhz, ceiling)
        return self._current_mhz


@dataclass
class OndemandGovernor:
    """Classic ondemand: jump to max above ``up_threshold``, step down when
    utilization would still fit at the next lower frequency.

    Attributes
    ----------
    up_threshold:
        Utilization above which the governor jumps to the ceiling.
    down_margin:
        Headroom kept when stepping down.
    """

    up_threshold: float = 0.80
    down_margin: float = 0.10
    _current_mhz: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.up_threshold <= 1.0:
            raise ConfigurationError("up_threshold must be within (0, 1]")
        if not 0.0 <= self.down_margin < 1.0:
            raise ConfigurationError("down_margin must be within [0, 1)")

    def target_frequency(
        self, spec: ClusterSpec, utilization: float, ceiling_mhz: float
    ) -> float:
        """Utilization-driven frequency choice."""
        if self._current_mhz == 0.0:
            self._current_mhz = spec.min_freq_mhz
        ceiling = spec.nearest_freq_mhz(ceiling_mhz)
        if utilization >= self.up_threshold:
            self._current_mhz = ceiling
            return self._current_mhz
        # Load the current frequency carries, rescaled to candidate freqs.
        needed_mhz = self._current_mhz * utilization / (1.0 - self.down_margin)
        candidate = spec.min_freq_mhz
        for freq in spec.freq_table_mhz:
            if freq > ceiling:
                break
            candidate = freq
            if freq >= needed_mhz:
                break
        self._current_mhz = candidate
        return self._current_mhz
