"""Per-core runtime state.

Cores share their cluster's frequency and voltage (per-cluster DVFS, as on
all the studied SoCs), so the only per-core state is hotplug status and
utilization.  Hotplug matters: the Nexus 5's thermal policy takes a core
offline when the die hits 80 °C (paper Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class CoreState:
    """Runtime state of one CPU core.

    Attributes
    ----------
    index:
        Core number within its cluster.
    online:
        Whether the core is hotplugged in.  Offline cores are power-gated:
        they draw neither dynamic nor leakage power.
    utilization:
        Fraction of cycles doing work, in [0, 1].  The paper's π workload
        pins every online core at 1.0.
    """

    index: int
    online: bool = True
    utilization: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("core index must be non-negative")
        self.set_utilization(self.utilization)

    def set_utilization(self, utilization: float) -> None:
        """Set the core's utilization, validating the range."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization must be within [0, 1]")
        self.utilization = utilization

    @property
    def active_utilization(self) -> float:
        """Utilization that actually burns power (zero when offline)."""
        return self.utilization if self.online else 0.0
