"""SoC (CPU subsystem) models.

Implements the CPU side of the five Qualcomm generations the paper studies:
frequency ladders, cluster topologies (including big.LITTLE), DVFS governors,
thermal-throttling policies (stepwise capping, core shutdown at hard limits),
and the RBCPR adaptive-voltage block of SD-810-era parts.
"""

from repro.soc.catalog import (
    SOC_NAMES,
    SocSpec,
    VoltageMode,
    sd800,
    sd805,
    sd810,
    sd820,
    sd821,
    soc_by_name,
)
from repro.soc.cluster import ClusterSpec, ClusterState
from repro.soc.core import CoreState
from repro.soc.cpuidle import (
    IdleState,
    MenuGovernor,
    best_state_by_energy,
    qcom_idle_ladder,
    sleep_residency_fraction,
)
from repro.soc.dvfs import (
    Governor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    UserspaceGovernor,
)
from repro.soc.instance import Soc
from repro.soc.perf import PI_ITERATION_OPS, iterations_from_ops, ops_rate
from repro.soc.rbcpr import RbcprBlock
from repro.soc.scheduler import (
    Placement,
    busy_core_count,
    idle_all,
    place_threads,
    sweep_thread_counts,
)
from repro.soc.throttling import (
    CoreShutdownPolicy,
    MitigationState,
    StepwiseThrottle,
    ThrottlePolicy,
)

__all__ = [
    "ClusterSpec",
    "ClusterState",
    "CoreShutdownPolicy",
    "CoreState",
    "Governor",
    "IdleState",
    "InteractiveGovernor",
    "MenuGovernor",
    "MitigationState",
    "OndemandGovernor",
    "PI_ITERATION_OPS",
    "PerformanceGovernor",
    "Placement",
    "RbcprBlock",
    "SOC_NAMES",
    "Soc",
    "SocSpec",
    "StepwiseThrottle",
    "ThrottlePolicy",
    "UserspaceGovernor",
    "VoltageMode",
    "best_state_by_energy",
    "busy_core_count",
    "idle_all",
    "iterations_from_ops",
    "ops_rate",
    "place_threads",
    "qcom_idle_ladder",
    "sd800",
    "sd805",
    "sd810",
    "sd820",
    "sd821",
    "sleep_residency_fraction",
    "soc_by_name",
    "sweep_thread_counts",
]
