"""The five Qualcomm SoC generations of the study (paper Section IV).

Each builder returns a calibrated :class:`SocSpec`.  Frequency ladders are
taken from the shipped kernels (abridged to the paper-relevant steps);
power coefficients are calibrated so the simulated fleets reproduce the
paper's variation magnitudes (DESIGN.md §5) — they are plausible for the
era's silicon but are not vendor datasheet values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import UnknownModelError
from repro.silicon.binning import VoltageBinner
from repro.silicon.process import (
    PROCESS_14NM_FINFET,
    PROCESS_20NM_PLANAR,
    PROCESS_28NM_LP,
    ProcessNode,
)
from repro.silicon.vf_tables import (
    VoltageFrequencyTable,
    nexus5_table,
    single_bin_table,
)
from repro.soc.cluster import ClusterSpec


class VoltageMode(enum.Enum):
    """How a SoC's rail voltage is determined.

    ``BINNED``: a static per-bin table burnt in at manufacturing
    (SD-800/805 — the paper's Table I era).

    ``ADAPTIVE``: the RBCPR closed loop finds each chip's own voltage at
    runtime (SD-810 onward; no extractable tables, every chip reports
    "speed-bin 0").
    """

    BINNED = "binned"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class SocSpec:
    """Static description of one SoC model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"SD-800"``.
    process:
        Manufacturing process node.
    clusters:
        Cluster specs, big cluster first.
    voltage_mode:
        Binned static tables vs RBCPR adaptive voltage.
    year:
        First-device year (for generation-ordered reporting, Fig 13).
    """

    name: str
    process: ProcessNode
    clusters: Tuple[ClusterSpec, ...]
    voltage_mode: VoltageMode
    year: int

    @property
    def bin_count(self) -> int:
        """Bins exposed by the big cluster's voltage table."""
        return self.clusters[0].vf_table.bin_count

    @property
    def total_cores(self) -> int:
        """Total CPU cores across clusters."""
        return sum(cluster.core_count for cluster in self.clusters)


#: Krait 400 ladder (Nexus 5 kernel, abridged), MHz.
SD800_FREQS = (
    300.0, 422.0, 652.0, 729.0, 883.0, 960.0, 1036.0,
    1190.0, 1267.0, 1497.0, 1574.0, 1728.0, 1958.0, 2265.0,
)

#: Krait 450 ladder (Nexus 6 kernel, abridged), MHz.
SD805_FREQS = SD800_FREQS + (2457.0, 2649.0)


def _sd805_vf_table() -> VoltageFrequencyTable:
    """Generate a 7-bin table for the SD-805 with the voltage binner.

    The paper could not locate a published table for the Nexus 6
    (Section IV-A1); internally the part is still voltage binned, so we
    synthesize a table with the same structure as Table I.
    """
    anchors = (300.0, 960.0, 1574.0, 2265.0, 2649.0)
    nominal_v = (0.790, 0.860, 0.930, 1.000, 1.060)
    binner = VoltageBinner(
        process=PROCESS_28NM_LP,
        frequencies_mhz=anchors,
        nominal_voltages_v=nominal_v,
        bin_count=7,
    )
    return binner.table()


def sd800() -> SocSpec:
    """Snapdragon 800 (Nexus 5): 4× Krait 400 @ 2.27 GHz, 28 nm."""
    return SocSpec(
        name="SD-800",
        process=PROCESS_28NM_LP,
        clusters=(
            ClusterSpec(
                name="krait400",
                core_count=4,
                freq_table_mhz=SD800_FREQS,
                ipc=1.0,
                c_eff_f=0.30e-9,
                leak_ref_w=0.24,
                leak_ref_voltage_v=0.95,
                vf_table=nexus5_table(),
            ),
        ),
        voltage_mode=VoltageMode.BINNED,
        year=2013,
    )


def sd805() -> SocSpec:
    """Snapdragon 805 (Nexus 6): 4× Krait 450 @ 2.65 GHz, 28 nm.

    Clocked past the 28 nm sweet spot — the binned voltage at 2.65 GHz is
    high, which is why the paper finds the SD-805 *less efficient* than the
    SD-800 despite being faster (Figure 13).
    """
    return SocSpec(
        name="SD-805",
        process=PROCESS_28NM_LP,
        clusters=(
            ClusterSpec(
                name="krait450",
                core_count=4,
                freq_table_mhz=SD805_FREQS,
                ipc=1.0,
                c_eff_f=0.32e-9,
                leak_ref_w=0.26,
                leak_ref_voltage_v=0.95,
                vf_table=_sd805_vf_table(),
            ),
        ),
        voltage_mode=VoltageMode.BINNED,
        year=2014,
    )


def sd810() -> SocSpec:
    """Snapdragon 810 (Nexus 6P): 4× A57 + 4× A53 big.LITTLE, 20 nm.

    The last planar-process flagship, notorious for thermal throttling [18];
    RBCPR replaces static voltage tables from this generation on.
    """
    a57_freqs = (384.0, 633.0, 768.0, 960.0, 1248.0, 1440.0, 1632.0, 1824.0, 1958.0)
    a57_volts_mv = (800.0, 830.0, 850.0, 880.0, 920.0, 960.0, 1000.0, 1030.0, 1050.0)
    a53_freqs = (384.0, 600.0, 768.0, 960.0, 1248.0, 1440.0, 1555.0)
    a53_volts_mv = (750.0, 780.0, 810.0, 850.0, 890.0, 930.0, 950.0)
    return SocSpec(
        name="SD-810",
        process=PROCESS_20NM_PLANAR,
        clusters=(
            ClusterSpec(
                name="a57",
                core_count=4,
                freq_table_mhz=a57_freqs,
                ipc=1.15,
                c_eff_f=0.45e-9,
                leak_ref_w=0.16,
                leak_ref_voltage_v=0.95,
                vf_table=single_bin_table(a57_freqs, a57_volts_mv),
            ),
            ClusterSpec(
                name="a53",
                core_count=4,
                freq_table_mhz=a53_freqs,
                ipc=0.50,
                c_eff_f=0.12e-9,
                leak_ref_w=0.045,
                leak_ref_voltage_v=0.90,
                vf_table=single_bin_table(a53_freqs, a53_volts_mv),
            ),
        ),
        voltage_mode=VoltageMode.ADAPTIVE,
        year=2015,
    )


def _kryo_clusters(
    perf_c_eff: float,
    perf_leak: float,
    power_c_eff: float,
    power_leak: float,
) -> Tuple[ClusterSpec, ClusterSpec]:
    """Shared Kryo topology of the SD-820/821 (2+2 cores, 14 nm)."""
    perf_freqs = (307.0, 480.0, 691.0, 883.0, 1075.0, 1286.0, 1478.0,
                  1689.0, 1882.0, 2016.0, 2150.0)
    perf_volts_mv = (680.0, 700.0, 725.0, 750.0, 775.0, 805.0, 835.0,
                     870.0, 905.0, 935.0, 965.0)
    power_freqs = (307.0, 480.0, 691.0, 883.0, 1075.0, 1286.0, 1478.0, 1593.0)
    power_volts_mv = (680.0, 700.0, 725.0, 750.0, 775.0, 805.0, 835.0, 855.0)
    return (
        ClusterSpec(
            name="kryo-perf",
            core_count=2,
            freq_table_mhz=perf_freqs,
            ipc=1.25,
            c_eff_f=perf_c_eff,
            leak_ref_w=perf_leak,
            leak_ref_voltage_v=0.85,
            vf_table=single_bin_table(perf_freqs, perf_volts_mv),
        ),
        ClusterSpec(
            name="kryo-power",
            core_count=2,
            freq_table_mhz=power_freqs,
            ipc=1.25,
            c_eff_f=power_c_eff,
            leak_ref_w=power_leak,
            leak_ref_voltage_v=0.85,
            vf_table=single_bin_table(power_freqs, power_volts_mv),
        ),
    )


def sd820() -> SocSpec:
    """Snapdragon 820 (LG G5): 2+2 Kryo, 14 nm FinFET."""
    return SocSpec(
        name="SD-820",
        process=PROCESS_14NM_FINFET,
        clusters=_kryo_clusters(
            perf_c_eff=0.42e-9, perf_leak=0.180,
            power_c_eff=0.30e-9, power_leak=0.128,
        ),
        voltage_mode=VoltageMode.ADAPTIVE,
        year=2016,
    )


def sd821() -> SocSpec:
    """Snapdragon 821 (Google Pixel): a matured-process SD-820 respin."""
    return SocSpec(
        name="SD-821",
        process=PROCESS_14NM_FINFET,
        clusters=_kryo_clusters(
            perf_c_eff=0.40e-9, perf_leak=0.125,
            power_c_eff=0.28e-9, power_leak=0.090,
        ),
        voltage_mode=VoltageMode.ADAPTIVE,
        year=2016,
    )


_BUILDERS = {
    "SD-800": sd800,
    "SD-805": sd805,
    "SD-810": sd810,
    "SD-820": sd820,
    "SD-821": sd821,
}

#: Names of all catalogued SoCs, generation order.
SOC_NAMES: Tuple[str, ...] = tuple(_BUILDERS)


def soc_by_name(name: str) -> SocSpec:
    """Build a catalogued SoC by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise UnknownModelError("SoC", name, SOC_NAMES) from None
