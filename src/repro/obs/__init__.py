"""Observability: metrics, phase spans and live campaign telemetry.

The paper's ACCUBENCH app logs CPU temperature, phase transitions and
chamber status precisely so anomalous iterations can be *explained*
(Section III); this package gives the reproduction the same property at
the simulator level.  It is process-local and zero-dependency:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  and :class:`Span` phase tracers, all no-op-cheap when disabled (the
  default).  Instrumented code publishes through the module-level
  :func:`default_registry`; install an enabled registry with
  :func:`use_registry` (or the CLI's ``--metrics-out``) to collect.
* Exporters — :func:`write_metrics`/:func:`read_metrics` (JSON document),
  :func:`prometheus_text` (text exposition format, with
  :func:`parse_prometheus_text` as its reference parser),
  :func:`format_summary` (human table),
  :func:`span_tree`/:func:`format_span_tree` (dual-clock hierarchy), and
  :func:`write_events_jsonl`/:func:`read_events_jsonl` for engine event
  streams.
* :class:`TaskProgress`/:class:`ProgressPrinter` — per-task completion
  events from campaign execution, live as workers finish.
* The live telemetry plane — :class:`ProgressBus` (always-current run
  state, fed at shard boundaries over the same task-callback channel),
  :class:`TelemetryServer` (the ``--serve`` HTTP endpoint: ``/metrics``,
  ``/status``, ``/spans``, ``/healthz``), :mod:`repro.obs.manifest`
  (``repro-manifest-v1`` run provenance written next to every
  checkpoint/result) and :mod:`repro.obs.watch` (watchdog rules over the
  snapshot stream, plus the ``repro-bench watch`` tailer).

Worker processes snapshot their own registry into the task payload and
the parent merges the snapshot (:meth:`MetricsRegistry.merge_snapshot`), so a
``jobs=8`` campaign produces one coherent document.
"""

from repro.obs.events import (
    EVENTS_FORMAT,
    read_events_jsonl,
    write_events_jsonl,
)
from repro.obs.export import (
    aggregate_spans,
    as_document,
    format_span_tree,
    format_summary,
    parse_prometheus_text,
    prometheus_text,
    read_metrics,
    span_tree,
    write_metrics,
)
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    fingerprint_payload,
    format_manifest,
    manifest_path_for,
    read_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.progress import (
    STATUS_FORMAT,
    ProgressBus,
    ProgressCallback,
    ProgressPrinter,
    TaskProgress,
    chain_progress,
    rss_mb,
)
from repro.obs.serve import TelemetryServer
from repro.obs.spans import Span
from repro.obs.watch import (
    DropRateSpikeRule,
    StuckShardRule,
    ThroughputRegressionRule,
    Watchdog,
    WatchdogRule,
    default_watchdog,
    fetch_status,
    format_status_line,
    watch_url,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "DropRateSpikeRule",
    "EVENTS_FORMAT",
    "Gauge",
    "Histogram",
    "MANIFEST_FORMAT",
    "METRICS_FORMAT",
    "MetricsRegistry",
    "ProgressBus",
    "ProgressCallback",
    "ProgressPrinter",
    "STATUS_FORMAT",
    "Span",
    "StuckShardRule",
    "TaskProgress",
    "TelemetryServer",
    "ThroughputRegressionRule",
    "Watchdog",
    "WatchdogRule",
    "aggregate_spans",
    "as_document",
    "build_manifest",
    "chain_progress",
    "default_registry",
    "default_watchdog",
    "fetch_status",
    "fingerprint_payload",
    "format_manifest",
    "format_span_tree",
    "format_status_line",
    "format_summary",
    "manifest_path_for",
    "parse_prometheus_text",
    "prometheus_text",
    "read_events_jsonl",
    "read_manifest",
    "read_metrics",
    "rss_mb",
    "set_default_registry",
    "span_tree",
    "use_registry",
    "validate_manifest",
    "watch_url",
    "write_events_jsonl",
    "write_manifest",
    "write_metrics",
]
