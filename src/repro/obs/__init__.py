"""Observability: metrics, phase spans and live campaign telemetry.

The paper's ACCUBENCH app logs CPU temperature, phase transitions and
chamber status precisely so anomalous iterations can be *explained*
(Section III); this package gives the reproduction the same property at
the simulator level.  It is process-local and zero-dependency:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  and :class:`Span` phase tracers, all no-op-cheap when disabled (the
  default).  Instrumented code publishes through the module-level
  :func:`default_registry`; install an enabled registry with
  :func:`use_registry` (or the CLI's ``--metrics-out``) to collect.
* Exporters — :func:`write_metrics`/:func:`read_metrics` (JSON document),
  :func:`prometheus_text` (text exposition format),
  :func:`format_summary` (human table), and
  :func:`write_events_jsonl`/:func:`read_events_jsonl` for engine event
  streams.
* :class:`TaskProgress`/:class:`ProgressPrinter` — per-task completion
  events from campaign execution, live as workers finish.

Worker processes snapshot their own registry into the task payload and
the parent merges it (:meth:`MetricsRegistry.merge_snapshot`), so a
``jobs=8`` campaign produces one coherent document.
"""

from repro.obs.events import (
    EVENTS_FORMAT,
    read_events_jsonl,
    write_events_jsonl,
)
from repro.obs.export import (
    aggregate_spans,
    as_document,
    format_summary,
    prometheus_text,
    read_metrics,
    write_metrics,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.progress import ProgressCallback, ProgressPrinter, TaskProgress
from repro.obs.spans import Span

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "EVENTS_FORMAT",
    "Gauge",
    "Histogram",
    "METRICS_FORMAT",
    "MetricsRegistry",
    "ProgressCallback",
    "ProgressPrinter",
    "Span",
    "TaskProgress",
    "aggregate_spans",
    "as_document",
    "default_registry",
    "format_summary",
    "prometheus_text",
    "read_events_jsonl",
    "read_metrics",
    "set_default_registry",
    "use_registry",
    "write_events_jsonl",
    "write_metrics",
]
