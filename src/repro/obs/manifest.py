"""Self-describing run manifests: ``repro-manifest-v1``.

Comparable benchmark results need their provenance captured at run time
(Wang et al.'s consistent-CPU-evaluation argument): *which* configuration,
*which* code, *which* seed, on *what* host, spending wall time *where*.
A manifest is a small JSON document written atomically next to every
checkpoint and result file:

* identity — the campaign's config fingerprint (the same SHA-256 the
  streamed crowd engine refuses to resume across) and root seed;
* provenance — host, Python, package versions, best-effort git commit;
* cost — per-phase wall/sim timings harvested from the span registry;
* outcome — the final counter/gauge snapshot and a result summary.

The fingerprint is the contract between a checkpoint and its manifest:
an interrupted campaign and its resumed continuation write manifests
that agree on ``fingerprint`` and ``root_seed`` even though their wall
timings differ (tested in ``tests/core/test_crowd_telemetry.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.export import aggregate_spans
from repro.obs.metrics import MetricsRegistry

#: Format marker carried by every manifest document.
MANIFEST_FORMAT = "repro-manifest-v1"

#: Required top-level fields and the types a valid manifest carries.
_SCHEMA: Dict[str, type] = {
    "format": str,
    "kind": str,
    "created_unix": float,
    "fingerprint": str,
    "root_seed": int,
    "host": dict,
    "packages": dict,
    "phase_timings": dict,
    "metrics": dict,
}


def fingerprint_payload(payload: Any) -> str:
    """SHA-256 of a canonical JSON rendering of ``payload``.

    The same construction :mod:`repro.core.crowd_stream` uses for its
    checkpoint fingerprint — dataclasses go through ``asdict`` upstream,
    unknown leaves stringify — so any configuration object gets a stable
    identity.
    """
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


@lru_cache(maxsize=1)
def _git_info() -> Optional[Dict[str, Any]]:
    """Best-effort commit identity of the working tree, cached per process."""
    try:
        here = os.path.dirname(os.path.abspath(__file__))
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=here, capture_output=True, text=True, timeout=5.0,
        )
        if sha.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=here, capture_output=True, text=True, timeout=5.0,
        )
        return {
            "sha": sha.stdout.strip(),
            "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
        }
    except (OSError, subprocess.SubprocessError):
        return None


def _host_info() -> Dict[str, Any]:
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def _package_versions() -> Dict[str, str]:
    import numpy

    from repro import __version__

    return {"repro": __version__, "numpy": numpy.__version__}


def build_manifest(
    kind: str,
    fingerprint: str,
    root_seed: int,
    registry: Optional[MetricsRegistry] = None,
    status: Optional[Dict[str, Any]] = None,
    result: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a ``repro-manifest-v1`` document.

    Parameters
    ----------
    kind:
        What produced it: ``"fleet"``, ``"crowd-stream"``,
        ``"crowd-stream-checkpoint"``...
    fingerprint / root_seed:
        The campaign identity (see :func:`fingerprint_payload`).
    registry:
        When given and enabled, its aggregated spans become
        ``phase_timings`` and its counters/gauges the ``metrics`` block.
    status:
        A :meth:`~repro.obs.progress.ProgressBus.status` snapshot to
        embed (live-run cursor at write time).
    result:
        The run's final summary dict, when it has one.
    extra:
        Free-form caller fields (checkpoint cursor, output paths...).
    """
    phase_timings: Dict[str, Any] = {}
    metrics: Dict[str, Any] = {"counters": {}, "gauges": {}}
    if registry is not None and registry.enabled:
        snapshot = registry.snapshot()
        metrics = {
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
        }
        phase_timings = {
            name: {
                "count": int(stats["count"]),
                "wall_s": round(stats["wall_s"], 6),
                "sim_s": round(stats["sim_s"], 3),
            }
            for name, stats in aggregate_spans(snapshot).items()
        }
    document: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "kind": kind,
        "created_unix": float(time.time()),
        "fingerprint": fingerprint,
        "root_seed": int(root_seed),
        "host": _host_info(),
        "packages": _package_versions(),
        "git": _git_info(),
        "phase_timings": phase_timings,
        "metrics": metrics,
    }
    if status is not None:
        document["status"] = dict(status)
    if result is not None:
        document["result"] = dict(result)
    if extra:
        document["extra"] = dict(extra)
    validate_manifest(document)
    return document


def validate_manifest(document: Dict[str, Any]) -> Dict[str, Any]:
    """Schema-check a manifest; returns it for chaining.

    Raises :class:`ObservabilityError` naming the first offending field —
    the round-trip contract ``repro-bench watch <manifest>`` and the CI
    smoke job rely on.
    """
    if not isinstance(document, dict):
        raise ObservabilityError("manifest must be a JSON object")
    if document.get("format") != MANIFEST_FORMAT:
        raise ObservabilityError(
            f"not a manifest (format {document.get('format')!r}, "
            f"expected {MANIFEST_FORMAT!r})"
        )
    for field, expected in _SCHEMA.items():
        if field not in document:
            raise ObservabilityError(f"manifest missing required field {field!r}")
        value = document[field]
        if expected is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, expected):
            raise ObservabilityError(
                f"manifest field {field!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    git = document.get("git")
    if git is not None and not isinstance(git, dict):
        raise ObservabilityError("manifest field 'git' must be object or null")
    if len(document["fingerprint"]) != 64:
        raise ObservabilityError("manifest fingerprint must be a SHA-256 hex digest")
    return document


def manifest_path_for(path: Union[str, Path]) -> Path:
    """Where the manifest for a checkpoint/result file lives: beside it."""
    return Path(f"{path}.manifest.json")


def write_manifest(
    document: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Atomically write a validated manifest (write-then-rename)."""
    validate_manifest(document)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w") as fp:
        json.dump(document, fp, indent=2, sort_keys=True)
        fp.write("\n")
    os.replace(tmp, target)
    return target


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a manifest written by :func:`write_manifest`."""
    source = Path(path)
    try:
        with source.open() as fp:
            document = json.load(fp)
    except (OSError, json.JSONDecodeError) as error:
        raise ObservabilityError(f"{source}: unreadable manifest ({error})")
    return validate_manifest(document)


def format_manifest(document: Dict[str, Any]) -> str:
    """Human-readable rendering, for ``repro-bench watch <manifest>``."""
    validate_manifest(document)
    created = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(document["created_unix"])
    )
    git = document.get("git")
    git_label = "unknown"
    if git and git.get("sha"):
        git_label = git["sha"][:12] + (" (dirty)" if git.get("dirty") else "")
    lines = [
        f"{document['kind']} run manifest ({MANIFEST_FORMAT})",
        f"  created      {created}",
        f"  fingerprint  {document['fingerprint'][:16]}…",
        f"  root seed    {document['root_seed']}",
        f"  host         {document['host'].get('hostname')} "
        f"({document['host'].get('platform')}, "
        f"python {document['host'].get('python')})",
        f"  packages     "
        + ", ".join(f"{k} {v}" for k, v in sorted(document["packages"].items())),
        f"  git          {git_label}",
    ]
    timings = document["phase_timings"]
    if timings:
        lines.append("  phase timings")
        width = max(len(name) for name in timings)
        for name, stats in timings.items():
            sim = stats.get("sim_s") or 0.0
            lines.append(
                f"    {name:<{width}s}  n={stats['count']:<5d} "
                f"wall {stats['wall_s']:.3f} s  sim {sim:.1f} s"
            )
    counters = document["metrics"].get("counters", {})
    if counters:
        lines.append("  final counters")
        width = max(len(name) for name in counters)
        for name, value in sorted(counters.items()):
            lines.append(f"    {name:<{width}s}  {value:,.10g}")
    status = document.get("status")
    if status:
        tasks = status.get("tasks", {})
        lines.append(
            f"  status       {status.get('state')} "
            f"({tasks.get('completed')}/{tasks.get('total')} tasks)"
        )
    extra = document.get("extra")
    if extra:
        lines.append(
            "  extra        "
            + ", ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        )
    return "\n".join(lines) + "\n"
