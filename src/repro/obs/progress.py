"""Live campaign progress: per-task completion events.

A parallel campaign used to be a silent ``map`` — nothing between launch
and the final return.  :func:`repro.core.parallel.run_tasks` now reports
each task as it lands, through a plain callable so library users can
collect events programmatically while the CLI's ``--progress`` prints
them to stderr (stdout stays machine-readable).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable, Optional, TextIO


@dataclass(frozen=True)
class TaskProgress:
    """One task-completion event.

    Attributes
    ----------
    index:
        The task's position in the submitted sequence (result order).
    completed / total:
        How many tasks have finished out of how many submitted.  With a
        process pool, completion order differs from ``index`` order — that
        is the point of reporting live.
    model / serial / workload:
        Which unit and experiment the finished task ran.
    wall_s:
        The task's wall-clock execution time, seconds (worker-measured
        for pool tasks).
    """

    index: int
    completed: int
    total: int
    model: str
    serial: str
    workload: str
    wall_s: float


#: The callback signature ``run_tasks`` and the runner accept.
ProgressCallback = Callable[[TaskProgress], Any]


class ProgressPrinter:
    """Prints one line per completed task, flushed immediately."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def __call__(self, progress: TaskProgress) -> None:
        print(
            f"[{progress.completed}/{progress.total}] "
            f"{progress.model} {progress.serial} {progress.workload} "
            f"done in {progress.wall_s:.2f}s",
            file=self._stream,
            flush=True,
        )
