"""Live campaign progress: per-task completion events and the progress bus.

A parallel campaign used to be a silent ``map`` — nothing between launch
and the final return.  :func:`repro.core.parallel.run_tasks` now reports
each task as it lands, through a plain callable so library users can
collect events programmatically while the CLI's ``--progress`` prints
them to stderr (stdout stays machine-readable).

:class:`ProgressBus` is the aggregation half: a thread-safe, always-
current snapshot of a running campaign, fed over the same task-callback
channel (so nothing in the hot loop ever touches it — publishers are the
parent-side completion handlers, at shard boundaries).  The HTTP
telemetry endpoint (:mod:`repro.obs.serve`) and the watchdog rules
(:mod:`repro.obs.watch`) both read from it.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TextIO

#: Format marker carried by every :meth:`ProgressBus.status` document.
STATUS_FORMAT = "repro-status-v1"


@dataclass(frozen=True)
class TaskProgress:
    """One task-completion event.

    Attributes
    ----------
    index:
        The task's position in the submitted sequence (result order).
    completed / total:
        How many tasks have finished out of how many submitted.  With a
        process pool, completion order differs from ``index`` order — that
        is the point of reporting live.
    model / serial / workload:
        Which unit and experiment the finished task ran.
    wall_s:
        The task's wall-clock execution time, seconds (worker-measured
        for pool tasks).
    steps_per_sec:
        Engine steps per wall second inside the task, when the worker's
        metrics snapshot carried an ``engine.steps`` tally (``None``
        otherwise — e.g. when collection is off).
    """

    index: int
    completed: int
    total: int
    model: str
    serial: str
    workload: str
    wall_s: float
    steps_per_sec: Optional[float] = None


#: The callback signature ``run_tasks`` and the runner accept.
ProgressCallback = Callable[[TaskProgress], Any]


class ProgressPrinter:
    """Prints one line per completed task, flushed immediately."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def __call__(self, progress: TaskProgress) -> None:
        print(
            f"[{progress.completed}/{progress.total}] "
            f"{progress.model} {progress.serial} {progress.workload} "
            f"done in {progress.wall_s:.2f}s",
            file=self._stream,
            flush=True,
        )


def chain_progress(*callbacks: Optional[ProgressCallback]) -> Optional[ProgressCallback]:
    """Compose progress callbacks; ``None`` entries are skipped.

    Returns ``None`` when nothing remains, so the result plugs directly
    into the ``progress=`` parameters that treat ``None`` as "off".
    """
    chosen = [callback for callback in callbacks if callback is not None]
    if not chosen:
        return None
    if len(chosen) == 1:
        return chosen[0]

    def fanout(progress: TaskProgress) -> None:
        for callback in chosen:
            callback(progress)

    return fanout


def rss_mb() -> Optional[float]:
    """This process's peak resident set size in MiB (best effort).

    Uses ``resource.getrusage``; ``ru_maxrss`` is KiB on Linux and bytes
    on macOS.  Returns ``None`` on platforms without the module.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return round(peak / divisor, 2)


class ProgressBus:
    """Always-current run state, published at shard boundaries.

    The bus *is* a :data:`ProgressCallback` — pass it wherever a progress
    callback goes and every completed task updates the shared snapshot.
    Campaign drivers add run-level fields (users done, checkpoint cursor,
    throughput) with :meth:`publish`; watchdogs append structured
    warnings with :meth:`warn`.  All methods take one lock around dict
    operations, so readers (the HTTP endpoint's handler threads) always
    see a coherent snapshot and writers never block on I/O.
    """

    def __init__(self, recent_shards: int = 64) -> None:
        if recent_shards < 1:
            raise ValueError("recent_shards must be at least 1")
        self._lock = threading.Lock()
        self._recent_shards = recent_shards
        self._started_wall = time.perf_counter()
        self._started_unix = time.time()
        self._updated_wall = self._started_wall
        self._updates = 0
        self._completed = 0
        self._total = 0
        self._shards: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._campaign: Dict[str, Any] = {}
        self._warnings: List[Dict[str, Any]] = []

    # -- publishers --------------------------------------------------------

    def __call__(self, progress: TaskProgress) -> None:
        """Fold one task completion in (the ProgressCallback surface)."""
        key = f"{progress.model}/{progress.serial}"
        with self._lock:
            now = time.perf_counter()
            self._updates += 1
            self._updated_wall = now
            self._completed = progress.completed
            self._total = progress.total
            self._shards.pop(key, None)  # re-insert at the recent end
            self._shards[key] = {
                "shard": key,
                "index": progress.index,
                "model": progress.model,
                "serial": progress.serial,
                "workload": progress.workload,
                "wall_s": round(progress.wall_s, 4),
                "steps_per_sec": progress.steps_per_sec,
                "at_wall_s": round(now - self._started_wall, 4),
            }
            while len(self._shards) > self._recent_shards:
                self._shards.popitem(last=False)

    def publish(self, **fields: Any) -> None:
        """Merge campaign-level fields (users done, cursors, rates...)."""
        with self._lock:
            self._updates += 1
            self._updated_wall = time.perf_counter()
            self._campaign.update(fields)

    def warn(self, warning: Dict[str, Any]) -> None:
        """Append one structured watchdog warning."""
        with self._lock:
            self._warnings.append(dict(warning))

    # -- readers -----------------------------------------------------------

    @property
    def updates(self) -> int:
        """How many publish/completion events the bus has absorbed."""
        with self._lock:
            return self._updates

    @property
    def warnings(self) -> List[Dict[str, Any]]:
        """All watchdog warnings recorded so far (copies)."""
        with self._lock:
            return [dict(w) for w in self._warnings]

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of everything the bus knows right now.

        The document is self-describing (``format: repro-status-v1``) and
        deep-copied under the lock, so callers can serialize it without
        racing publishers.
        """
        with self._lock:
            now = time.perf_counter()
            wall_s = now - self._started_wall
            state = "idle"
            if self._updates:
                state = (
                    "complete"
                    if self._total and self._completed >= self._total
                    else "running"
                )
            return {
                "format": STATUS_FORMAT,
                "state": state,
                "updates": self._updates,
                "started_unix": self._started_unix,
                "wall_s": round(wall_s, 4),
                "idle_s": round(now - self._updated_wall, 4),
                "tasks": {
                    "completed": self._completed,
                    "total": self._total,
                    "per_sec": (
                        round(self._completed / wall_s, 4) if wall_s > 0 else 0.0
                    ),
                },
                "shards": [dict(shard) for shard in self._shards.values()],
                "campaign": dict(self._campaign),
                "warnings": [dict(w) for w in self._warnings],
                "rss_mb": rss_mb(),
            }
