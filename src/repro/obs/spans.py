"""Phase spans: named intervals with wall-clock and simulation-time extents.

A :class:`Span` records where time went — the ACCUBENCH warmup/cooldown/
workload phases, one unit's full iteration batch, an engine ``run_until``
stretch.  Each span carries two clocks because the interesting ratio is
between them: a cooldown phase covering 1200 simulated seconds in 40 wall
milliseconds is the fast-forward working; the same phase at 4 wall seconds
is the sub-stepped Euler path.

Spans are produced through :meth:`repro.obs.metrics.MetricsRegistry.span`,
which handles nesting (the parent is whatever span is open on the same
registry) and collection; this module holds the record type itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import ObservabilityError


@dataclass
class Span:
    """One named interval of a run.

    Attributes
    ----------
    name:
        What the interval was, e.g. ``"phase.cooldown"`` or ``"run_device"``.
        Summaries aggregate spans by name, so identity (which unit, which
        workload) belongs in ``detail``, not the name.
    wall_start_s / wall_stop_s:
        ``time.perf_counter`` timestamps.  Only differences are meaningful;
        the origin is the process's performance-counter epoch.
    sim_start_s / sim_stop_s:
        Simulation-clock extents, when the span tracked a world clock.
    parent:
        Name of the enclosing open span on the same registry, if any.
    detail:
        Free-form identifying payload (model, serial, workload...).
    """

    name: str
    wall_start_s: float
    wall_stop_s: Optional[float] = None
    sim_start_s: Optional[float] = None
    sim_stop_s: Optional[float] = None
    parent: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        """Wall-clock duration, seconds (0.0 while still open)."""
        if self.wall_stop_s is None:
            return 0.0
        return self.wall_stop_s - self.wall_start_s

    @property
    def sim_s(self) -> Optional[float]:
        """Simulation-time duration, seconds (``None`` if untracked)."""
        if self.sim_start_s is None or self.sim_stop_s is None:
            return None
        return self.sim_stop_s - self.sim_start_s

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of this span."""
        return {
            "name": self.name,
            "wall_start_s": self.wall_start_s,
            "wall_stop_s": self.wall_stop_s,
            "wall_s": self.wall_s,
            "sim_start_s": self.sim_start_s,
            "sim_stop_s": self.sim_stop_s,
            "sim_s": self.sim_s,
            "parent": self.parent,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        try:
            return cls(
                name=payload["name"],
                wall_start_s=payload["wall_start_s"],
                wall_stop_s=payload.get("wall_stop_s"),
                sim_start_s=payload.get("sim_start_s"),
                sim_stop_s=payload.get("sim_stop_s"),
                parent=payload.get("parent"),
                detail=dict(payload.get("detail", {})),
            )
        except KeyError as missing:
            raise ObservabilityError(
                f"span document missing required field {missing}"
            ) from None


class SpanContext:
    """Context manager that opens a span on enter and collects it on exit.

    Created by :meth:`MetricsRegistry.span`; not instantiated directly.
    ``clock`` (when given) is sampled at enter and exit to fill the span's
    simulation-time extents.
    """

    def __init__(
        self,
        registry: "Any",
        name: str,
        clock: Optional[Callable[[], float]],
        detail: Dict[str, Any],
    ) -> None:
        self._registry = registry
        self._name = name
        self._clock = clock
        self._detail = detail
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = Span(
            name=self._name,
            wall_start_s=time.perf_counter(),
            sim_start_s=self._clock() if self._clock is not None else None,
            parent=self._registry._open_span_name(),
            detail=self._detail,
        )
        self._registry._push_span(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        assert span is not None  # __exit__ without __enter__
        span.wall_stop_s = time.perf_counter()
        if self._clock is not None:
            span.sim_stop_s = self._clock()
        self._registry._pop_span(span)
        return False


class _NullSpanContext:
    """The disabled-registry span: enters and exits without recording.

    A single module-level instance is reused for every disabled
    ``registry.span(...)`` call, so the disabled path allocates nothing.
    """

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpanContext()
