"""Metrics exporters: JSON document, Prometheus text, human summary.

Four consumers, four formats:

* :func:`write_metrics` / :func:`read_metrics` — the machine-readable JSON
  document behind the CLI's ``--metrics-out`` and ``repro-bench report``;
* :func:`prometheus_text` — the text exposition format, for anyone piping
  a campaign's counters into an existing scrape pipeline (and the body of
  the live endpoint's ``/metrics`` route), with
  :func:`parse_prometheus_text` as the round-trip reference parser;
* :func:`format_summary` — the table a human reads after a run, with
  spans aggregated by name and sim-vs-wall speed ratios computed;
* :func:`span_tree` / :func:`format_span_tree` — the dual-clock span
  hierarchy, nested by parent, behind ``/spans`` and
  ``report --spans-tree``.

Every function accepts either a live :class:`MetricsRegistry` or an
already-snapshotted document dict, so the CLI's ``report`` subcommand and
the end-of-run path share one implementation.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.metrics import METRICS_FORMAT, MetricsRegistry

MetricsSource = Union[MetricsRegistry, Dict[str, Any]]

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_]")

_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def as_document(source: MetricsSource) -> Dict[str, Any]:
    """Normalize a registry or document into a validated document dict."""
    document = source.snapshot() if isinstance(source, MetricsRegistry) else source
    if document.get("format") != METRICS_FORMAT:
        raise ObservabilityError(
            f"not a metrics document (format {document.get('format')!r}, "
            f"expected {METRICS_FORMAT!r})"
        )
    return document


def write_metrics(source: MetricsSource, path: Union[str, Path]) -> Path:
    """Write the metrics document as indented JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as fp:
        json.dump(as_document(source), fp, indent=2, sort_keys=True)
        fp.write("\n")
    return target


def read_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a metrics document written by :func:`write_metrics`."""
    source = Path(path)
    try:
        with source.open() as fp:
            document = json.load(fp)
    except (OSError, json.JSONDecodeError) as error:
        raise ObservabilityError(f"{source}: unreadable metrics file ({error})")
    if not isinstance(document, dict):
        raise ObservabilityError(f"{source}: metrics document must be an object")
    return as_document(document)


def prometheus_text(source: MetricsSource, prefix: str = "repro") -> str:
    """The document in Prometheus text exposition format.

    Metric names are sanitized (``engine.steps`` → ``repro_engine_steps``);
    histogram buckets are emitted cumulatively with the conventional
    inclusive ``le`` label, a ``+Inf`` bucket that includes the overflow
    count, and ``_sum``/``_count`` series; spans appear as per-name
    ``_sum``/``_count`` pairs of wall seconds.  Values are written at
    full float precision so the text round-trips exactly through
    :func:`parse_prometheus_text`.
    """
    document = as_document(source)
    lines: List[str] = []

    def emit(name: str, kind: str, samples: List[str]) -> None:
        lines.append(f"# HELP {name} repro metric {name}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for name, value in document["counters"].items():
        metric = _prom_name(prefix, name)
        emit(metric, "counter", [f"{metric} {_prom_value(value)}"])
    for name, value in document["gauges"].items():
        metric = _prom_name(prefix, name)
        emit(metric, "gauge", [f"{metric} {_prom_value(value)}"])
    for name, payload in document["histograms"].items():
        metric = _prom_name(prefix, name)
        samples = []
        cumulative = 0
        # counts has one overflow entry beyond the explicit bounds; the
        # running total over *all* entries is what +Inf must equal (and
        # it equals the observation count by construction).
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            samples.append(
                f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        cumulative += payload["counts"][len(payload["bounds"])]
        samples.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        samples.append(f"{metric}_sum {_prom_value(payload['sum'])}")
        samples.append(f"{metric}_count {payload['count']}")
        emit(metric, "histogram", samples)
    aggregated = aggregate_spans(document)
    if aggregated:
        metric = _prom_name(prefix, "span.wall_seconds")
        samples = []
        for name, stats in aggregated.items():
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            samples.append(
                f'{metric}_sum{{span="{label}"}} {_prom_value(stats["wall_s"])}'
            )
            samples.append(f'{metric}_count{{span="{label}"}} {stats["count"]}')
        emit(metric, "summary", samples)
    return "\n".join(lines) + "\n"


def aggregate_spans(source: MetricsSource) -> Dict[str, Dict[str, float]]:
    """Per-name span totals: count, wall seconds, sim seconds.

    ``sim_s`` is the sum over spans that tracked a simulation clock; the
    returned dict preserves first-seen order.
    """
    document = as_document(source)
    totals: Dict[str, Dict[str, float]] = {}
    for span in document["spans"]:
        stats = totals.setdefault(
            span["name"], {"count": 0, "wall_s": 0.0, "sim_s": 0.0}
        )
        stats["count"] += 1
        stats["wall_s"] += span.get("wall_s") or 0.0
        stats["sim_s"] += span.get("sim_s") or 0.0
    return totals


def format_summary(source: MetricsSource) -> str:
    """A human-readable report of the document, section per metric kind."""
    document = as_document(source)
    lines: List[str] = []

    counters = document["counters"]
    if counters:
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}s}  {value:,.10g}")
    # Result-transport digest: how task results travelled back from the
    # workers (pickle stream vs zero-copy shared-memory attach).  The raw
    # counters are in the table above; this section derives the split.
    transport = {
        name: value
        for name, value in (counters or {}).items()
        if name.startswith("transport.")
    }
    if transport:
        lines.append("result transport")
        pickled = transport.get("transport.pickle_bytes", 0.0)
        shm = transport.get("transport.shm_bytes", 0.0)
        tasks = transport.get("transport.task_pickle_bytes", 0.0)
        attached = int(transport.get("transport.traces_attached", 0.0))
        copied = int(transport.get("transport.traces_copied", 0.0))
        lines.append(f"  pickled bytes        {pickled:,.0f}")
        if tasks:
            lines.append(f"  task pickle bytes    {tasks:,.0f}")
        lines.append(f"  shared-memory bytes  {shm:,.0f}")
        lines.append(f"  traces               {attached} attached, {copied} copied")
        if shm + pickled > 0:
            lines.append(
                f"  zero-copy fraction   {shm / (shm + pickled):.1%}"
            )
    gauges = document["gauges"]
    if gauges:
        lines.append("gauges")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}s}  {value:,.10g}")
    histograms = document["histograms"]
    if histograms:
        lines.append("histograms")
        for name, payload in histograms.items():
            count = payload["count"]
            mean = payload["sum"] / count if count else 0.0
            lines.append(
                f"  {name}: n={count} sum={payload['sum']:.3f}s "
                f"mean={mean:.3f}s"
            )
    spans = aggregate_spans(document)
    if spans:
        lines.append("spans (aggregated by name)")
        width = max(len(name) for name in spans)
        header = (
            f"  {'name':<{width}s}  {'count':>5s}  {'wall s':>10s}  "
            f"{'sim s':>12s}  {'sim/wall':>9s}"
        )
        lines.append(header)
        for name, stats in spans.items():
            ratio = (
                f"{stats['sim_s'] / stats['wall_s']:>9.1f}"
                if stats["wall_s"] > 0 and stats["sim_s"] > 0
                else f"{'-':>9s}"
            )
            lines.append(
                f"  {name:<{width}s}  {stats['count']:>5d}  "
                f"{stats['wall_s']:>10.3f}  {stats['sim_s']:>12.1f}  {ratio}"
            )
    if not lines:
        return "no metrics recorded\n"
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Reference parser for the exposition format :func:`prometheus_text` emits.

    Returns ``{"types": {metric: kind}, "help": {metric: text},
    "samples": [{"name", "labels", "value"}, ...]}`` with values parsed
    as floats (``+Inf``/``-Inf``/``NaN`` included).  Raises
    :class:`ObservabilityError` on any line that is not valid exposition
    text — this is the round-trip gate the exporter is tested against,
    and what the CI telemetry smoke asserts on a live ``/metrics`` body.
    """
    types: Dict[str, str] = {}
    help_text: Dict[str, str] = {}
    samples: List[Dict[str, Any]] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ObservabilityError(
                    f"line {line_number}: malformed TYPE line {raw!r}"
                )
            if parts[2] in types:
                raise ObservabilityError(
                    f"line {line_number}: duplicate TYPE for {parts[2]!r}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ObservabilityError(
                    f"line {line_number}: malformed HELP line {raw!r}"
                )
            help_text[parts[2]] = parts[3] if len(parts) == 4 else ""
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _PROM_SAMPLE.match(line)
        if match is None:
            raise ObservabilityError(
                f"line {line_number}: malformed sample line {raw!r}"
            )
        labels: Dict[str, str] = {}
        label_blob = match.group("labels")
        if label_blob:
            for pair in _PROM_LABEL.finditer(label_blob):
                labels[pair.group(1)] = (
                    pair.group(2)
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
            stripped = re.sub(r"[,\s]", "", label_blob)
            matched = re.sub(
                r"[,\s]", "", "".join(
                    pair.group(0) for pair in _PROM_LABEL.finditer(label_blob)
                )
            )
            if stripped != matched:
                raise ObservabilityError(
                    f"line {line_number}: malformed labels {label_blob!r}"
                )
        samples.append(
            {
                "name": match.group("name"),
                "labels": labels,
                "value": _parse_prom_value(
                    match.group("value"), line_number
                ),
            }
        )
    return {"types": types, "help": help_text, "samples": samples}


def _parse_prom_value(token: str, line_number: int) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise ObservabilityError(
            f"line {line_number}: malformed sample value {token!r}"
        ) from None


def span_tree(source: MetricsSource) -> List[Dict[str, Any]]:
    """The span hierarchy as nested totals, roots first.

    Spans carry their parent's *name* (the registry's open-span stack at
    creation), so aggregation is by ``(parent, name)``: each node sums
    count, wall seconds and sim seconds over every occurrence at that
    position, and ``children`` nests recursively in first-seen order.  A
    name that appears under several parents becomes several nodes — that
    is the point (``phase.cooldown`` under ``run_device`` vs under
    ``crowd.cohort`` are different costs).
    """
    document = as_document(source)
    totals: Dict[Tuple[Optional[str], str], Dict[str, float]] = {}
    children: Dict[Optional[str], List[str]] = {}
    for span in document["spans"]:
        key = (span.get("parent"), span["name"])
        stats = totals.get(key)
        if stats is None:
            stats = totals[key] = {"count": 0, "wall_s": 0.0, "sim_s": 0.0}
            children.setdefault(span.get("parent"), []).append(span["name"])
        stats["count"] += 1
        stats["wall_s"] += span.get("wall_s") or 0.0
        stats["sim_s"] += span.get("sim_s") or 0.0

    def build(parent: Optional[str], path: Tuple[str, ...]) -> List[Dict[str, Any]]:
        nodes = []
        for name in children.get(parent, []):
            if name in path:  # same-name nesting cannot recurse forever
                continue
            stats = totals[(parent, name)]
            nodes.append(
                {
                    "name": name,
                    "count": int(stats["count"]),
                    "wall_s": round(stats["wall_s"], 6),
                    "sim_s": round(stats["sim_s"], 3),
                    "children": build(name, path + (name,)),
                }
            )
        return nodes

    # Roots: spans with no parent, plus spans whose parent never closed
    # into the document (e.g. a worker snapshot merged mid-run).
    known = {name for _, name in totals}
    roots = build(None, ())
    for parent in children:
        if parent is not None and parent not in known:
            roots.extend(build(parent, (parent,)))
    return roots


def format_span_tree(source: MetricsSource) -> str:
    """The span hierarchy as an indented wall+sim-time table."""
    tree = span_tree(source)
    if not tree:
        return "no spans recorded\n"
    lines = [f"{'span':<44s}  {'count':>6s}  {'wall s':>10s}  {'sim s':>12s}"]

    def render(nodes: List[Dict[str, Any]], depth: int) -> None:
        for node in nodes:
            label = "  " * depth + node["name"]
            sim = f"{node['sim_s']:>12.1f}" if node["sim_s"] else f"{'-':>12s}"
            lines.append(
                f"{label:<44s}  {node['count']:>6d}  "
                f"{node['wall_s']:>10.3f}  {sim}"
            )
            render(node["children"], depth + 1)

    render(tree, 0)
    return "\n".join(lines) + "\n"


def _prom_name(prefix: str, name: str) -> str:
    return f"{prefix}_{_PROM_INVALID.sub('_', name)}"


def _prom_value(value: float) -> str:
    """Full-precision sample rendering.

    ``%g`` (the previous formatter) truncates to six significant digits —
    enough to make a long campaign's ``engine.sim_time_s`` round-trip
    wrong by whole seconds.  Integral values render as integers, floats
    via ``repr`` (shortest exact representation), specials in Prometheus
    spelling.
    """
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)
