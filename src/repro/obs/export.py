"""Metrics exporters: JSON document, Prometheus text, human summary.

Three consumers, three formats:

* :func:`write_metrics` / :func:`read_metrics` — the machine-readable JSON
  document behind the CLI's ``--metrics-out`` and ``repro-bench report``;
* :func:`prometheus_text` — the text exposition format, for anyone piping
  a campaign's counters into an existing scrape pipeline;
* :func:`format_summary` — the table a human reads after a run, with
  spans aggregated by name and sim-vs-wall speed ratios computed.

Every function accepts either a live :class:`MetricsRegistry` or an
already-snapshotted document dict, so the CLI's ``report`` subcommand and
the end-of-run path share one implementation.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import ObservabilityError
from repro.obs.metrics import METRICS_FORMAT, MetricsRegistry

MetricsSource = Union[MetricsRegistry, Dict[str, Any]]

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def as_document(source: MetricsSource) -> Dict[str, Any]:
    """Normalize a registry or document into a validated document dict."""
    document = source.snapshot() if isinstance(source, MetricsRegistry) else source
    if document.get("format") != METRICS_FORMAT:
        raise ObservabilityError(
            f"not a metrics document (format {document.get('format')!r}, "
            f"expected {METRICS_FORMAT!r})"
        )
    return document


def write_metrics(source: MetricsSource, path: Union[str, Path]) -> Path:
    """Write the metrics document as indented JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as fp:
        json.dump(as_document(source), fp, indent=2, sort_keys=True)
        fp.write("\n")
    return target


def read_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a metrics document written by :func:`write_metrics`."""
    source = Path(path)
    try:
        with source.open() as fp:
            document = json.load(fp)
    except (OSError, json.JSONDecodeError) as error:
        raise ObservabilityError(f"{source}: unreadable metrics file ({error})")
    if not isinstance(document, dict):
        raise ObservabilityError(f"{source}: metrics document must be an object")
    return as_document(document)


def prometheus_text(source: MetricsSource, prefix: str = "repro") -> str:
    """The document in Prometheus text exposition format.

    Metric names are sanitized (``engine.steps`` → ``repro_engine_steps``);
    histogram buckets are emitted cumulatively with the conventional
    ``le`` label; spans appear as per-name ``_sum``/``_count`` pairs of
    wall seconds.
    """
    document = as_document(source)
    lines: List[str] = []

    def emit(name: str, kind: str, samples: List[str]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for name, value in document["counters"].items():
        metric = _prom_name(prefix, name)
        emit(metric, "counter", [f"{metric} {_prom_value(value)}"])
    for name, value in document["gauges"].items():
        metric = _prom_name(prefix, name)
        emit(metric, "gauge", [f"{metric} {_prom_value(value)}"])
    for name, payload in document["histograms"].items():
        metric = _prom_name(prefix, name)
        samples = []
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            samples.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        samples.append(f'{metric}_bucket{{le="+Inf"}} {payload["count"]}')
        samples.append(f"{metric}_sum {_prom_value(payload['sum'])}")
        samples.append(f"{metric}_count {payload['count']}")
        emit(metric, "histogram", samples)
    aggregated = aggregate_spans(document)
    if aggregated:
        metric = _prom_name(prefix, "span.wall_seconds")
        samples = []
        for name, stats in aggregated.items():
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            samples.append(
                f'{metric}_sum{{span="{label}"}} {_prom_value(stats["wall_s"])}'
            )
            samples.append(f'{metric}_count{{span="{label}"}} {stats["count"]}')
        emit(metric, "summary", samples)
    return "\n".join(lines) + "\n"


def aggregate_spans(source: MetricsSource) -> Dict[str, Dict[str, float]]:
    """Per-name span totals: count, wall seconds, sim seconds.

    ``sim_s`` is the sum over spans that tracked a simulation clock; the
    returned dict preserves first-seen order.
    """
    document = as_document(source)
    totals: Dict[str, Dict[str, float]] = {}
    for span in document["spans"]:
        stats = totals.setdefault(
            span["name"], {"count": 0, "wall_s": 0.0, "sim_s": 0.0}
        )
        stats["count"] += 1
        stats["wall_s"] += span.get("wall_s") or 0.0
        stats["sim_s"] += span.get("sim_s") or 0.0
    return totals


def format_summary(source: MetricsSource) -> str:
    """A human-readable report of the document, section per metric kind."""
    document = as_document(source)
    lines: List[str] = []

    counters = document["counters"]
    if counters:
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}s}  {value:,.10g}")
    gauges = document["gauges"]
    if gauges:
        lines.append("gauges")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}s}  {value:,.10g}")
    histograms = document["histograms"]
    if histograms:
        lines.append("histograms")
        for name, payload in histograms.items():
            count = payload["count"]
            mean = payload["sum"] / count if count else 0.0
            lines.append(
                f"  {name}: n={count} sum={payload['sum']:.3f}s "
                f"mean={mean:.3f}s"
            )
    spans = aggregate_spans(document)
    if spans:
        lines.append("spans (aggregated by name)")
        width = max(len(name) for name in spans)
        header = (
            f"  {'name':<{width}s}  {'count':>5s}  {'wall s':>10s}  "
            f"{'sim s':>12s}  {'sim/wall':>9s}"
        )
        lines.append(header)
        for name, stats in spans.items():
            ratio = (
                f"{stats['sim_s'] / stats['wall_s']:>9.1f}"
                if stats["wall_s"] > 0 and stats["sim_s"] > 0
                else f"{'-':>9s}"
            )
            lines.append(
                f"  {name:<{width}s}  {stats['count']:>5d}  "
                f"{stats['wall_s']:>10.3f}  {stats['sim_s']:>12.1f}  {ratio}"
            )
    if not lines:
        return "no metrics recorded\n"
    return "\n".join(lines) + "\n"


def _prom_name(prefix: str, name: str) -> str:
    return f"{prefix}_{_PROM_INVALID.sub('_', name)}"


def _prom_value(value: float) -> str:
    return f"{value:g}"
