"""Process-local metrics: counters, gauges, histograms and a registry.

The simulator's hot loops (``World.run_for``, ``ExpmPropagator.pair``)
already keep plain-integer tallies; this layer is where those tallies are
*published* at phase boundaries, together with spans and derived summaries.
Nothing here runs inside the innermost loops — instrumented code harvests
local counts into the registry once per phase/iteration, so the cost of
metrics being ON is a handful of dict operations per protocol phase, and
the cost of metrics being OFF is one attribute check at each harvest site.

A module-level *default registry* (disabled unless someone opts in) lets
instrumentation reach its sink without threading a registry argument
through every constructor — important because devices are pickled to
worker processes, and a registry must never travel with them.  Workers
build their own enabled registry, snapshot it into the returned payload,
and the parent merges the snapshot (see :mod:`repro.core.parallel`).

When a registry is disabled, ``counter()``/``gauge()``/``histogram()``
return shared no-op singletons and ``span()`` returns a shared no-op
context manager, so call sites never branch on enablement themselves.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.spans import NULL_SPAN, Span, SpanContext

#: Format marker written into every metrics snapshot/document.
METRICS_FORMAT = "repro-metrics-v1"

#: Default histogram bucket upper bounds, seconds — sized for task wall
#: times, which range from sub-second smoke runs to full paper protocols.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 900.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        self.value += amount

    #: Harvest sites read more naturally as ``add`` when publishing a batch.
    add = inc


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last edge.  Counts, the running sum and
    the observation count are all plain floats/ints — cheap to merge
    across processes.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        edges = tuple(float(edge) for edge in bounds)
        if not edges:
            raise ObservabilityError("histogram needs at least one bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ObservabilityError("bucket edges must strictly increase")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 before the first)."""
        return self.sum / self.count if self.count else 0.0


class _NullCounter(Counter):
    """Disabled-registry counter: accepts increments, keeps nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass

    add = inc


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """One process's (or one worker task's) metric state.

    The registry is deliberately not thread-safe: the simulator is
    single-threaded per process, and cross-process aggregation goes
    through :meth:`snapshot`/:meth:`merge_snapshot` instead of shared
    state.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[Span] = []
        self._open: List[Span] = []

    # -- metric accessors --------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        if not self.enabled:
            return NULL_COUNTER
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        if not self.enabled:
            return NULL_GAUGE
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        """The named histogram, created on first use with ``bounds``."""
        if not self.enabled:
            return NULL_HISTOGRAM
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    def span(
        self,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        **detail: Any,
    ):
        """A context manager recording a :class:`Span` over its body.

        ``clock`` (e.g. ``lambda: world.now``) is sampled at enter/exit to
        fill the span's simulation-time extents.  Nesting is tracked per
        registry: the span open when another begins becomes its parent.
        """
        if not self.enabled:
            return NULL_SPAN
        return SpanContext(self, name, clock, detail)

    # -- span bookkeeping (called by SpanContext) -------------------------

    def _open_span_name(self) -> Optional[str]:
        return self._open[-1].name if self._open else None

    def _push_span(self, span: Span) -> None:
        self._open.append(span)

    def _pop_span(self, span: Span) -> None:
        if not self._open or self._open[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order"
            )
        self._open.pop()
        self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        """All completed spans, in completion order."""
        return list(self._spans)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable document of everything recorded so far."""
        return {
            "format": METRICS_FORMAT,
            "counters": {
                name: metric.value for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
                for name, metric in sorted(self._histograms.items())
            },
            "spans": [span.to_dict() for span in self._spans],
        }

    def merge_snapshot(self, document: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram contents add; gauges take the incoming
        value (last write wins); spans append.  This is how the parent
        process absorbs worker telemetry.
        """
        if not self.enabled:
            return
        if document.get("format") != METRICS_FORMAT:
            raise ObservabilityError(
                f"cannot merge metrics document of format "
                f"{document.get('format')!r} (expected {METRICS_FORMAT!r})"
            )
        for name, value in document.get("counters", {}).items():
            self.counter(name).add(value)
        for name, value in document.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in document.get("histograms", {}).items():
            merged = self.histogram(name, payload["bounds"])
            if tuple(payload["bounds"]) != merged.bounds:
                raise ObservabilityError(
                    f"histogram {name!r}: bucket bounds differ between "
                    "processes; cannot merge"
                )
            for index, count in enumerate(payload["counts"]):
                merged.counts[index] += count
            merged.sum += payload["sum"]
            merged.count += payload["count"]
        for payload in document.get("spans", []):
            self._spans.append(Span.from_dict(payload))

    def clear(self) -> None:
        """Drop everything recorded (open spans included)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
        self._open.clear()


#: The process's default sink.  Disabled out of the box: a run pays for
#: observability only after something (the CLI's ``--metrics-out``, a
#: worker's task wrapper, a test) installs an enabled registry.
_default = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    """The registry instrumentation publishes to."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the default; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the default for a ``with`` block."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
