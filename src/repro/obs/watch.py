"""Campaign watchdogs and the live-run tailer.

A million-user campaign that silently stops making progress is worse
than one that crashes.  Watchdog rules consume the stream of
:meth:`~repro.obs.progress.ProgressBus.status` snapshots the campaign
driver publishes at shard boundaries and emit *structured warnings* —
plain dicts with a rule name, a human message and the numbers behind it
— that land on the bus (visible at ``/status``), in the metrics registry
(``watchdog.warnings``) and, under the CLI's ``--strict-watchdog``, in
the process exit code.

Rules are stateful and edge-triggered: a condition that persists fires
once when it starts, then re-arms only after it clears, so a stuck run
produces one warning, not one per snapshot.

:func:`watch_url` is the other direction: tail somebody else's live run
by polling its ``/status`` endpoint (``repro-bench watch <url>``).
"""

from __future__ import annotations

import json
import statistics
import sys
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Any, Deque, Dict, List, Optional, TextIO

from repro.errors import ObservabilityError


class WatchdogRule:
    """One condition evaluated against each status snapshot.

    Subclasses implement :meth:`check`, returning ``None`` (healthy) or a
    dict of rule-specific data for the warning.  The base class supplies
    the edge-triggering: :meth:`evaluate` suppresses repeats while the
    condition stays true.
    """

    #: Stable identifier carried in every warning this rule emits.
    name = "watchdog"

    def __init__(self) -> None:
        self._active = False

    def check(self, status: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def evaluate(self, status: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Edge-triggered wrapper around :meth:`check`."""
        data = self.check(status)
        if data is None:
            self._active = False
            return None
        if self._active:
            return None
        self._active = True
        warning = {
            "rule": self.name,
            "at_wall_s": status.get("wall_s"),
            "message": data.pop("message", self.name),
        }
        warning["data"] = data
        return warning


class StuckShardRule(WatchdogRule):
    """No shard has completed for ``timeout_s`` while the run is live.

    The bus's ``idle_s`` is wall time since the last publish of any kind;
    a cohort normally lands every few seconds, so a long gap means a hung
    worker, a deadlocked pool or a cohort orders of magnitude slower than
    its siblings.
    """

    name = "stuck_shard"

    def __init__(self, timeout_s: float = 300.0) -> None:
        super().__init__()
        if timeout_s <= 0:
            raise ObservabilityError("stuck-shard timeout must be positive")
        self.timeout_s = float(timeout_s)

    def check(self, status: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        if status.get("state") != "running":
            return None
        idle = float(status.get("idle_s", 0.0))
        if idle < self.timeout_s:
            return None
        return {
            "message": (
                f"no shard completion for {idle:.0f} s "
                f"(threshold {self.timeout_s:.0f} s)"
            ),
            "idle_s": round(idle, 1),
            "timeout_s": self.timeout_s,
        }


class ThroughputRegressionRule(WatchdogRule):
    """Throughput fell below ``factor`` × the rolling median.

    Tracks the campaign's published rate (``users_per_sec`` when the
    crowd driver publishes it, tasks/sec otherwise) over the last
    ``window`` snapshots; once the window is full, a sample under
    ``factor`` times the window median is a regression — the signature of
    thermal runaway on the host, a worker dying, or a cohort family far
    off the cost model.
    """

    name = "throughput_regression"

    def __init__(self, window: int = 8, factor: float = 0.5) -> None:
        super().__init__()
        if window < 3:
            raise ObservabilityError("regression window must be at least 3")
        if not 0.0 < factor < 1.0:
            raise ObservabilityError("regression factor must be in (0, 1)")
        self.window = int(window)
        self.factor = float(factor)
        self._rates: Deque[float] = deque(maxlen=window)

    @staticmethod
    def _rate(status: Dict[str, Any]) -> Optional[float]:
        campaign = status.get("campaign", {})
        rate = campaign.get("users_per_sec")
        if rate is None:
            rate = status.get("tasks", {}).get("per_sec")
        return float(rate) if rate else None

    def check(self, status: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        rate = self._rate(status)
        if rate is None:
            return None
        full = len(self._rates) == self.window
        median = statistics.median(self._rates) if full else None
        self._rates.append(rate)
        if not full or median is None or median <= 0:
            return None
        if rate >= self.factor * median:
            return None
        return {
            "message": (
                f"throughput {rate:.2f}/s fell below {self.factor:.0%} of "
                f"the rolling median {median:.2f}/s"
            ),
            "rate": round(rate, 3),
            "rolling_median": round(median, 3),
            "factor": self.factor,
        }


class DropRateSpikeRule(WatchdogRule):
    """The campaign's cumulative drop rate crossed ``threshold``.

    Uses the crowd driver's published ``users_done``/``dropped_total``;
    armed only after ``min_users`` so a small unlucky first cohort cannot
    trip it.  A genuine spike means the probe is failing systematically —
    bad ambient band, broken estimator, or a misconfigured protocol.
    """

    name = "drop_rate_spike"

    def __init__(self, threshold: float = 0.5, min_users: int = 50) -> None:
        super().__init__()
        if not 0.0 < threshold <= 1.0:
            raise ObservabilityError("drop threshold must be in (0, 1]")
        self.threshold = float(threshold)
        self.min_users = int(min_users)

    def check(self, status: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        campaign = status.get("campaign", {})
        users = campaign.get("users_done")
        dropped = campaign.get("dropped_total")
        if not users or dropped is None or users < self.min_users:
            return None
        rate = dropped / users
        if rate < self.threshold:
            return None
        return {
            "message": (
                f"drop rate {rate:.0%} over {users} users crossed "
                f"{self.threshold:.0%}"
            ),
            "drop_rate": round(rate, 4),
            "users_done": int(users),
            "dropped_total": int(dropped),
            "threshold": self.threshold,
        }


class Watchdog:
    """A rule set folded over the live snapshot stream.

    ``observe`` runs every rule against one snapshot and returns the
    *new* warnings (edge-triggered per rule); everything ever raised
    accumulates on :attr:`warnings`, and :attr:`triggered` is the
    ``--strict-watchdog`` exit-code surface.
    """

    def __init__(self, rules: List[WatchdogRule]) -> None:
        if not rules:
            raise ObservabilityError("a watchdog needs at least one rule")
        self.rules = list(rules)
        self.warnings: List[Dict[str, Any]] = []

    def observe(self, status: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Evaluate all rules against one snapshot; returns new warnings."""
        fresh = []
        for rule in self.rules:
            warning = rule.evaluate(status)
            if warning is not None:
                fresh.append(warning)
        self.warnings.extend(fresh)
        return fresh

    @property
    def triggered(self) -> bool:
        """Whether any rule has ever fired."""
        return bool(self.warnings)


def default_watchdog(
    stuck_timeout_s: float = 300.0,
    regression_window: int = 8,
    regression_factor: float = 0.5,
    drop_threshold: float = 0.5,
    drop_min_users: int = 50,
) -> Watchdog:
    """The standard campaign rule set behind the CLI flags."""
    return Watchdog(
        [
            StuckShardRule(timeout_s=stuck_timeout_s),
            ThroughputRegressionRule(
                window=regression_window, factor=regression_factor
            ),
            DropRateSpikeRule(
                threshold=drop_threshold, min_users=drop_min_users
            ),
        ]
    )


# ---------------------------------------------------------------------------
# Tailing someone else's live run


def fetch_status(url: str, timeout_s: float = 5.0) -> Dict[str, Any]:
    """One ``/status`` poll of a live telemetry endpoint."""
    target = url.rstrip("/")
    if not target.endswith("/status"):
        target += "/status"
    try:
        with urllib.request.urlopen(target, timeout=timeout_s) as response:
            document = json.load(response)
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
        raise ObservabilityError(f"cannot scrape {target}: {error}")
    if not isinstance(document, dict) or "state" not in document:
        raise ObservabilityError(f"{target} did not answer a status document")
    return document


def format_status_line(status: Dict[str, Any]) -> str:
    """One human-readable line per poll, for the ``watch`` tailer."""
    tasks = status.get("tasks", {})
    campaign = status.get("campaign", {})
    parts = [
        f"[{status.get('state', '?')}]",
        f"{tasks.get('completed', 0)}/{tasks.get('total', 0)} shards",
    ]
    if campaign.get("users_done") is not None:
        parts.append(f"{campaign['users_done']} users")
    rate = campaign.get("users_per_sec")
    if rate:
        parts.append(f"{rate:.1f} users/s")
    elif tasks.get("per_sec"):
        parts.append(f"{tasks['per_sec']:.2f} shards/s")
    if campaign.get("checkpoint_cohort") is not None:
        parts.append(f"ckpt@{campaign['checkpoint_cohort']}")
    warnings = status.get("warnings", [])
    if warnings:
        parts.append(f"{len(warnings)} warning(s)")
    rss = status.get("rss_mb")
    if rss:
        parts.append(f"rss {rss:.0f} MiB")
    return " ".join(parts)


def watch_url(
    url: str,
    interval_s: float = 2.0,
    once: bool = False,
    stream: Optional[TextIO] = None,
    max_polls: Optional[int] = None,
) -> int:
    """Tail a live run: poll ``/status``, print a line per poll.

    Returns a process exit code: ``0`` once the run reports complete (or
    on a clean single poll), ``1`` if the endpoint cannot be reached on
    the first poll.  An endpoint that vanishes *after* answering is a
    finished run tearing its server down — treated as a clean end.
    """
    out = stream if stream is not None else sys.stdout
    polls = 0
    seen_any = False
    while True:
        try:
            status = fetch_status(url)
        except ObservabilityError as error:
            if seen_any:
                print("endpoint closed; run ended", file=out, flush=True)
                return 0
            print(f"error: {error}", file=out, flush=True)
            return 1
        seen_any = True
        print(format_status_line(status), file=out, flush=True)
        for warning in status.get("warnings", []):
            print(
                f"  watchdog[{warning.get('rule')}]: {warning.get('message')}",
                file=out,
                flush=True,
            )
        polls += 1
        if once or status.get("state") == "complete":
            return 0
        if max_polls is not None and polls >= max_polls:
            return 0
        time.sleep(interval_s)
