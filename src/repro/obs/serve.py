"""Live telemetry endpoint: serve the registry and progress bus over HTTP.

A 10⁶-user streamed campaign runs for minutes with nothing on stdout;
this module makes the run observable *while it happens* with nothing but
the standard library:

====================  =====================================================
``GET /healthz``      ``ok`` — liveness, for wait-until-up loops.
``GET /metrics``      the default (or bound) registry in Prometheus text
                      exposition format — point an existing scraper at it.
``GET /status``       the :class:`~repro.obs.progress.ProgressBus`
                      snapshot as JSON: per-shard completions, campaign
                      cursor fields, watchdog warnings, RSS.
``GET /spans``        the aggregated dual-clock span tree as JSON.
====================  =====================================================

The server is a ``ThreadingHTTPServer`` on a daemon thread: scrapes are
answered concurrently with the run, and reads happen against snapshots
taken under the bus lock (the registry is read with a short retry loop,
since it is deliberately lock-free on the single simulation thread).
Nothing is ever written back — the endpoint is strictly read-only, bound
to localhost by default.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.errors import ObservabilityError
from repro.obs.export import prometheus_text, span_tree
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.progress import STATUS_FORMAT, ProgressBus

#: How many times a scrape retries a registry snapshot that raced a
#: publisher (dict mutated during iteration) before giving up.
_SNAPSHOT_RETRIES = 5


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes one scrape; the server instance carries registry and bus."""

    server_version = "repro-telemetry/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        server: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        try:
            if route in ("/", "/healthz"):
                self._respond(200, "text/plain; charset=utf-8", "ok\n")
            elif route == "/metrics":
                self._respond(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    server.render_metrics(),
                )
            elif route == "/status":
                self._respond_json(server.render_status())
            elif route == "/spans":
                self._respond_json(server.render_spans())
            else:
                self._respond(404, "text/plain; charset=utf-8", "not found\n")
        except BrokenPipeError:  # scraper went away mid-response
            pass
        except Exception as error:  # defensive: a scrape must never kill a run
            try:
                self._respond(
                    500, "text/plain; charset=utf-8", f"error: {error}\n"
                )
            except Exception:
                pass

    def _respond(self, code: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _respond_json(self, document: Dict[str, Any]) -> None:
        self._respond(
            200, "application/json; charset=utf-8", json.dumps(document) + "\n"
        )

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; never spam the run's stderr


class TelemetryServer:
    """The ``--serve`` endpoint: start, scrape, close.

    Parameters
    ----------
    registry:
        The metrics source behind ``/metrics`` and ``/spans``.  ``None``
        (the default) resolves :func:`repro.obs.default_registry` at
        scrape time, so a registry installed later (e.g. by the CLI's
        ``--metrics-out`` scope) is picked up automatically.
    bus:
        The :class:`ProgressBus` behind ``/status``; without one,
        ``/status`` answers a minimal idle document.
    host / port:
        Bind address.  Port ``0`` asks the OS for an ephemeral port —
        read it back from :attr:`port` / :attr:`url` after :meth:`start`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        bus: Optional[ProgressBus] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self.bus = bus
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self for chaining."""
        if self._httpd is not None:
            raise ObservabilityError("telemetry server already started")
        try:
            httpd = ThreadingHTTPServer(
                (self._host, self._requested_port), _TelemetryHandler
            )
        except OSError as error:
            raise ObservabilityError(
                f"cannot bind telemetry server to "
                f"{self._host}:{self._requested_port} ({error})"
            ) from None
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def port(self) -> int:
        """The bound port (the real one, after an ephemeral bind)."""
        if self._httpd is None:
            raise ObservabilityError("telemetry server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running endpoint, e.g. ``http://127.0.0.1:8123``."""
        return f"http://{self._host}:{self.port}"

    # -- render helpers (called from handler threads) ----------------------

    def _snapshot(self) -> Dict[str, Any]:
        """The registry document, retried across racing publishers.

        The registry is single-writer lock-free by design; a scrape that
        lands mid-harvest can see a dict change size during iteration.
        Retrying a handful of times makes that race invisible — harvests
        are boundary events lasting microseconds.
        """
        registry = self._registry if self._registry is not None else default_registry()
        last_error: Optional[Exception] = None
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                return registry.snapshot()
            except RuntimeError as error:  # dict mutated during iteration
                last_error = error
        raise ObservabilityError(
            f"registry snapshot kept racing publishers ({last_error})"
        )

    def render_metrics(self) -> str:
        """``/metrics`` body: the registry in Prometheus text format."""
        return prometheus_text(self._snapshot())

    def render_status(self) -> Dict[str, Any]:
        """``/status`` body: the bus snapshot (or a minimal idle doc)."""
        if self.bus is not None:
            return self.bus.status()
        return {
            "format": STATUS_FORMAT,
            "state": "idle",
            "updates": 0,
            "tasks": {"completed": 0, "total": 0, "per_sec": 0.0},
            "shards": [],
            "campaign": {},
            "warnings": [],
        }

    def render_spans(self) -> Dict[str, Any]:
        """``/spans`` body: the aggregated dual-clock span hierarchy."""
        return {"format": "repro-spans-v1", "tree": span_tree(self._snapshot())}
