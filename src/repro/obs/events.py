"""JSONL export of simulation event streams.

The engine's :class:`~repro.sim.events.EventLog` captures the discrete
moments of a run (throttle steps, core shutdowns, phase transitions);
this module streams those events to disk as one JSON document per line —
the same shape the paper's benchmark app logs, and the shape every
line-oriented tool (``jq``, ``grep``, a dashboard tailer) consumes
directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.errors import ObservabilityError
from repro.sim.events import Event

#: Format marker written into every event line.
EVENTS_FORMAT = "repro-events-v1"


def write_events_jsonl(
    events: Iterable[Event], path: Union[str, Path]
) -> int:
    """Write events as JSONL; returns the number of lines written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with target.open("w") as fp:
        for event in events:
            record = {"format": EVENTS_FORMAT, **event.to_dict()}
            fp.write(json.dumps(record, sort_keys=True) + "\n")
            written += 1
    return written


def read_events_jsonl(path: Union[str, Path]) -> List[Event]:
    """Load events written by :func:`write_events_jsonl`, oldest first."""
    source = Path(path)
    events: List[Event] = []
    with source.open() as fp:
        for line_number, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObservabilityError(
                    f"{source}:{line_number}: corrupt event line ({error})"
                ) from None
            if record.get("format") != EVENTS_FORMAT:
                raise ObservabilityError(
                    f"{source}:{line_number}: unknown event format "
                    f"{record.get('format')!r}"
                )
            events.append(Event.from_dict(record))
    return events
