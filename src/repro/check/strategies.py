"""Shared Hypothesis strategies and deterministic scenario generators.

Property tests across the suite used to each grow their own generators
for the same domain objects (results, value lists, trace samples).  This
module is the single home for those strategies, so a change to e.g. the
iteration-result schema updates every property test at once.

Importing this module requires `hypothesis <https://hypothesis.works>`_,
which is a test-only dependency — it is deliberately **not** re-exported
from :mod:`repro.check`, so the runtime harness (invariants, differential,
golden) stays importable without it.  The deterministic generators at the
bottom (:func:`scenario_device`, :func:`scenario_world`) need only the
repro itself.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import strategies as st

from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.device.catalog import device_spec
from repro.device.fleet import FleetUnit, build_device
from repro.device.phone import Device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.rng import DEFAULT_ROOT_SEED
from repro.sim.engine import World

#: Positive finite magnitudes (energies, powers, frequencies, counts).
finite = st.floats(
    min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
)

#: Lowercase identifier-ish names (serials, channel names).
name = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=16
)

#: Bounded real-valued lists, as fed to the crowd statistics.
values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=3,
    max_size=25,
)


@st.composite
def iterations(draw, serial: str, model: str = "Nexus 5"):
    """One plausible :class:`IterationResult` for a given unit."""
    return IterationResult(
        model=model,
        serial=serial,
        workload="UNCONSTRAINED",
        iterations_completed=draw(finite),
        energy_j=draw(finite),
        mean_power_w=draw(finite),
        mean_freq_mhz=draw(finite),
        max_cpu_temp_c=draw(st.floats(min_value=-20.0, max_value=120.0)),
        cooldown_s=draw(st.floats(min_value=0.0, max_value=1e5)),
        time_throttled_s=draw(st.floats(min_value=0.0, max_value=1e5)),
    )


@st.composite
def device_results(draw, serial: str, model: str = "Nexus 5"):
    """One device with 1–3 iterations."""
    its = tuple(
        draw(iterations(serial, model=model))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    return DeviceResult(
        model=model, serial=serial, workload="UNCONSTRAINED", iterations=its
    )


@st.composite
def experiments(draw, model: str = "Nexus 5"):
    """A whole fleet experiment: 1–4 unique units."""
    serials = draw(st.lists(name, min_size=1, max_size=4, unique=True))
    devices = tuple(draw(device_results(serial, model=model)) for serial in serials)
    return ExperimentResult(model=model, workload="UNCONSTRAINED", devices=devices)


@st.composite
def trace_samples(
    draw,
    channel_count: int = 3,
    min_size: int = 0,
    max_size: int = 60,
) -> List[Tuple[float, Tuple[float, ...]]]:
    """Time-ordered ``(time_s, values)`` rows for feeding ``Trace.append``.

    Times are non-decreasing; repeats exercise the same-stamp overwrite
    path (the stored trace keeps strictly increasing times, last write
    wins).  Values are arbitrary finite floats.  Sized to cross the
    trace's growth boundary when the test lowers the initial capacity.
    """
    deltas = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=min_size,
            max_size=max_size,
        )
    )
    rows = []
    now = 0.0
    for delta in deltas:
        now += delta
        row = tuple(
            draw(
                st.floats(
                    min_value=-1e9, max_value=1e9, allow_nan=False
                )
            )
            for _ in range(channel_count)
        )
        rows.append((now, row))
    return rows


def fleet_permutations(count: int):
    """A permutation of fleet indices ``0..count-1``.

    Drives order-invariance properties of the batched engine: a
    :class:`~repro.sim.batch.BatchedWorld` built over any reordering of
    the same units — homogeneous or mixed-model — must produce each
    unit's exact per-serial results (mixed fleets regroup into per-model
    cohorts internally, so a permutation also reshuffles cohort rows).
    """
    return st.permutations(tuple(range(count)))


def cohort_splits(count: int):
    """Sorted interior cut points (possibly none) slicing a fleet of
    ``count`` units into contiguous shards.

    Drives split-invariance properties of the batched engine: running
    each shard in its own :class:`~repro.sim.batch.BatchedWorld` must
    reproduce the whole-fleet run unit for unit, whatever the cuts — the
    contract that lets the runner shard fleets across workers freely.
    """
    return st.lists(
        st.integers(min_value=1, max_value=count - 1),
        unique=True,
        max_size=count - 1,
    ).map(sorted)


# -- deterministic scenario generators ---------------------------------------
#
# Not Hypothesis strategies: plain constructors for "a realistic world",
# used by invariant and differential tests that need repeatable physics
# rather than adversarial input shrinking.


def scenario_device(
    model: str = "Nexus 5",
    bin_index: int = 0,
    root_seed: int = DEFAULT_ROOT_SEED,
    thermal_solver: str = "euler",
    initial_temp_c: float = 25.0,
) -> Device:
    """One catalog unit on a Monsoon at nominal voltage, ready to run."""
    unit = FleetUnit(model=model, serial=f"check-{bin_index}", bin_index=bin_index)
    return build_device(
        unit,
        supply=MonsoonPowerMonitor(device_spec(model).battery.nominal_v),
        root_seed=root_seed,
        initial_temp_c=initial_temp_c,
        thermal_solver=thermal_solver,
    )


def scenario_world(
    model: str = "Nexus 5",
    bin_index: int = 0,
    dt: float = 0.1,
    trace_decimation: int = 5,
    sleep_fast_forward: bool = True,
    thermal_solver: str = "euler",
    root_seed: int = DEFAULT_ROOT_SEED,
    device: Optional[Device] = None,
) -> World:
    """A bare-room world around one catalog unit (deterministic)."""
    if device is None:
        device = scenario_device(
            model=model,
            bin_index=bin_index,
            root_seed=root_seed,
            thermal_solver=thermal_solver,
        )
    return World(
        device,
        dt=dt,
        trace_decimation=trace_decimation,
        sleep_fast_forward=sleep_fast_forward,
    )
