"""Differential (A/B) testing of the simulator's independent fast paths.

The study's results must not depend on *how* they were computed: the
sub-stepped Euler integrator and the exact ``expm`` propagator model the
same physics, the sleep fast-forward is an exact macro step, and the
parallel executor is bit-identical to the serial loop by construction.
This module runs the same scenario under paired configurations and
compares the results field by field against declarative tolerance specs,
reporting the first divergence with its context (unit, iteration, field —
and for traces, sim-time and protocol phase).

Vocabulary
----------
:class:`Tolerance`
    How far two values of one field may drift: ``abs_tol + rel_tol *
    max(|a|, |b|)``, numpy.isclose-style.  The default is exact equality.
:class:`ToleranceSpec`
    A named map of field → :class:`Tolerance` plus a default for fields
    without an entry; knows how to diff scalars, result objects and traces.
:class:`Pairing`
    Two campaign configurations expected to agree within a spec
    (``euler↔expm``, ``serial↔jobs=N``, ``fast-forward on↔off``).
:class:`DifferentialReport`
    The outcome of one pairing over one or more models — renders either
    "agreed within tolerances" or the first divergence, with counts.

The mutation smoke test (``tests/check/test_mutation.py``) perturbs a
solver constant and asserts the harness flags it — proving these checks
have teeth, not just green lights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import AccubenchConfig
from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.core.serialize import iteration_to_dict
from repro.errors import CheckError
from repro.sim.trace import Trace


@dataclass(frozen=True)
class Tolerance:
    """Allowed drift between two values of one field.

    ``abs_tol`` and ``rel_tol`` combine additively (numpy.isclose-style):
    values agree when ``|a - b| <= abs_tol + rel_tol * max(|a|, |b|)``.
    The zero default demands exact equality — the right spec for paths
    that are bit-identical by construction (serial vs parallel).
    """

    abs_tol: float = 0.0
    rel_tol: float = 0.0

    def __post_init__(self) -> None:
        for name in ("abs_tol", "rel_tol"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise CheckError(f"{name} must be finite and non-negative")

    def allows(self, a: float, b: float) -> bool:
        """Whether two values agree within this tolerance."""
        if math.isnan(a) or math.isnan(b):
            return False
        return abs(a - b) <= self.abs_tol + self.rel_tol * max(abs(a), abs(b))


#: Exact-equality tolerance (the strictest possible spec).
EXACT = Tolerance()


@dataclass(frozen=True)
class Divergence:
    """One field disagreement between the A and B sides of a pairing."""

    field: str
    context: str
    value_a: float
    value_b: float
    sim_time_s: Optional[float] = None
    phase: Optional[str] = None

    @property
    def abs_delta(self) -> float:
        """Absolute disagreement."""
        return abs(self.value_a - self.value_b)

    def describe(self) -> str:
        """Human-readable one-liner."""
        where = f" at t={self.sim_time_s:.1f} s" if self.sim_time_s is not None else ""
        phase = f" (phase {self.phase})" if self.phase else ""
        return (
            f"{self.context}: {self.field} diverged{where}{phase}: "
            f"A={self.value_a:.6g} B={self.value_b:.6g} "
            f"(|Δ|={self.abs_delta:.3g})"
        )


@dataclass(frozen=True)
class ToleranceSpec:
    """A named, declarative map of result fields to tolerances.

    ``fields`` lists per-field tolerances; anything not listed falls back
    to ``default`` (exact equality unless overridden).  The compare
    methods walk result structures and return every divergence found, in
    traversal order — the first entry is the first divergence.
    """

    name: str
    fields: Tuple[Tuple[str, Tolerance], ...] = ()
    default: Tolerance = EXACT

    def tolerance_for(self, field_name: str) -> Tolerance:
        """The tolerance governing one field."""
        for name, tolerance in self.fields:
            if name == field_name:
                return tolerance
        return self.default

    def compare_scalar(
        self,
        field_name: str,
        a: float,
        b: float,
        context: str = "",
        sim_time_s: Optional[float] = None,
        phase: Optional[str] = None,
    ) -> Optional[Divergence]:
        """Diff one value pair; ``None`` means they agree."""
        if self.tolerance_for(field_name).allows(a, b):
            return None
        return Divergence(
            field=field_name,
            context=context,
            value_a=float(a),
            value_b=float(b),
            sim_time_s=sim_time_s,
            phase=phase,
        )

    def compare_mapping(
        self, a: Mapping[str, float], b: Mapping[str, float], context: str = ""
    ) -> List[Divergence]:
        """Diff two flat numeric mappings (shared numeric keys only)."""
        divergences = []
        for key in a:
            if key not in b:
                continue
            va, vb = a[key], b[key]
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                found = self.compare_scalar(key, va, vb, context=context)
                if found is not None:
                    divergences.append(found)
        return divergences

    def compare_iteration(
        self, a: IterationResult, b: IterationResult, context: str = ""
    ) -> List[Divergence]:
        """Diff two protocol iterations field by field."""
        return self.compare_mapping(
            iteration_to_dict(a), iteration_to_dict(b), context=context
        )

    def compare_device(self, a: DeviceResult, b: DeviceResult) -> List[Divergence]:
        """Diff two units' iteration batches."""
        if a.serial != b.serial or len(a.iterations) != len(b.iterations):
            raise CheckError(
                "differential compare requires matching units and iteration "
                f"counts (got {a.serial}×{len(a.iterations)} vs "
                f"{b.serial}×{len(b.iterations)})"
            )
        divergences = []
        for index, (ia, ib) in enumerate(zip(a.iterations, b.iterations)):
            divergences.extend(
                self.compare_iteration(
                    ia, ib, context=f"{a.model}/{a.serial}/iter-{index}"
                )
            )
        return divergences

    def compare_experiment(
        self, a: ExperimentResult, b: ExperimentResult
    ) -> List[Divergence]:
        """Diff two fleet experiments unit by unit."""
        if a.serials != b.serials:
            raise CheckError(
                f"fleets differ: {a.serials} vs {b.serials} — differential "
                "compare requires the same units on both sides"
            )
        divergences = []
        for da, db in zip(a.devices, b.devices):
            divergences.extend(self.compare_device(da, db))
        return divergences

    def compare_trace(
        self, a: Trace, b: Trace, context: str = ""
    ) -> List[Divergence]:
        """Diff two traces sample by sample, annotating divergences with
        sim-time and the protocol phase containing them.

        Requires identical channel sets and sample counts (pairings whose
        trace grids legitimately differ — the fast-forward decimates
        cooldown sampling — compare scalar results instead).
        """
        if a.channels != b.channels:
            raise CheckError(
                f"traces declare different channels: {a.channels} vs {b.channels}"
            )
        divergences: List[Divergence] = []
        if len(a) != len(b):
            divergences.append(
                Divergence(
                    field="len",
                    context=context or "trace",
                    value_a=float(len(a)),
                    value_b=float(len(b)),
                )
            )
            return divergences
        if len(a) == 0:
            return divergences
        times_a, times_b = a.times(), b.times()
        time_tol = self.tolerance_for("time")
        for channel_name, column_a, column_b in (
            [("time", times_a, times_b)]
            + [(name, a.column(name), b.column(name)) for name in a.channels]
        ):
            tolerance = (
                time_tol if channel_name == "time"
                else self.tolerance_for(channel_name)
            )
            for index in range(len(column_a)):
                va, vb = float(column_a[index]), float(column_b[index])
                if not tolerance.allows(va, vb):
                    when = float(times_a[index])
                    divergences.append(
                        Divergence(
                            field=channel_name,
                            context=context or "trace",
                            value_a=va,
                            value_b=vb,
                            sim_time_s=when,
                            phase=_phase_at(a, when),
                        )
                    )
                    break  # first divergence per channel is enough
        return divergences


def _phase_at(trace: Trace, time_s: float) -> Optional[str]:
    for span in trace.phases:
        if span.contains(time_s):
            return span.name
    return None


# -- tolerance specs for the standard pairings ----------------------------

#: Bit-identical paths: the parallel executor's contract.
EXACT_SPEC = ToleranceSpec(name="exact")

#: Euler vs the exact propagator: same physics, different integrators.
#: Cooldown length may differ by one poll window (its end is quantized to
#: the sensor poll); discrete throttle decisions near a threshold can
#: nudge the performance/energy integrals by a fraction of a percent.
SOLVER_SPEC = ToleranceSpec(
    name="euler-vs-expm",
    fields=(
        ("iterations_completed", Tolerance(rel_tol=0.02)),
        ("energy_j", Tolerance(rel_tol=0.02)),
        ("mean_power_w", Tolerance(rel_tol=0.02)),
        ("mean_freq_mhz", Tolerance(rel_tol=0.02)),
        ("max_cpu_temp_c", Tolerance(abs_tol=1.0)),
        ("cooldown_s", Tolerance(abs_tol=10.01)),
        ("time_throttled_s", Tolerance(abs_tol=8.0)),
    ),
)

#: Batched vs serial engine (both expm, fast-forward on): the batched
#: step replays the serial control flow draw-for-draw, so the only real
#: freedom is BLAS summation order — the stacked thermal update is a GEMM
#: where the serial path runs per-unit GEMVs, and per-core power sums
#: collapse behind vectorized reductions.  Those are ulp-level (~1e-13 °C
#: on traces); the budgets below leave three orders of magnitude of
#: headroom while still catching any real modelling drift.  The discrete
#: fields stay effectively exact: a last-ulp temperature wiggle can only
#: move a cooldown exit (or a throttle decision) if a quantized sensor
#: read lands exactly on a rounding boundary, so one poll window / one
#: trace sample of slack covers it.
BATCH_SPEC = ToleranceSpec(
    name="batched-vs-serial",
    fields=(
        ("iterations_completed", Tolerance(rel_tol=1e-9)),
        ("energy_j", Tolerance(rel_tol=1e-9)),
        ("mean_power_w", Tolerance(rel_tol=1e-9)),
        ("mean_freq_mhz", Tolerance(rel_tol=1e-6)),
        ("max_cpu_temp_c", Tolerance(abs_tol=1e-6)),
        ("cooldown_s", Tolerance(abs_tol=5.01)),
        ("time_throttled_s", Tolerance(abs_tol=2.0)),
    ),
    default=Tolerance(abs_tol=1e-9),
)

#: Streamed crowd engine vs the serial §VI reference.  Per-submission
#: fields replay draw-for-draw (the probe's observe window is one exact
#: macro propagation per poll, and the sensor quantizes to 0.1 °C, so the
#: fitted ambient estimates are usually *bit*-identical); the only real
#: drift is the battery's energy integral, accumulated per-step serially
#: but per-poll-window batched — ulp-level, budgeted like BATCH_SPEC.
#: Streaming estimator outputs are exact where the math guarantees it
#: (moments fold the same values in the same order; a non-overflowed
#: reservoir holds the full stream) and within a calibrated band where it
#: does not (P² quantiles are approximations beyond five samples).
CROWD_SPEC = ToleranceSpec(
    name="streamed-vs-serial-crowd",
    fields=(
        ("score", Tolerance(rel_tol=1e-9)),
        ("energy_j", Tolerance(rel_tol=1e-9)),
        ("ambient_c", Tolerance(abs_tol=1e-9)),
        ("time_constant_s", Tolerance(abs_tol=1e-6)),
        ("r_squared", Tolerance(abs_tol=1e-9)),
        ("true_ambient_c", Tolerance()),
        ("true_leak_factor", Tolerance()),
        ("score_mean", Tolerance(rel_tol=1e-9)),
        ("score_std", Tolerance(rel_tol=1e-9, abs_tol=1e-12)),
        ("energy_mean_j", Tolerance(rel_tol=1e-9)),
        ("quantile", Tolerance(rel_tol=0.15)),
        ("ranking_quality_raw", Tolerance(abs_tol=1e-12)),
        ("ranking_quality_filtered", Tolerance(abs_tol=1e-12)),
        ("bin_ordering_quality", Tolerance(abs_tol=1e-12)),
    ),
)

#: Fast-forward on vs off (both expm): the macro step is exact, so only
#: sensor-noise draw alignment at poll boundaries may wiggle the cooldown
#: end by one window; everything thermal/energetic must agree tightly.
FAST_FORWARD_SPEC = ToleranceSpec(
    name="fast-forward",
    fields=(
        ("iterations_completed", Tolerance(rel_tol=0.01)),
        ("energy_j", Tolerance(rel_tol=0.01)),
        ("mean_power_w", Tolerance(rel_tol=0.01)),
        # A unit sitting right at its throttle threshold may clip one
        # mitigation step in one run and not the other, which moves the
        # workload-mean frequency a couple of percent.
        ("mean_freq_mhz", Tolerance(rel_tol=0.03)),
        # The macro step lands the cooldown anywhere inside the poll
        # window the stepped run would have crossed the target in, so the
        # next iteration starts up to a poll period cooler/warmer and its
        # peak shifts by a few tenths of a degree.
        ("max_cpu_temp_c", Tolerance(abs_tol=0.5)),
        ("cooldown_s", Tolerance(abs_tol=10.01)),
        ("time_throttled_s", Tolerance(abs_tol=4.0)),
    ),
)


# -- pairings --------------------------------------------------------------

@dataclass(frozen=True)
class Pairing:
    """Two campaign configurations expected to agree within a spec.

    ``fleet_factory``, when set, builds the devices both sides run instead
    of the model's default paper fleet — it is called once per side with
    that side's :class:`CampaignConfig` and the model label, and must
    return freshly constructed devices (simulation mutates them).  This is
    how scenario pairings that need non-catalog hardware (a fitted skin
    throttle, a heterogeneous fleet) stay declarative.  ``models``, when
    set, overrides the caller's model list for this pairing — a factory
    that ignores its model argument (the mixed fleet) pairs it with a
    single descriptive label.  ``compare_traces`` extends the comparison
    from scalar result fields to the raw trace sample buffers — the gate
    the backend pairings use, since a result transport that corrupted a
    trace byte could still agree on every derived scalar.
    """

    name: str
    label_a: str
    label_b: str
    config_a: CampaignConfig
    config_b: CampaignConfig
    spec: ToleranceSpec
    jobs_a: int = 1
    jobs_b: int = 1
    fleet_factory: Optional[Callable[[CampaignConfig, str], List]] = None
    models: Optional[Tuple[str, ...]] = None
    compare_traces: bool = False

    def __post_init__(self) -> None:
        if self.config_a == self.config_b and self.jobs_a == self.jobs_b:
            raise CheckError(
                f"pairing {self.name!r} runs the identical configuration on "
                "both sides; it can never diverge"
            )


def _with_protocol(base: CampaignConfig, **overrides) -> CampaignConfig:
    return replace(base, accubench=replace(base.accubench, **overrides))


def solver_pairing(base: CampaignConfig) -> Pairing:
    """Euler vs the exact ``expm`` propagator (fast-forward off on both,
    so the comparison isolates the integrator)."""
    return Pairing(
        name="solver",
        label_a="euler",
        label_b="expm",
        config_a=_with_protocol(
            base, thermal_solver="euler", sleep_fast_forward=False
        ),
        config_b=_with_protocol(
            base, thermal_solver="expm", sleep_fast_forward=False
        ),
        spec=SOLVER_SPEC,
    )


def fast_forward_pairing(base: CampaignConfig) -> Pairing:
    """Sleep fast-forward off vs on, both under the exact propagator."""
    return Pairing(
        name="fast-forward",
        label_a="expm/ff-off",
        label_b="expm/ff-on",
        config_a=_with_protocol(
            base, thermal_solver="expm", sleep_fast_forward=False
        ),
        config_b=_with_protocol(
            base, thermal_solver="expm", sleep_fast_forward=True
        ),
        spec=FAST_FORWARD_SPEC,
    )


def jobs_pairing(base: CampaignConfig, jobs: int) -> Pairing:
    """Serial vs ``jobs`` worker processes — must be bit-identical."""
    if jobs < 2:
        raise CheckError("jobs pairing needs at least 2 workers on the B side")
    return Pairing(
        name=f"jobs-{jobs}",
        label_a="serial",
        label_b=f"jobs={jobs}",
        config_a=base,
        config_b=base,
        spec=EXACT_SPEC,
        jobs_a=1,
        jobs_b=jobs,
    )


def backend_pairing(
    base: CampaignConfig,
    backend_a: str,
    backend_b: str,
    jobs_a: int = 1,
    jobs_b: int = 2,
) -> Pairing:
    """Two execution backends on the same campaign — bit-identical down
    to the raw trace bytes.

    Both sides keep full traces so the shared-memory transport's attach
    path is actually exercised and diffed; an explicit backend name is
    honored even at one job (``shared-memory`` with ``jobs_b=1`` runs a
    one-worker pool with the full segment transport, which is exactly
    the coverage wanted).
    """
    traced = _with_protocol(base, keep_traces=True)
    return Pairing(
        name=f"backend-{backend_a}-vs-{backend_b}-j{jobs_b}",
        label_a=f"{backend_a}/j{jobs_a}",
        label_b=f"{backend_b}/j{jobs_b}",
        config_a=replace(traced, backend=backend_a),
        config_b=replace(traced, backend=backend_b),
        spec=EXACT_SPEC,
        jobs_a=jobs_a,
        jobs_b=jobs_b,
        compare_traces=True,
    )


def batch_pairing(base: CampaignConfig) -> Pairing:
    """Serial per-unit worlds vs the lock-step batched engine.

    Both sides run the exact propagator with the sleep fast-forward on —
    the configuration the batched engine requires — so the comparison
    isolates the batching itself."""
    return Pairing(
        name="batch",
        label_a="serial-engine",
        label_b="batched-engine",
        config_a=_with_protocol(
            base, thermal_solver="expm", sleep_fast_forward=True, batch=False
        ),
        config_b=_with_protocol(
            base, thermal_solver="expm", sleep_fast_forward=True, batch=True
        ),
        spec=BATCH_SPEC,
    )


# -- scenario pairings: the batch-eligibility parity matrix ----------------
#
# Every scenario the batched engine claims to handle (see
# ``repro.core.batch_runner.batch_ineligibility_reason``) gets a gating
# serial↔batched pairing of its own, so a regression in any newly lifted
# restriction — vectorized invariants, memory-bounded workloads, skin
# throttling, heterogeneous fleets — fails ``repro-bench check
# --differential``, not just a unit test.

#: The heterogeneous fleet the mixed pairing runs (both models' paper
#: units, interleaved).
MIXED_FLEET_MODELS: Tuple[str, str] = ("Nexus 5", "Nexus 6")

#: Label under which the mixed pairing reports (it runs one combined
#: fleet, not one fleet per catalog model).
MIXED_FLEET_LABEL = "+".join(MIXED_FLEET_MODELS)


def _skin_throttle_fleet(config: CampaignConfig, model: str) -> List:
    """The model's paper fleet with a skin-temperature throttle fitted.

    No catalog spec ships one, so the scenario is built explicitly: every
    unit gets the default :class:`~repro.thermal.skin.SkinThrottleSpec`
    on top of its catalog hardware.
    """
    from repro.device.catalog import device_spec
    from repro.device.fleet import PAPER_FLEETS, build_device
    from repro.thermal.skin import SkinThrottleSpec

    spec = replace(device_spec(model), skin_throttle=SkinThrottleSpec())
    return [
        build_device(
            unit,
            spec=spec,
            root_seed=config.root_seed,
            initial_temp_c=config.ambient_c,
            thermal_solver=config.accubench.thermal_solver,
        )
        for unit in PAPER_FLEETS[model]
    ]


def _mixed_model_fleet(config: CampaignConfig, model: str) -> List:
    """Both :data:`MIXED_FLEET_MODELS` paper fleets, interleaved.

    Interleaving (rather than concatenating) makes the cohort facade's
    gather/scatter carry its weight: units of the same model are never
    adjacent, so any fleet-order bug shows up immediately.  The ``model``
    argument is the report label and is deliberately ignored.
    """
    from repro.device.fleet import paper_fleet

    fleets = [
        paper_fleet(
            name,
            root_seed=config.root_seed,
            initial_temp_c=config.ambient_c,
            thermal_solver=config.accubench.thermal_solver,
        )
        for name in MIXED_FLEET_MODELS
    ]
    mixed = []
    for index in range(max(len(fleet) for fleet in fleets)):
        for fleet in fleets:
            if index < len(fleet):
                mixed.append(fleet[index])
    return mixed


def _batch_scenario_pairing(
    base: CampaignConfig,
    name: str,
    scenario: str,
    overrides: Mapping[str, object],
    fleet_factory: Optional[Callable[[CampaignConfig, str], List]] = None,
    models: Optional[Tuple[str, ...]] = None,
) -> Pairing:
    common = dict(thermal_solver="expm", sleep_fast_forward=True, **overrides)
    return Pairing(
        name=name,
        label_a=f"serial/{scenario}",
        label_b=f"batched/{scenario}",
        config_a=_with_protocol(base, batch=False, **common),
        config_b=_with_protocol(base, batch=True, **common),
        spec=BATCH_SPEC,
        fleet_factory=fleet_factory,
        models=models,
    )


def batch_invariants_pairing(base: CampaignConfig) -> Pairing:
    """Serial vs batched with the runtime invariant suite armed on both
    sides: the batched engine must replay the serial results within
    :data:`BATCH_SPEC` *while* its vectorized checkers observe every
    step (and neither side may raise)."""
    return _batch_scenario_pairing(
        base, "batch-invariants", "invariants", {"check_invariants": True}
    )


def batch_memory_bound_pairing(base: CampaignConfig) -> Pairing:
    """Serial vs batched under a memory-bounded, partially utilized
    workload — the batched per-core roofline share must match the serial
    :class:`~repro.soc.cluster.ClusterState` math draw-for-draw."""
    return _batch_scenario_pairing(
        base,
        "batch-memory-bound",
        "mem-bound",
        {"utilization": 0.9, "memory_boundedness": 0.35},
    )


def batch_skin_throttle_pairing(base: CampaignConfig) -> Pairing:
    """Serial vs batched on fleets fitted with a skin-temperature
    throttle, exercising the vectorized surface-temperature governor."""
    return _batch_scenario_pairing(
        base,
        "batch-skin-throttle",
        "skin",
        {},
        fleet_factory=_skin_throttle_fleet,
    )


def mixed_fleet_pairing(base: CampaignConfig) -> Pairing:
    """Serial vs batched on one heterogeneous (two-model, interleaved)
    fleet: the facade's per-model cohort blocks must reproduce the serial
    per-unit results in fleet order."""
    return _batch_scenario_pairing(
        base,
        "batch-mixed-fleet",
        "mixed",
        {},
        fleet_factory=_mixed_model_fleet,
        models=(MIXED_FLEET_LABEL,),
    )


def default_pairings(base: CampaignConfig) -> Tuple[Pairing, ...]:
    """The standard battery: euler↔expm, serial↔{2,4} jobs, ff on↔off,
    serial↔batched engine, the batch-eligibility parity matrix
    (invariants on, memory-bounded, skin-throttled, mixed fleet), plus
    the execution-backend parity matrix (in-process ↔ process-pool ↔
    shared-memory at 1, 2 and 4 jobs, traces included)."""
    return (
        solver_pairing(base),
        jobs_pairing(base, 2),
        jobs_pairing(base, 4),
        fast_forward_pairing(base),
        batch_pairing(base),
        batch_invariants_pairing(base),
        batch_memory_bound_pairing(base),
        batch_skin_throttle_pairing(base),
        mixed_fleet_pairing(base),
        backend_pairing(base, "in-process", "process-pool", jobs_a=1, jobs_b=2),
        backend_pairing(base, "in-process", "shared-memory", jobs_a=1, jobs_b=1),
        backend_pairing(base, "in-process", "shared-memory", jobs_a=1, jobs_b=2),
        backend_pairing(base, "process-pool", "shared-memory", jobs_a=4, jobs_b=4),
    )


# -- reports ---------------------------------------------------------------

@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one pairing across one or more fleets."""

    name: str
    label_a: str
    label_b: str
    models: Tuple[str, ...]
    compared_fields: int
    divergences: Tuple[Divergence, ...] = field(default=())

    @property
    def passed(self) -> bool:
        """Whether every compared field agreed within its tolerance."""
        return not self.divergences

    @property
    def first_divergence(self) -> Optional[Divergence]:
        """The earliest disagreement found, if any."""
        return self.divergences[0] if self.divergences else None

    def render(self) -> str:
        """Human-readable summary (one block per report)."""
        status = "PASS" if self.passed else "FAIL"
        head = (
            f"[{status}] {self.name}: {self.label_a} vs {self.label_b} on "
            f"{', '.join(self.models)} ({self.compared_fields} fields)"
        )
        if self.passed:
            return head
        lines = [head]
        for divergence in self.divergences[:5]:
            lines.append(f"    {divergence.describe()}")
        hidden = len(self.divergences) - 5
        if hidden > 0:
            lines.append(f"    ... and {hidden} more divergence(s)")
        return "\n".join(lines)


def _compare_result_traces(
    spec: ToleranceSpec, a: ExperimentResult, b: ExperimentResult
) -> Tuple[int, List[Divergence]]:
    """Diff every kept trace; returns (traces compared, divergences).

    Equality is checked on the raw sample buffers first — the cheap path
    a correct transport always takes — and only a mismatch pays for the
    per-sample walk that names the first diverging channel and phase.
    """
    compared = 0
    divergences: List[Divergence] = []
    for da, db in zip(a.devices, b.devices):
        for index, (ia, ib) in enumerate(zip(da.iterations, db.iterations)):
            ta, tb = ia.trace, ib.trace
            if ta is None and tb is None:
                continue
            context = f"{da.model} {da.serial} iter {index} trace"
            if ta is None or tb is None:
                divergences.append(
                    Divergence(
                        field="trace-present",
                        context=context,
                        value_a=float(ta is not None),
                        value_b=float(tb is not None),
                    )
                )
                continue
            compared += 1
            if (
                ta.samples().tobytes() == tb.samples().tobytes()
                and list(ta.phases) == list(tb.phases)
                and ta.open_phase == tb.open_phase
            ):
                continue
            detail = spec.compare_trace(ta, tb, context=context)
            if detail:
                divergences.extend(detail)
            else:
                # Samples agree but phase annotations do not (or the
                # per-sample walk could not localize the byte diff).
                divergences.append(
                    Divergence(
                        field="trace-bytes",
                        context=context,
                        value_a=float(len(ta)),
                        value_b=float(len(tb)),
                    )
                )
    return compared, divergences


def run_pairing(
    pairing: Pairing,
    models: Sequence[str],
    iterations: Optional[int] = None,
) -> DifferentialReport:
    """Run one pairing's A and B configurations over the given fleets.

    Both sides run the UNCONSTRAINED workload — the throttling-rich
    configuration where solver and scheduling differences would show —
    on each model's paper fleet (or on whatever the pairing's
    ``fleet_factory`` builds), and every scalar result field is diffed
    against the pairing's tolerance spec.  A pairing with its own
    ``models`` list overrides the caller's.
    """
    from repro.core.experiments import unconstrained

    if pairing.models is not None:
        models = pairing.models
    divergences: List[Divergence] = []
    compared = 0
    for model in models:
        devices_a = devices_b = None
        if pairing.fleet_factory is not None:
            devices_a = pairing.fleet_factory(pairing.config_a, model)
            devices_b = pairing.fleet_factory(pairing.config_b, model)
        result_a = CampaignRunner(pairing.config_a).run_fleet(
            model,
            unconstrained(),
            devices=devices_a,
            iterations=iterations,
            jobs=pairing.jobs_a,
        )
        result_b = CampaignRunner(pairing.config_b).run_fleet(
            model,
            unconstrained(),
            devices=devices_b,
            iterations=iterations,
            jobs=pairing.jobs_b,
        )
        divergences.extend(pairing.spec.compare_experiment(result_a, result_b))
        compared += sum(
            len(iteration_to_dict(it)) - 3  # numeric fields only
            for device in result_a.devices
            for it in device.iterations
        )
        if pairing.compare_traces:
            traced, trace_divergences = _compare_result_traces(
                pairing.spec, result_a, result_b
            )
            compared += traced
            divergences.extend(trace_divergences)
    return DifferentialReport(
        name=pairing.name,
        label_a=pairing.label_a,
        label_b=pairing.label_b,
        models=tuple(models),
        compared_fields=compared,
        divergences=tuple(divergences),
    )


def run_differential(
    models: Optional[Sequence[str]] = None,
    base: Optional[CampaignConfig] = None,
    pairings: Optional[Sequence[Pairing]] = None,
    iterations: Optional[int] = None,
) -> List[DifferentialReport]:
    """Run the standard (or a custom) pairing battery over the catalog.

    ``models`` defaults to every paper fleet; ``base`` defaults to a
    chamber-less, heavily scaled protocol sized so the whole 5-SoC battery
    finishes in CI time — pass a custom config for paper-length runs.
    """
    if models is None:
        from repro.device.fleet import PAPER_FLEETS

        models = tuple(PAPER_FLEETS)
    if base is None:
        base = default_differential_config()
    chosen = pairings if pairings is not None else default_pairings(base)
    return [run_pairing(pairing, models, iterations=iterations) for pairing in chosen]


def default_differential_config(
    scale: float = 0.05, root_seed: Optional[int] = None
) -> CampaignConfig:
    """The harness's default scenario config: scaled protocol, no chamber."""
    protocol = AccubenchConfig().scaled(scale)
    kwargs: Dict[str, object] = {"accubench": protocol, "use_thermabox": False}
    if root_seed is not None:
        kwargs["root_seed"] = root_seed
    return CampaignConfig(**kwargs)


# -- crowd: streamed vs serial ---------------------------------------------

def default_crowd_differential_config(user_count: int = 12):
    """A field-protocol :class:`~repro.core.crowd.CrowdConfig` small enough
    for an unconditional CI gate: exact solver (the streamed engine's
    requirement), short probe and workload windows."""
    from repro.core.crowd import CrowdConfig

    protocol = AccubenchConfig(
        warmup_s=20.0,
        workload_s=30.0,
        cooldown_target_c=40.0,
        cooldown_timeout_s=3600.0,
        iterations=1,
        dt=0.5,
        trace_decimation=20,
        thermal_solver="expm",
    )
    return CrowdConfig(
        user_count=user_count,
        protocol=protocol,
        probe_heat_s=30.0,
        probe_observe_s=120.0,
    )


def crowd_stream_pairing_report(
    config=None,
    cohort_size: int = 4,
    reservoir_capacity: Optional[int] = None,
) -> DifferentialReport:
    """Streamed crowd campaign vs the serial §VI reference, one report.

    Runs :func:`~repro.core.crowd.run_crowd_study` and
    :func:`~repro.core.crowd_stream.run_streaming_crowd_study` on the same
    configuration and diffs (a) every submission field pair, in population
    order, (b) the drop accounting, and (c) every streaming-estimator
    output against its exact in-memory computation over the serial
    submissions.  ``reservoir_capacity`` defaults to the population size,
    keeping the ranking reservoirs exact so those fields gate tightly.
    """
    import numpy as np

    from repro.core.crowd import (
        run_crowd_study,
        silicon_ranking_quality,
        spearman_rank_correlation,
        strict_filters,
    )
    from repro.core.crowd_stream import run_streaming_crowd_study
    from repro.errors import AnalysisError

    if config is None:
        config = default_crowd_differential_config()
    if reservoir_capacity is None:
        reservoir_capacity = max(3, config.user_count)

    serial = run_crowd_study(config)
    collected = []
    stream = run_streaming_crowd_study(
        config,
        cohort_size=cohort_size,
        reservoir_capacity=reservoir_capacity,
        on_submission=collected.append,
    )

    spec = CROWD_SPEC
    divergences: List[Divergence] = []
    compared = 0

    def check(field_name: str, a: float, b: float, context: str) -> None:
        nonlocal compared
        compared += 1
        found = spec.compare_scalar(field_name, a, b, context=context)
        if found is not None:
            divergences.append(found)

    check(
        "submission_count",
        float(len(serial)),
        float(len(collected)),
        "crowd/yield",
    )
    for reason in sorted(set(serial.dropped) | set(stream.dropped)):
        check(
            f"dropped.{reason}",
            float(serial.dropped.get(reason, 0)),
            float(stream.dropped.get(reason, 0)),
            "crowd/yield",
        )
    for a, b in zip(serial, collected):
        if a.serial != b.serial:
            raise CheckError(
                f"streamed submissions out of population order: "
                f"{a.serial} vs {b.serial}"
            )
        context = f"{config.model}/{a.serial}"
        check("score", a.score, b.score, context)
        check("energy_j", a.energy_j, b.energy_j, context)
        check(
            "ambient_c",
            a.ambient_estimate.ambient_c,
            b.ambient_estimate.ambient_c,
            context,
        )
        check(
            "time_constant_s",
            a.ambient_estimate.time_constant_s,
            b.ambient_estimate.time_constant_s,
            context,
        )
        check(
            "r_squared",
            a.ambient_estimate.r_squared,
            b.ambient_estimate.r_squared,
            context,
        )
        check(
            "sample_count",
            float(a.ambient_estimate.sample_count),
            float(b.ambient_estimate.sample_count),
            context,
        )
        check("true_ambient_c", a.true_ambient_c, b.true_ambient_c, context)
        check(
            "true_leak_factor", a.true_leak_factor, b.true_leak_factor, context
        )

    # Streaming estimates vs exact in-memory computation.
    if len(serial) > 0:
        scores = np.array([s.score for s in serial])
        energies = np.array([s.energy_j for s in serial])
        context = "crowd/estimators"
        check("score_mean", float(scores.mean()), stream.score_mean, context)
        check("score_std", float(scores.std()), stream.score_std, context)
        check(
            "energy_mean_j", float(energies.mean()), stream.energy_mean_j, context
        )
        for key, estimate in stream.score_quantiles.items():
            exact = float(np.quantile(scores, int(key[1:]) / 100.0))
            compared += 1
            found = spec.compare_scalar(
                "quantile", exact, estimate, context=f"{context}/{key}"
            )
            if found is not None:
                divergences.append(found)
        if len(serial) >= 3 and stream.ranking_quality_raw is not None:
            check(
                "ranking_quality_raw",
                silicon_ranking_quality(serial.submissions),
                stream.ranking_quality_raw,
                context,
            )
        kept = strict_filters(serial.submissions)
        if len(kept) >= 3 and stream.ranking_quality_filtered is not None:
            check(
                "ranking_quality_filtered",
                silicon_ranking_quality(kept),
                stream.ranking_quality_filtered,
                context,
            )
        if stream.bin_ordering_quality is not None:
            by_bin: Dict[int, List[float]] = {}
            for submission, bin_index in zip(
                collected, _streamed_bin_indices(config, collected)
            ):
                by_bin.setdefault(bin_index, []).append(submission.score)
            indices = sorted(by_bin)
            try:
                exact_quality = spearman_rank_correlation(
                    [float(i) for i in indices],
                    [float(np.mean(by_bin[i])) for i in indices],
                )
                check(
                    "bin_ordering_quality",
                    exact_quality,
                    stream.bin_ordering_quality,
                    context,
                )
            except AnalysisError:
                pass

    return DifferentialReport(
        name="crowd-stream",
        label_a="serial-crowd",
        label_b="streamed-crowd",
        models=(config.model,),
        compared_fields=compared,
        divergences=tuple(divergences),
    )


def _streamed_bin_indices(config, submissions) -> List[int]:
    """Ground-truth voltage bins for submissions, recomputed from serials.

    Unit silicon is keyed by serial alone, so rebuilding the devices (no
    simulation) recovers exactly the bins the streamed engine recorded.
    """
    from repro.core.crowd import crowd_fleet

    fleet = crowd_fleet(config)
    bins = {
        device.serial: device.soc.clusters[0].bin_index for device in fleet
    }
    return [bins[s.serial] for s in submissions]
