"""Golden-result regression store.

A *golden file* (``tests/golden/<model>.json``) pins one model's scaled
campaign output: per-device scalar summaries plus a coarse per-iteration
trace fingerprint (sample count, per-channel mean/min/max/final, phase
durations).  The files are self-describing — each records the scenario
config (scale, iterations, seed, solver) it was generated with, and
:func:`check_golden` re-runs exactly that scenario — so a checkout where
``repro-bench check --golden`` fails has *changed observable behaviour*,
deliberately or not.

The simulation is deterministic, so regeneration on an unchanged tree is
byte-identical (stable key order, no timestamps); intentional physics
changes regenerate with ``repro-bench check --update-golden`` and the
diff review happens in version control, where it belongs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.check.differential import (
    DifferentialReport,
    Divergence,
    Tolerance,
    ToleranceSpec,
)
from repro.core.config import AccubenchConfig
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.core.serialize import iteration_to_dict
from repro.errors import CheckError
from repro.rng import DEFAULT_ROOT_SEED
from repro.sim.trace import Trace

#: Format marker stamped into every golden document.
GOLDEN_FORMAT = "repro-golden-v1"

#: Default scenario knobs (kept small: the whole catalog regenerates in
#: well under a minute).
DEFAULT_SCALE = 0.05
DEFAULT_ITERATIONS = 1

#: Decimal places kept in trace fingerprints — coarse on purpose, so the
#: fingerprint pins the shape of the run without becoming a float-noise
#: tripwire.
FINGERPRINT_DECIMALS = 6

#: Drift gate for golden comparison: effectively exact, with enough slack
#: to absorb libm differences across platforms.
GOLDEN_SPEC = ToleranceSpec(
    name="golden", default=Tolerance(abs_tol=1e-9, rel_tol=1e-9)
)


def golden_path(directory: str, model: str) -> str:
    """Where one model's golden file lives."""
    slug = model.lower().replace(" ", "-")
    return os.path.join(directory, f"{slug}.json")


def golden_config(
    scale: float = DEFAULT_SCALE,
    iterations: int = DEFAULT_ITERATIONS,
    root_seed: int = DEFAULT_ROOT_SEED,
    solver: str = "euler",
) -> CampaignConfig:
    """The campaign configuration a golden scenario runs under."""
    protocol = AccubenchConfig().scaled(scale)
    protocol = AccubenchConfig(
        **{
            **protocol.__dict__,
            "iterations": iterations,
            "keep_traces": True,
            "thermal_solver": solver,
        }
    )
    return CampaignConfig(
        accubench=protocol, use_thermabox=False, root_seed=root_seed
    )


def trace_fingerprint(trace: Optional[Trace]) -> Optional[Dict[str, Any]]:
    """A coarse, JSON-stable summary of one trace."""
    if trace is None:
        return None
    channels: Dict[str, Dict[str, float]] = {}
    for name in trace.channels:
        column = trace.column(name)
        if column.size == 0:
            continue
        channels[name] = {
            "mean": round(float(column.mean()), FINGERPRINT_DECIMALS),
            "min": round(float(column.min()), FINGERPRINT_DECIMALS),
            "max": round(float(column.max()), FINGERPRINT_DECIMALS),
            "final": round(float(column[-1]), FINGERPRINT_DECIMALS),
        }
    return {
        "samples": len(trace),
        "channels": channels,
        "phases": [
            [span.name, round(span.duration_s, FINGERPRINT_DECIMALS)]
            for span in trace.phases
        ],
    }


def build_golden(model: str, config: Optional[CampaignConfig] = None) -> Dict[str, Any]:
    """Run one model's golden scenario and summarize it as a document."""
    if config is None:
        config = golden_config()
    from repro.core.experiments import unconstrained

    protocol = config.accubench
    result = CampaignRunner(config).run_fleet(model, unconstrained(), jobs=1)
    devices = []
    for device in result.devices:
        iterations = []
        for iteration in device.iterations:
            record = iteration_to_dict(iteration)
            record["trace"] = trace_fingerprint(iteration.trace)
            iterations.append(record)
        devices.append({"serial": device.serial, "iterations": iterations})
    return {
        "format": GOLDEN_FORMAT,
        "model": model,
        "workload": result.workload,
        "config": {
            "warmup_s": protocol.warmup_s,
            "workload_s": protocol.workload_s,
            "cooldown_timeout_s": protocol.cooldown_timeout_s,
            "iterations": protocol.iterations,
            "root_seed": config.root_seed,
            "solver": protocol.thermal_solver,
        },
        "summary": {
            "performance_variation": result.performance_variation
            if len(result.devices) >= 2
            else None,
            "energy_variation": result.energy_variation
            if len(result.devices) >= 2
            else None,
        },
        "devices": devices,
    }


def config_from_document(document: Dict[str, Any]) -> CampaignConfig:
    """Rebuild the campaign config a golden document was generated with."""
    try:
        recorded = document["config"]
        base = AccubenchConfig().scaled(1.0)
        protocol = AccubenchConfig(
            **{
                **base.__dict__,
                "warmup_s": recorded["warmup_s"],
                "workload_s": recorded["workload_s"],
                "cooldown_timeout_s": recorded["cooldown_timeout_s"],
                "iterations": recorded["iterations"],
                "keep_traces": True,
                "thermal_solver": recorded["solver"],
            }
        )
        return CampaignConfig(
            accubench=protocol,
            use_thermabox=False,
            root_seed=recorded["root_seed"],
        )
    except KeyError as missing:
        raise CheckError(f"golden document missing config field {missing}") from None


def write_golden(document: Dict[str, Any], path: str) -> None:
    """Write a golden document with stable formatting (byte-reproducible)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fp:
        json.dump(document, fp, indent=2, sort_keys=True)
        fp.write("\n")


def load_golden(path: str) -> Dict[str, Any]:
    """Read and validate one golden document."""
    try:
        with open(path) as fp:
            document = json.load(fp)
    except FileNotFoundError:
        raise CheckError(
            f"no golden file at {path}; generate one with "
            "'repro-bench check --update-golden'"
        ) from None
    except json.JSONDecodeError as error:
        raise CheckError(f"golden file {path} is not valid JSON: {error}") from None
    if not isinstance(document, dict) or document.get("format") != GOLDEN_FORMAT:
        raise CheckError(
            f"golden file {path} has format {document.get('format')!r} "
            f"(expected {GOLDEN_FORMAT!r})"
        )
    return document


def compare_golden(
    expected: Dict[str, Any],
    actual: Dict[str, Any],
    spec: ToleranceSpec = GOLDEN_SPEC,
) -> DifferentialReport:
    """Diff a stored golden document against a freshly built one."""
    divergences: List[Divergence] = []
    compared = _walk(expected, actual, "", spec, divergences)
    return DifferentialReport(
        name=f"golden:{expected.get('model', '?')}",
        label_a="golden",
        label_b="current",
        models=(str(expected.get("model", "?")),),
        compared_fields=compared,
        divergences=tuple(divergences),
    )


def check_golden(
    directory: str, models: Sequence[str]
) -> List[DifferentialReport]:
    """Re-run every model's recorded scenario and diff against its file."""
    reports = []
    for model in models:
        expected = load_golden(golden_path(directory, model))
        actual = build_golden(model, config_from_document(expected))
        reports.append(compare_golden(expected, actual))
    return reports


def update_golden(
    directory: str,
    models: Sequence[str],
    config: Optional[CampaignConfig] = None,
) -> List[str]:
    """(Re)generate golden files; returns the paths written."""
    paths = []
    for model in models:
        document = build_golden(model, config)
        path = golden_path(directory, model)
        write_golden(document, path)
        paths.append(path)
    return paths


# -- internals -------------------------------------------------------------

def _walk(
    expected: Any,
    actual: Any,
    path: str,
    spec: ToleranceSpec,
    out: List[Divergence],
) -> int:
    """Recursively diff two JSON trees; returns fields compared.

    Numeric leaves go through the tolerance spec (keyed by the leaf's
    final path component); structural and non-numeric mismatches surface
    as presence divergences so the report never silently skips drift.
    """
    compared = 0
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            child = f"{path}.{key}" if path else str(key)
            if key not in expected or key not in actual:
                out.append(_presence(child, key in expected, key in actual))
                continue
            compared += _walk(expected[key], actual[key], child, spec, out)
        return compared
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(
                Divergence(
                    field="len",
                    context=path,
                    value_a=float(len(expected)),
                    value_b=float(len(actual)),
                )
            )
            return compared
        for index, (ea, aa) in enumerate(zip(expected, actual)):
            compared += _walk(ea, aa, f"{path}[{index}]", spec, out)
        return compared
    if _is_number(expected) and _is_number(actual):
        leaf = path.rsplit(".", 1)[-1]
        found = spec.compare_scalar(leaf, float(expected), float(actual), context=path)
        if found is not None:
            out.append(found)
        return 1
    if expected != actual:
        out.append(_presence(path, True, False))
    return compared + 1


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _presence(path: str, in_expected: bool, in_actual: bool) -> Divergence:
    return Divergence(
        field="presence" if (in_expected != in_actual) else "mismatch",
        context=path,
        value_a=1.0 if in_expected else 0.0,
        value_b=1.0 if in_actual else 0.0,
    )
