"""Correctness tooling: invariants, differential testing, golden traces.

The repro now has several independent fast paths — the vectorized engine
loop, the exact ``expm`` propagator, the sleep fast-forward and the
parallel executor — whose agreement used to be asserted ad hoc.  This
package makes cross-implementation agreement and physical plausibility
machine-checked:

:mod:`repro.check.invariants`
    Opt-in runtime checkers attachable to a :class:`~repro.sim.engine.World`
    (energy accounting, temperature bounds, monotone cooldown, throttle
    consistency, trace time ordering).  Zero-cost when not attached.
:mod:`repro.check.differential`
    An A/B harness running the same scenario under paired configurations
    (euler↔expm, serial↔parallel, fast-forward on↔off) and comparing
    results against declarative per-field tolerance specs.
:mod:`repro.check.golden`
    A golden-result store (``tests/golden/*.json``) with load/compare/
    regenerate APIs, gating CI on silent drift.
:mod:`repro.check.strategies`
    Shared Hypothesis strategies and deterministic scenario generators
    (imported lazily — only test code needs Hypothesis).

Entry points: ``repro-bench check`` (``--differential``, ``--invariants``,
``--golden``, ``--update-golden``), ``make check``, and the ``check`` CI
job.  See ``docs/testing.md``.
"""

from repro.check.differential import (
    BATCH_SPEC,
    CROWD_SPEC,
    Divergence,
    DifferentialReport,
    Pairing,
    Tolerance,
    ToleranceSpec,
    backend_pairing,
    batch_pairing,
    crowd_stream_pairing_report,
    default_crowd_differential_config,
    default_pairings,
    fast_forward_pairing,
    jobs_pairing,
    run_differential,
    run_pairing,
    solver_pairing,
)
from repro.check.golden import (
    GOLDEN_FORMAT,
    build_golden,
    check_golden,
    compare_golden,
    golden_path,
    load_golden,
    update_golden,
    write_golden,
)
from repro.check.invariants import (
    EnergyConservation,
    Invariant,
    InvariantSuite,
    MonotoneCooldown,
    TemperatureBounds,
    ThrottleConsistency,
    TraceTimeMonotone,
    default_invariants,
)
from repro.check.telemetry import (
    TELEMETRY_SPEC,
    telemetry_parity_report,
)

__all__ = [
    "BATCH_SPEC",
    "CROWD_SPEC",
    "Divergence",
    "DifferentialReport",
    "Pairing",
    "Tolerance",
    "ToleranceSpec",
    "backend_pairing",
    "batch_pairing",
    "crowd_stream_pairing_report",
    "default_crowd_differential_config",
    "default_pairings",
    "fast_forward_pairing",
    "jobs_pairing",
    "run_differential",
    "run_pairing",
    "solver_pairing",
    "GOLDEN_FORMAT",
    "build_golden",
    "check_golden",
    "compare_golden",
    "golden_path",
    "load_golden",
    "update_golden",
    "write_golden",
    "EnergyConservation",
    "Invariant",
    "InvariantSuite",
    "MonotoneCooldown",
    "TemperatureBounds",
    "ThrottleConsistency",
    "TraceTimeMonotone",
    "default_invariants",
    "TELEMETRY_SPEC",
    "telemetry_parity_report",
]
