"""Runtime physical-invariant checkers for the simulation engine.

Each :class:`Invariant` watches every world step through the engine's
observer hook (:meth:`repro.sim.engine.World.attach_observer`) and raises
:class:`~repro.errors.InvariantViolation` — with sim-time and protocol
phase context — the moment the physics stops being plausible:

* **EnergyConservation** — the supply meter's energy must equal the
  integral of the stepped supply power (the Monsoon accounting identity).
* **TemperatureBounds** — no node may cool below the coldest boundary it
  has ever seen, nor heat past the junction ceiling.
* **MonotoneCooldown** — a sleeping device strictly above ambient must
  cool toward it, never away.
* **ThrottleConsistency** — mitigation may only deepen when the die is
  actually hot, and only relax once it has cooled.
* **TraceTimeMonotone** — trace timestamps must strictly increase.

Checkers are **opt-in and zero-cost when disabled**: an unobserved world
runs the exact pre-existing hot loop (``run_for`` checks for an observer
once per call, not per step).  Enable them per run with
``AccubenchConfig(check_invariants=True)``, per world with
``world.attach_observer(InvariantSuite())``, or from the CLI via
``repro-bench check --invariants``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.device.phone import StepReport
from repro.errors import InvariantViolation
from repro.sim.engine import StepObserver, World

#: No silicon in the catalog survives past this die temperature; anything
#: above it is a simulation bug, not physics.
JUNCTION_MAX_C = 120.0

#: Slack on the lower temperature bound, °C (sub-step transients).
BOUND_MARGIN_C = 0.5

#: A sleeping device must be this far above ambient before monotone
#: cooling is enforced (asymptotic approach wiggles within sensor noise).
COOLDOWN_MARGIN_C = 1.0

#: How far below the throttle threshold the die may read when a
#: mitigation step lands (the policy samples on its own poll grid, up to
#: one poll period before we observe the consequence).
THROTTLE_MARGIN_C = 5.0


class Invariant(StepObserver):
    """One named runtime check; subclasses override the observer hooks."""

    name = "invariant"

    def on_finish(self, world: World) -> None:
        """Called once after the run (end-of-run identities check here)."""

    def violate(self, world: World, message: str) -> None:
        """Raise a violation annotated with sim-time and phase context."""
        phase = world.phase or "(no phase)"
        raise InvariantViolation(
            f"[{self.name}] {message} — at t={world.now:.2f} s, "
            f"phase {phase}, device {world.device.serial}"
        )


class EnergyConservation(Invariant):
    """Supply energy meter == ∫ supply power dt, within tolerance.

    The Monsoon/battery accumulate ``power × dt`` per draw; integrating
    the same product over step reports must land on the same total.  A
    drift means a path is double-counting or skipping draws (the exact
    bug class a macro-step fast-forward could introduce).
    """

    name = "energy-conservation"

    def __init__(self, rel_tol: float = 1e-6, abs_tol: float = 1e-3) -> None:
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        self._integral_j = 0.0
        self._baseline_j = 0.0

    def on_attach(self, world: World) -> None:
        self._baseline_j = self._meter_j(world)

    def on_step(
        self, world: World, report: StepReport, ambient_c: float, dt: float
    ) -> None:
        self._integral_j += report.supply_power_w * dt
        metered = self._meter_j(world) - self._baseline_j
        drift = abs(metered - self._integral_j)
        if drift > self.abs_tol + self.rel_tol * max(metered, self._integral_j):
            self.violate(
                world,
                f"supply meter reads {metered:.6f} J but stepped power "
                f"integrates to {self._integral_j:.6f} J (drift {drift:.2e} J)",
            )

    @staticmethod
    def _meter_j(world: World) -> float:
        return float(getattr(world.device.supply, "energy_drawn_j", 0.0))


class TemperatureBounds(Invariant):
    """Every reported temperature within [coldest boundary seen, junction max]."""

    name = "temperature-bounds"

    def __init__(
        self,
        junction_max_c: float = JUNCTION_MAX_C,
        margin_c: float = BOUND_MARGIN_C,
    ) -> None:
        self.junction_max_c = junction_max_c
        self.margin_c = margin_c
        self._floor_c = math.inf

    def on_attach(self, world: World) -> None:
        temps = world.device.thermal.temperatures().values()
        self._floor_c = min(temps)

    def on_step(
        self, world: World, report: StepReport, ambient_c: float, dt: float
    ) -> None:
        self._floor_c = min(self._floor_c, ambient_c)
        floor = self._floor_c - self.margin_c
        for label, temp in (
            ("cpu", report.cpu_temp_c),
            ("case", report.case_temp_c),
        ):
            if temp < floor:
                self.violate(
                    world,
                    f"{label} temperature {temp:.2f} °C fell below the "
                    f"coldest boundary seen ({self._floor_c:.2f} °C)",
                )
            if temp > self.junction_max_c:
                self.violate(
                    world,
                    f"{label} temperature {temp:.2f} °C exceeds the "
                    f"junction ceiling ({self.junction_max_c:.1f} °C)",
                )


class MonotoneCooldown(Invariant):
    """A sleeping die strictly above ambient must cool, never heat."""

    name = "monotone-cooldown"

    #: Per-step heating allowance, °C.  A device settled to a *uniform*
    #: temperature genuinely warms its die a few ten-thousandths of a
    #: degree while the gradient toward ambient establishes; anything at
    #: sensor resolution or above is a real violation.
    DEFAULT_SLACK_C = 0.01

    def __init__(
        self, margin_c: float = COOLDOWN_MARGIN_C, slack_c: float = DEFAULT_SLACK_C
    ) -> None:
        self.margin_c = margin_c
        self.slack_c = slack_c
        self._previous: Optional[StepReport] = None

    def on_step(
        self, world: World, report: StepReport, ambient_c: float, dt: float
    ) -> None:
        previous = self._previous
        self._previous = report
        if previous is None or not (previous.asleep and report.asleep):
            return
        if previous.cpu_temp_c <= ambient_c + self.margin_c:
            return
        if report.cpu_temp_c > previous.cpu_temp_c + self.slack_c:
            self.violate(
                world,
                f"sleeping die heated from {previous.cpu_temp_c:.4f} to "
                f"{report.cpu_temp_c:.4f} °C while {previous.cpu_temp_c - ambient_c:.2f} °C "
                f"above ambient",
            )


class ThrottleConsistency(Invariant):
    """Mitigation steps must track the die temperature they claim to."""

    name = "throttle-consistency"

    def __init__(self, margin_c: float = THROTTLE_MARGIN_C) -> None:
        self.margin_c = margin_c
        self._previous_steps = 0
        self._throttle_temp_c: Optional[float] = None
        self._clear_temp_c: Optional[float] = None

    def on_attach(self, world: World) -> None:
        self._previous_steps = world.device.soc.mitigation.ceiling_steps
        throttle_spec = world.device.spec.throttle
        self._throttle_temp_c = throttle_spec.throttle_temp_c
        self._clear_temp_c = throttle_spec.clear_temp_c

    def on_step(
        self, world: World, report: StepReport, ambient_c: float, dt: float
    ) -> None:
        steps = world.device.soc.mitigation.ceiling_steps
        previous = self._previous_steps
        self._previous_steps = steps
        if steps > previous and self._throttle_temp_c is not None:
            if report.cpu_temp_c < self._throttle_temp_c - self.margin_c:
                self.violate(
                    world,
                    f"throttle deepened to {steps} step(s) with the die at "
                    f"{report.cpu_temp_c:.2f} °C, well below the "
                    f"{self._throttle_temp_c:.1f} °C threshold",
                )
        elif steps < previous and self._clear_temp_c is not None:
            if report.cpu_temp_c > self._clear_temp_c + self.margin_c:
                self.violate(
                    world,
                    f"throttle relaxed to {steps} step(s) with the die still "
                    f"at {report.cpu_temp_c:.2f} °C, above the "
                    f"{self._clear_temp_c:.1f} °C clear temperature",
                )


class TraceTimeMonotone(Invariant):
    """Trace timestamps must strictly increase, fast-forwards included."""

    name = "trace-time-monotone"

    def __init__(self) -> None:
        self._seen = 0
        self._last_time_s = -math.inf

    def on_attach(self, world: World) -> None:
        self._seen = len(world.trace)
        if self._seen:
            self._last_time_s = float(world.trace.times()[-1])

    def on_step(
        self, world: World, report: StepReport, ambient_c: float, dt: float
    ) -> None:
        trace = world.trace
        if len(trace) == self._seen:
            return
        fresh = trace.times()[self._seen:]
        self._seen = len(trace)
        for sample_time in fresh:
            sample_time = float(sample_time)
            if sample_time <= self._last_time_s:
                self.violate(
                    world,
                    f"trace sample at t={sample_time:.4f} s does not advance "
                    f"past the previous sample at t={self._last_time_s:.4f} s",
                )
            self._last_time_s = sample_time


def default_invariants() -> Tuple[Invariant, ...]:
    """A fresh instance of every standard invariant."""
    return (
        EnergyConservation(),
        TemperatureBounds(),
        MonotoneCooldown(),
        ThrottleConsistency(),
        TraceTimeMonotone(),
    )


class InvariantSuite(StepObserver):
    """A bundle of invariants driven as one engine observer.

    Attach to a world directly, or let the protocol do it via
    ``AccubenchConfig(check_invariants=True)``.  ``steps_checked`` counts
    observed advances, so harness reports can prove the checks actually
    ran (a suite that observed zero steps is a configuration bug).
    """

    def __init__(self, invariants: Optional[Sequence[Invariant]] = None) -> None:
        self.invariants: Tuple[Invariant, ...] = (
            tuple(invariants) if invariants is not None else default_invariants()
        )
        self.steps_checked = 0

    def on_attach(self, world: World) -> None:
        for invariant in self.invariants:
            invariant.on_attach(world)

    def on_step(
        self, world: World, report: StepReport, ambient_c: float, dt: float
    ) -> None:
        self.steps_checked += 1
        for invariant in self.invariants:
            invariant.on_step(world, report, ambient_c, dt)

    def finish(self, world: World) -> None:
        """Run end-of-run checks (call once after the scenario)."""
        for invariant in self.invariants:
            invariant.on_finish(world)


class BatchedInvariantSuite:
    """The five standard invariants vectorized over a batched cohort.

    Where :class:`InvariantSuite` observes one world through the engine's
    per-step hook, this suite observes a whole ``(N, nodes)`` cohort at
    once: :class:`~repro.sim.batch.BatchedWorld` calls
    :meth:`observe_awake` after every lock-step engine tick,
    :meth:`observe_asleep` after every sleeping macro window, and
    :meth:`observe_trace` whenever trace samples land.  Each check is the
    element-wise form of its serial counterpart with identical tolerances,
    and a violation raises the same
    ``[name] message — at t=…, phase …, device …`` diagnostic for the
    first offending unit in fleet order.

    Asleep macro windows integrate supply power over the whole window
    (exactly what the serial meter accumulates) and enforce monotone
    cooldown window-to-window; the case-temperature bound is only
    evaluated while awake, since the sleeping hook reports the die.
    """

    def __init__(
        self,
        serials: Sequence[str],
        node_temps_c: np.ndarray,
        meter_j: np.ndarray,
        throttle_steps: np.ndarray,
        throttle_temp_c: float,
        clear_temp_c: float,
        rel_tol: float = 1e-6,
        abs_tol: float = 1e-3,
    ) -> None:
        count = len(serials)
        self.serials = list(serials)
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        self._throttle_temp_c = throttle_temp_c
        self._clear_temp_c = clear_temp_c
        self._integral_j = np.zeros(count)
        self._baseline_j = np.array(meter_j, dtype=float)
        self._floor_c = np.asarray(node_temps_c, dtype=float).min(axis=1)
        self._prev_cpu_c = np.full(count, np.nan)
        self._prev_asleep = np.zeros(count, dtype=bool)
        self._prev_steps = np.array(throttle_steps)
        self._last_trace_s = np.full(count, -math.inf)
        self.steps_checked = 0

    # -- observer hooks ------------------------------------------------------

    def observe_awake(
        self,
        now_s: np.ndarray,
        phase: Optional[str],
        cpu_c: np.ndarray,
        case_c: np.ndarray,
        ambient_c: np.ndarray,
        supply_w: np.ndarray,
        meter_j: np.ndarray,
        throttle_steps: np.ndarray,
        dt: float,
    ) -> None:
        """Check one lock-step awake tick across the whole cohort."""
        self.steps_checked += 1
        self._integral_j += supply_w * dt
        self._check_energy(np.ones(cpu_c.size, dtype=bool), meter_j, now_s, phase)
        np.minimum(self._floor_c, ambient_c, out=self._floor_c)
        self._check_bounds("cpu", cpu_c, now_s, phase)
        self._check_bounds("case", case_c, now_s, phase)
        self._check_throttle(cpu_c, throttle_steps, now_s, phase)
        self._prev_cpu_c = np.array(cpu_c, dtype=float)
        self._prev_asleep[:] = False

    def observe_asleep(
        self,
        active: np.ndarray,
        now_s: np.ndarray,
        phase: Optional[str],
        cpu_c: np.ndarray,
        ambient_c: np.ndarray,
        supply_w: float,
        meter_j: np.ndarray,
        duration_s: float,
    ) -> None:
        """Check one sleeping macro window for the active cohort."""
        self.steps_checked += 1
        self._integral_j[active] += supply_w * duration_s
        self._check_energy(active, meter_j, now_s, phase)
        self._floor_c[active] = np.minimum(
            self._floor_c[active], ambient_c[active]
        )
        self._check_bounds("cpu", cpu_c, now_s, phase, where=active)
        heated = (
            active
            & self._prev_asleep
            & (self._prev_cpu_c > ambient_c + COOLDOWN_MARGIN_C)
            & (cpu_c > self._prev_cpu_c + MonotoneCooldown.DEFAULT_SLACK_C)
        )
        if heated.any():
            i = int(np.flatnonzero(heated)[0])
            self._violate(
                "monotone-cooldown",
                f"sleeping die heated from {self._prev_cpu_c[i]:.4f} to "
                f"{cpu_c[i]:.4f} °C while "
                f"{self._prev_cpu_c[i] - ambient_c[i]:.2f} °C above ambient",
                i,
                now_s,
                phase,
            )
        self._prev_cpu_c[active] = cpu_c[active]
        self._prev_asleep[active] = True

    def observe_trace(self, units: np.ndarray, times_s: np.ndarray) -> None:
        """Check that fresh trace samples advance each unit's timeline."""
        stale = times_s <= self._last_trace_s[units]
        if stale.any():
            j = int(np.flatnonzero(stale)[0])
            i = int(units[j])
            self._violate(
                "trace-time-monotone",
                f"trace sample at t={times_s[j]:.4f} s does not advance "
                f"past the previous sample at t={self._last_trace_s[i]:.4f} s",
                i,
                float(times_s[j]),
                None,
            )
        self._last_trace_s[units] = times_s

    # -- element-wise checks -------------------------------------------------

    def _check_energy(
        self,
        active: np.ndarray,
        meter_j: np.ndarray,
        now_s: np.ndarray,
        phase: Optional[str],
    ) -> None:
        metered = meter_j - self._baseline_j
        drift = np.abs(metered - self._integral_j)
        tolerance = self.abs_tol + self.rel_tol * np.maximum(
            metered, self._integral_j
        )
        bad = active & (drift > tolerance)
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            self._violate(
                "energy-conservation",
                f"supply meter reads {metered[i]:.6f} J but stepped power "
                f"integrates to {self._integral_j[i]:.6f} J "
                f"(drift {drift[i]:.2e} J)",
                i,
                now_s,
                phase,
            )

    def _check_bounds(
        self,
        label: str,
        temps_c: np.ndarray,
        now_s: np.ndarray,
        phase: Optional[str],
        where: Optional[np.ndarray] = None,
    ) -> None:
        floor = self._floor_c - BOUND_MARGIN_C
        low = temps_c < floor
        high = temps_c > JUNCTION_MAX_C
        bad = low | high
        if where is not None:
            bad &= where
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            if low[i]:
                message = (
                    f"{label} temperature {temps_c[i]:.2f} °C fell below the "
                    f"coldest boundary seen ({self._floor_c[i]:.2f} °C)"
                )
            else:
                message = (
                    f"{label} temperature {temps_c[i]:.2f} °C exceeds the "
                    f"junction ceiling ({JUNCTION_MAX_C:.1f} °C)"
                )
            self._violate("temperature-bounds", message, i, now_s, phase)

    def _check_throttle(
        self,
        cpu_c: np.ndarray,
        steps: np.ndarray,
        now_s: np.ndarray,
        phase: Optional[str],
    ) -> None:
        previous = self._prev_steps
        deepened = (steps > previous) & (
            cpu_c < self._throttle_temp_c - THROTTLE_MARGIN_C
        )
        if deepened.any():
            i = int(np.flatnonzero(deepened)[0])
            self._violate(
                "throttle-consistency",
                f"throttle deepened to {int(steps[i])} step(s) with the die "
                f"at {cpu_c[i]:.2f} °C, well below the "
                f"{self._throttle_temp_c:.1f} °C threshold",
                i,
                now_s,
                phase,
            )
        relaxed = (steps < previous) & (
            cpu_c > self._clear_temp_c + THROTTLE_MARGIN_C
        )
        if relaxed.any():
            i = int(np.flatnonzero(relaxed)[0])
            self._violate(
                "throttle-consistency",
                f"throttle relaxed to {int(steps[i])} step(s) with the die "
                f"still at {cpu_c[i]:.2f} °C, above the "
                f"{self._clear_temp_c:.1f} °C clear temperature",
                i,
                now_s,
                phase,
            )
        self._prev_steps = np.array(steps)

    def _violate(
        self, name: str, message: str, unit: int, now_s, phase: Optional[str]
    ) -> None:
        times = np.asarray(now_s, dtype=float)
        at = float(times[unit]) if times.ndim else float(times)
        phase = phase or "(no phase)"
        raise InvariantViolation(
            f"[{name}] {message} — at t={at:.2f} s, phase {phase}, "
            f"device {self.serials[unit]}"
        )
