"""Telemetry parity: observing a campaign must not change it.

The whole telemetry plane — metrics registry, progress bus, HTTP
endpoint, watchdogs — is built on the contract that it never touches the
simulation's random streams or arithmetic.  This module makes that
contract machine-checked the same way the solver and scheduling fast
paths are: run the identical fleet twice, once bare and once under the
full observation stack (enabled registry, progress bus, live
:class:`~repro.obs.TelemetryServer` being scraped concurrently from
another thread), and diff every result field with exact equality.

A passing report proves two things at once: observation is free of
side effects, and the endpoint answers well-formed documents *while the
campaign is running* (every scrape is parsed, not just fetched).
"""

from __future__ import annotations

import json
import threading
import urllib.request
from typing import List, Optional

from repro.check.differential import (
    DifferentialReport,
    Divergence,
    ToleranceSpec,
    default_differential_config,
)
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.core.serialize import iteration_to_dict
from repro.errors import CheckError

#: Exact equality on every field — observation may not move a single bit.
TELEMETRY_SPEC = ToleranceSpec(name="telemetry")


class _Scraper:
    """Polls a live endpoint from a side thread, validating every answer."""

    def __init__(self, url: str, interval_s: float = 0.02) -> None:
        self._url = url
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-parity-scraper", daemon=True
        )
        self.scrapes = 0
        self.error: Optional[str] = None

    def _loop(self) -> None:
        from repro.obs import parse_prometheus_text

        while not self._stop.is_set():
            try:
                with urllib.request.urlopen(
                    f"{self._url}/metrics", timeout=5.0
                ) as response:
                    parse_prometheus_text(response.read().decode())
                with urllib.request.urlopen(
                    f"{self._url}/status", timeout=5.0
                ) as response:
                    status = json.load(response)
                if status.get("format") != "repro-status-v1":
                    raise CheckError(
                        f"/status answered format {status.get('format')!r}"
                    )
                self.scrapes += 1
            except Exception as error:  # noqa: BLE001 - recorded, re-raised
                self.error = str(error)
                return
            self._stop.wait(self._interval_s)

    def __enter__(self) -> "_Scraper":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def telemetry_parity_report(
    model: str = "Nexus 5",
    config: Optional[CampaignConfig] = None,
    iterations: Optional[int] = 1,
    jobs: int = 1,
) -> DifferentialReport:
    """Run one fleet bare vs fully observed; diff results exactly.

    The observed arm collects metrics into an enabled registry, feeds a
    :class:`~repro.obs.ProgressBus` through the task-callback channel and
    serves both over HTTP on an ephemeral port, with a scraper thread
    hitting ``/metrics`` and ``/status`` throughout — the worst case the
    live telemetry plane can inflict on a run.
    """
    from repro.core.experiments import unconstrained
    from repro.obs import (
        MetricsRegistry,
        ProgressBus,
        TelemetryServer,
        use_registry,
    )

    if config is None:
        config = default_differential_config()

    bare = CampaignRunner(config).run_fleet(
        model, unconstrained(), iterations=iterations, jobs=jobs
    )

    registry = MetricsRegistry(enabled=True)
    bus = ProgressBus()
    with use_registry(registry):
        with TelemetryServer(registry=registry, bus=bus) as server:
            with _Scraper(server.url) as scraper:
                observed = CampaignRunner(config, progress=bus).run_fleet(
                    model, unconstrained(), iterations=iterations, jobs=jobs
                )
    if scraper.error is not None:
        raise CheckError(
            f"telemetry endpoint misbehaved under load: {scraper.error}"
        )
    if bus.updates == 0:
        raise CheckError("progress bus saw no updates — wiring is broken")

    divergences: List[Divergence] = list(
        TELEMETRY_SPEC.compare_experiment(bare, observed)
    )
    compared = sum(
        len(iteration_to_dict(it)) - 3  # numeric fields only
        for device in bare.devices
        for it in device.iterations
    )
    return DifferentialReport(
        name="telemetry",
        label_a="bare",
        label_b=f"observed+scraped({scraper.scrapes}x)",
        models=(model,),
        compared_fields=compared,
        divergences=tuple(divergences),
    )
