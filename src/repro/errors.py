"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an invalid or inconsistent state."""


class CalibrationError(ReproError):
    """A calibrated model failed to satisfy its declared constraints."""


class InstrumentError(ReproError):
    """A simulated instrument (Monsoon, THERMABOX) was misused or failed."""


class ProtocolError(ReproError):
    """The ACCUBENCH protocol was driven through an illegal transition."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot interpret."""


class ObservabilityError(ReproError):
    """The metrics/span layer was misused or fed a malformed document."""


class BackendError(ReproError):
    """An execution backend's worker pool or result transport failed."""


class CheckError(ReproError):
    """The correctness harness (:mod:`repro.check`) was misused or failed."""


class InvariantViolation(CheckError):
    """A runtime physics/accounting invariant did not hold during a run."""


class UnknownModelError(ConfigurationError):
    """A device or SoC model name was not found in the catalog."""

    def __init__(self, kind: str, name: str, known: "tuple[str, ...]") -> None:
        self.kind = kind
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown {kind} {name!r}; known {kind}s: {', '.join(self.known)}"
        )
