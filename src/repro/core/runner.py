"""Campaign runner: the paper's full study design, automated.

For each unit: power it from a Monsoon at the methodology's voltage,
stabilize the THERMABOX, then run ≥5 back-to-back ACCUBENCH iterations.
For each model: do that for every unit under both workloads.  This is the
automation loop the paper describes at the end of Section III ("the app
first communicates with the THERMABOX and confirms that it is within the
target temperature range...").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.batch_runner import (
    MIN_AUTO_BATCH_UNITS,
    batch_ineligibility_reason,
    shard_bounds,
)
from repro.core.config import AccubenchConfig
from repro.core.experiments import ExperimentSpec, fixed_frequency, unconstrained
from repro.core.parallel import BatchTask, DeviceTask, Task, run_tasks
from repro.core.protocol import Accubench
from repro.core.results import DeviceResult, ExperimentResult
from repro.device.catalog import DeviceSpec
from repro.device.fleet import paper_fleet
from repro.device.phone import Device
from repro.errors import ConfigurationError
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.thermabox import Thermabox, ThermaboxConfig
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.progress import ProgressCallback
from repro.rng import DEFAULT_ROOT_SEED
from repro.thermal.ambient import AmbientProfile, ConstantAmbient
from repro.units import PAPER_AMBIENT_C, require_finite


@dataclass(frozen=True)
class CampaignConfig:
    """Study-level configuration.

    Attributes
    ----------
    accubench:
        The protocol parameters (durations, iteration count, dt).
    ambient_c:
        THERMABOX setpoint (the paper's 26 °C).
    room_temp_c:
        Temperature of the room the chamber sits in.
    use_thermabox:
        Whether devices run inside a regulated chamber.  Turning this off
        is the ablation that shows why the chamber exists.
    monsoon_voltage:
        Main-channel voltage, or ``None`` to choose per device: the
        battery's nominal voltage, except on models with an input-voltage
        throttle where the battery's max voltage is used (the paper's
        LG G5 lesson, Figure 10).
    root_seed:
        Seed for all stochastic elements.
    jobs:
        Worker processes for fleet/study execution: ``1`` (default) runs
        the classic serial loop, ``N > 1`` fans independent units out over
        a worker pool, ``0`` means "all cores".  Values above the
        machine's core count are clamped at resolution time (a per-call
        ``jobs`` override is honored as given).  Results are identical
        regardless (see :mod:`repro.core.parallel`).
    backend:
        Execution backend for multi-process dispatch (see
        :mod:`repro.core.backends`): ``"auto"`` (default) runs in-process
        at one effective job and on the zero-copy shared-memory pool
        otherwise; ``"in-process"``, ``"process-pool"`` and
        ``"shared-memory"`` force a substrate.  Results are bit-identical
        under every backend.
    """

    accubench: AccubenchConfig = field(default_factory=AccubenchConfig)
    ambient_c: float = PAPER_AMBIENT_C
    room_temp_c: float = 23.0
    use_thermabox: bool = True
    monsoon_voltage: Optional[float] = None
    root_seed: int = DEFAULT_ROOT_SEED
    jobs: int = 1
    backend: str = "auto"

    def __post_init__(self) -> None:
        from repro.core.backends import validate_backend

        if self.jobs < 0:
            raise ConfigurationError("jobs must be non-negative (0 = all cores)")
        validate_backend(self.backend)
        require_finite(
            "CampaignConfig",
            ambient_c=self.ambient_c,
            room_temp_c=self.room_temp_c,
        )
        if self.ambient_c < 0 or self.room_temp_c < 0:
            raise ConfigurationError(
                "ambient_c and room_temp_c must not be negative"
            )
        if self.monsoon_voltage is not None:
            require_finite(
                "CampaignConfig", monsoon_voltage=self.monsoon_voltage
            )
            if self.monsoon_voltage <= 0:
                raise ConfigurationError("monsoon_voltage must be positive")


class CampaignRunner:
    """Runs experiments over units, fleets and the whole study.

    ``progress`` (optional) is called with a
    :class:`~repro.obs.progress.TaskProgress` as each unit's iteration
    batch completes — live, in completion order, for any ``jobs`` value.
    Telemetry (phase spans, engine counters, per-task wall times) is
    published to :func:`repro.obs.default_registry` whenever an enabled
    registry is installed; see ``docs/observability.md``.
    """

    def __init__(
        self,
        config: Optional[CampaignConfig] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.config = config if config is not None else CampaignConfig()
        self.progress = progress
        self._protocol = Accubench(self.config.accubench)

    def monsoon_voltage_for(self, spec: DeviceSpec) -> float:
        """The supply voltage the methodology uses for a device model."""
        if self.config.monsoon_voltage is not None:
            return self.config.monsoon_voltage
        if spec.voltage_throttle is not None:
            return spec.battery.max_v
        return spec.battery.nominal_v

    def run_device(
        self,
        device: Device,
        experiment: ExperimentSpec,
        ambient_c: Optional[float] = None,
        iterations: Optional[int] = None,
        supply_voltage: Optional[float] = None,
    ) -> DeviceResult:
        """Run one experiment (≥5 iterations) on one unit.

        ``supply_voltage`` overrides the methodology's voltage choice for
        this unit only — the knob behind the paper's Figure 10 experiment.
        """
        count = iterations if iterations is not None else self.config.accubench.iterations
        if count < 1:
            raise ConfigurationError("iterations must be at least 1")
        volts = (
            supply_voltage
            if supply_voltage is not None
            else self.monsoon_voltage_for(device.spec)
        )
        monsoon = MonsoonPowerMonitor(volts)
        device.connect_supply(monsoon)
        room, chamber = self._environment(ambient_c)
        registry = default_registry()
        propagator = device.thermal.propagator
        hits_before = propagator.cache_hits if propagator is not None else 0
        misses_before = propagator.cache_misses if propagator is not None else 0
        with registry.span(
            "run_device",
            model=device.spec.name,
            serial=device.serial,
            workload=experiment.name,
            iterations=count,
        ):
            if chamber is not None:
                chamber.wait_until_stable(self.config.room_temp_c)
            results = tuple(
                self._protocol.run_iteration(
                    device, experiment, room=room, chamber=chamber
                )
                for _ in range(count)
            )
        self._publish_device_metrics(
            registry, chamber, propagator, hits_before, misses_before
        )
        return DeviceResult(
            model=device.spec.name,
            serial=device.serial,
            workload=experiment.name,
            iterations=results,
        )

    def run_fleet(
        self,
        model: str,
        experiment: ExperimentSpec,
        devices: Optional[Sequence[Device]] = None,
        ambient_c: Optional[float] = None,
        iterations: Optional[int] = None,
        jobs: Optional[int] = None,
    ) -> ExperimentResult:
        """Run one experiment across a fleet (the paper's units by default).

        ``jobs`` overrides :attr:`CampaignConfig.jobs` for this call; units
        are independent, so any worker count yields identical results.
        Every path goes through :func:`repro.core.parallel.run_tasks` —
        with one job the tasks run in-process on the caller's device
        objects (the historical serial loop), and either way per-task
        telemetry and progress events are emitted uniformly.
        """
        resolved = self._resolve_jobs(jobs)
        fleet = self._build_fleet(model, devices, ambient_c)
        tasks = self._fleet_tasks(
            fleet, experiment, resolved, ambient_c=ambient_c, iterations=iterations
        )
        results = tuple(
            run_tasks(
                tasks,
                resolved,
                progress=self.progress,
                backend=self.config.backend,
            )
        )
        return ExperimentResult(model=model, workload=experiment.name, devices=results)

    def run_model(
        self,
        model: str,
        spec: Optional[DeviceSpec] = None,
        jobs: Optional[int] = None,
    ) -> Tuple[ExperimentResult, ExperimentResult]:
        """Both workloads on one model's paper fleet:
        (UNCONSTRAINED, FIXED-FREQUENCY).

        The two workloads run on separately built fleets, so with
        ``jobs > 1`` all units of both workloads share one process pool.
        """
        from repro.device.catalog import device_spec as lookup

        device = spec if spec is not None else lookup(model)
        performance_spec = unconstrained()
        energy_spec = fixed_frequency(device)
        resolved = self._resolve_jobs(jobs)
        if resolved <= 1:
            performance = self.run_fleet(model, performance_spec, jobs=1)
            energy = self.run_fleet(model, energy_spec, jobs=1)
            return performance, energy
        plan = [(model, performance_spec), (model, energy_spec)]
        performance, energy = self._run_experiments(plan, resolved)
        return performance, energy

    def run_study(
        self,
        models: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
    ) -> Dict[str, Tuple[ExperimentResult, ExperimentResult]]:
        """The whole Table II study: every model, both workloads.

        With ``jobs > 1`` every (model, unit, workload) in the study is one
        work item in a single process-pool dispatch.
        """
        from repro.device.catalog import DEVICE_NAMES, device_spec as lookup

        chosen = list(models) if models is not None else list(DEVICE_NAMES)
        resolved = self._resolve_jobs(jobs)
        if resolved <= 1:
            return {model: self.run_model(model, jobs=1) for model in chosen}
        plan = []
        for model in chosen:
            device = lookup(model)
            plan.append((model, unconstrained()))
            plan.append((model, fixed_frequency(device)))
        experiments = self._run_experiments(plan, resolved)
        return {
            model: (experiments[2 * i], experiments[2 * i + 1])
            for i, model in enumerate(chosen)
        }

    # -- internals --------------------------------------------------------

    def _resolve_jobs(self, jobs: Optional[int]) -> int:
        """Resolve a per-call override against the config; 0 = all cores.

        The config-supplied default is clamped to the machine's core count
        — spawning a 4-worker pool on a 1-core box only adds pickling
        overhead (and once produced a <1x "speedup" in the recorded
        benchmarks).  An explicit per-call ``jobs`` is honored as given so
        callers (and tests) can force the pool path deliberately.
        """
        explicit = jobs is not None
        value = jobs if explicit else self.config.jobs
        if value < 0:
            raise ConfigurationError("jobs must be non-negative (0 = all cores)")
        cores = os.cpu_count() or 1
        if value == 0:
            return cores
        return value if explicit else min(value, cores)

    def _build_fleet(
        self,
        model: str,
        devices: Optional[Sequence[Device]],
        ambient_c: Optional[float],
    ) -> List[Device]:
        if devices is not None:
            return list(devices)
        return paper_fleet(
            model,
            root_seed=self.config.root_seed,
            initial_temp_c=ambient_c if ambient_c is not None else self.config.ambient_c,
            thermal_solver=self.config.accubench.thermal_solver,
        )

    def _fleet_tasks(
        self,
        fleet: Sequence[Device],
        experiment: ExperimentSpec,
        jobs: int,
        ambient_c: Optional[float] = None,
        iterations: Optional[int] = None,
    ) -> List[Task]:
        """Shape one fleet into work items: batched shards or per-unit tasks.

        The tri-state ``accubench.batch`` knob decides: ``False`` never
        batches, ``True`` batches any eligible fleet, ``None`` (auto)
        batches eligible fleets of at least ``MIN_AUTO_BATCH_UNITS`` units.
        Ineligible fleets silently fall back to the serial per-unit path —
        batching is a performance choice, never a correctness one.

        Batched fleets are cut into shards by
        :func:`repro.core.batch_runner.shard_bounds` — the single home of
        the batched task-sizing policy (shard count, minimum units per
        shard, model-boundary snapping); units are never reordered, so
        results still come back in fleet order.
        """
        mode = self.config.accubench.batch
        eligible = (
            mode is not False
            and batch_ineligibility_reason(self.config, experiment, fleet) is None
        )
        if mode is None:
            use_batch = eligible and len(fleet) >= MIN_AUTO_BATCH_UNITS
        else:
            use_batch = mode and eligible
        if not use_batch:
            return [
                DeviceTask(
                    device=device,
                    experiment=experiment,
                    config=self.config,
                    ambient_c=ambient_c,
                    iterations=iterations,
                )
                for device in fleet
            ]
        bounds = shard_bounds(fleet, jobs)
        return [
            BatchTask(
                devices=tuple(fleet[bounds[i] : bounds[i + 1]]),
                experiment=experiment,
                config=self.config,
                ambient_c=ambient_c,
                iterations=iterations,
            )
            for i in range(len(bounds) - 1)
            if bounds[i + 1] > bounds[i]
        ]

    def _run_experiments(
        self, plan: Sequence[Tuple[str, ExperimentSpec]], jobs: int
    ) -> List[ExperimentResult]:
        """Run several (model, experiment) fleets through one pool dispatch.

        Flattens every fleet into one task list so the pool stays busy across
        experiment boundaries, then reassembles per-experiment results in
        plan order.
        """
        tasks: List[Task] = []
        counts: List[int] = []
        for model, experiment in plan:
            fleet = self._build_fleet(model, None, None)
            counts.append(len(fleet))
            tasks.extend(self._fleet_tasks(fleet, experiment, jobs))
        results = run_tasks(
            tasks, jobs, progress=self.progress, backend=self.config.backend
        )
        experiments: List[ExperimentResult] = []
        cursor = 0
        for (model, experiment), count in zip(plan, counts):
            experiments.append(
                ExperimentResult(
                    model=model,
                    workload=experiment.name,
                    devices=tuple(results[cursor : cursor + count]),
                )
            )
            cursor += count
        return experiments

    @staticmethod
    def _publish_device_metrics(
        registry: MetricsRegistry,
        chamber: Optional[Thermabox],
        propagator,
        hits_before: int,
        misses_before: int,
    ) -> None:
        """Harvest per-batch instrument tallies into the registry.

        The chamber is created per :meth:`run_device` call, so its duty
        totals are already batch-local; the propagator belongs to the
        device (which outlives the call), so deltas are taken against the
        counts captured at batch start.  Keys are always published so the
        document schema is solver-independent.
        """
        if not registry.enabled:
            return
        hits = propagator.cache_hits - hits_before if propagator is not None else 0
        misses = (
            propagator.cache_misses - misses_before if propagator is not None else 0
        )
        registry.counter("propagator.cache_hits").add(hits)
        registry.counter("propagator.cache_misses").add(misses)
        registry.counter("thermabox.heater_duty_s").add(
            chamber.heater_duty_seconds if chamber is not None else 0.0
        )
        registry.counter("thermabox.cooler_duty_s").add(
            chamber.cooler_duty_seconds if chamber is not None else 0.0
        )
        registry.counter("thermabox.elapsed_s").add(
            chamber.elapsed_s if chamber is not None else 0.0
        )

    def _environment(
        self, ambient_c: Optional[float]
    ) -> Tuple[AmbientProfile, Optional[Thermabox]]:
        target = ambient_c if ambient_c is not None else self.config.ambient_c
        if not self.config.use_thermabox:
            return ConstantAmbient(target), None
        chamber = Thermabox(
            ThermaboxConfig(target_c=target), initial_temp_c=target
        )
        return ConstantAmbient(self.config.room_temp_c), chamber
