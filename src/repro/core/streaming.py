"""Online estimators for streaming crowd campaigns (paper §VI at scale).

A million-user crowd study cannot keep a million :class:`Submission`\\ s in
memory just to compute a handful of summary statistics at the end.  This
module provides single-pass estimators whose state is O(1) (or O(bounded
reservoir)) in the number of submissions folded in:

:class:`StreamingMoments`
    Welford's online mean/variance.
:class:`P2Quantile`
    The Jain–Chlamtac P² algorithm: one quantile from five markers.
:class:`QuantileBank`
    A fixed set of P² quantiles sharing one ``add``.
:class:`RankingReservoir`
    Uniform reservoir sampling (Algorithm R) over (truth, score) pairs;
    while the stream fits in the reservoir the Spearman estimate is
    *exact* (and draws nothing from its generator), beyond it the
    estimate is computed over a uniform subsample.
:class:`BinRecoveryCounter`
    Per-voltage-bin submission counts and mean scores, plus a rank
    correlation between bin order and mean score — the §VI "can the crowd
    recover the bins?" question, incrementally.

Every estimator round-trips through :meth:`state_dict` /
:meth:`from_state` **bit-identically**: the state is plain JSON-safe
Python (floats survive ``json`` exactly via shortest-repr round-trip, and
generator states are carried as ``bit_generator.state`` dicts), which is
what makes checkpoint/resume of a streaming campaign reproduce the
uninterrupted run exactly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError, ConfigurationError

__all__ = [
    "StreamingMoments",
    "P2Quantile",
    "QuantileBank",
    "RankingReservoir",
    "BinRecoveryCounter",
]


class StreamingMoments:
    """Welford's single-pass mean and variance."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Population variance of everything folded so far."""
        return self._m2 / self.count if self.count > 0 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": None if math.isinf(self.min) else self.min,
            "max": None if math.isinf(self.max) else self.max,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "StreamingMoments":
        inst = cls()
        inst.count = int(state["count"])
        inst.mean = float(state["mean"])
        inst._m2 = float(state["m2"])
        inst.min = math.inf if state["min"] is None else float(state["min"])
        inst.max = -math.inf if state["max"] is None else float(state["max"])
        return inst


class P2Quantile:
    """One online quantile via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track (min, two intermediates, the target quantile, max);
    marker heights move by piecewise-parabolic interpolation as
    observations stream past.  The estimate is exact until five values
    have been seen, approximate after — always within [min, max] of the
    observed stream.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError("quantile must be within (0, 1)")
        self.q = q
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._count = 0

    @property
    def count(self) -> int:
        """Observations folded so far."""
        return self._count

    def add(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        q = self.q
        # Locate the cell and bump the extreme markers.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        desired[1] += q / 2.0
        desired[2] += q
        desired[3] += (1.0 + q) / 2.0
        desired[4] += 1.0
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def estimate(self) -> float:
        """Current quantile estimate.

        Exact (linear interpolation of the sorted sample, matching
        ``np.quantile``) while at most five values have been seen.
        """
        if self._count == 0:
            raise AnalysisError("no observations folded yet")
        heights = self._heights
        if self._count <= 5:
            return float(np.quantile(np.asarray(heights), self.q))
        return heights[2]

    def state_dict(self) -> Dict[str, Any]:
        return {
            "q": self.q,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "count": self._count,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "P2Quantile":
        inst = cls(float(state["q"]))
        inst._heights = [float(v) for v in state["heights"]]
        inst._positions = [float(v) for v in state["positions"]]
        inst._desired = [float(v) for v in state["desired"]]
        inst._count = int(state["count"])
        return inst


#: The quantiles a crowd summary reports by default.
DEFAULT_QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.95)


class QuantileBank:
    """A fixed set of :class:`P2Quantile` estimators fed together."""

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ConfigurationError("QuantileBank needs at least one quantile")
        self._estimators = [P2Quantile(q) for q in quantiles]

    @property
    def count(self) -> int:
        return self._estimators[0].count

    def add(self, value: float) -> None:
        for estimator in self._estimators:
            estimator.add(value)

    def estimates(self) -> Dict[str, float]:
        """``{"p50": ..., ...}`` for every tracked quantile."""
        return {
            f"p{round(est.q * 100):02d}": est.estimate()
            for est in self._estimators
        }

    def state_dict(self) -> Dict[str, Any]:
        return {"estimators": [est.state_dict() for est in self._estimators]}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "QuantileBank":
        inst = cls.__new__(cls)
        inst._estimators = [
            P2Quantile.from_state(sub) for sub in state["estimators"]
        ]
        return inst


class RankingReservoir:
    """Bounded uniform sample of (truth, score) pairs for Spearman's ρ.

    Algorithm R: the k-th pair replaces a random reservoir slot with
    probability capacity/k.  While the stream still fits (``seen <=
    capacity``) the reservoir holds *every* pair, no randomness is
    consumed, and :meth:`correlation` equals the exact full-stream
    Spearman — which is what lets the differential harness gate the
    streamed pipeline against the serial one bit-for-bit at small N.
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 3:
            raise ConfigurationError("reservoir capacity must be at least 3")
        self.capacity = capacity
        self._rng = rng
        self._pairs: List[Tuple[float, float]] = []
        self.seen = 0

    def add(self, truth: float, score: float) -> None:
        """Offer one pair to the reservoir."""
        self.seen += 1
        if len(self._pairs) < self.capacity:
            self._pairs.append((float(truth), float(score)))
            return
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self._pairs[slot] = (float(truth), float(score))

    @property
    def is_exact(self) -> bool:
        """Whether the reservoir still holds the entire stream."""
        return self.seen <= self.capacity

    def correlation(self) -> Optional[float]:
        """Spearman's ρ over the held pairs, or ``None`` below 3 pairs
        (or for a degenerate constant sample)."""
        from repro.core.crowd import spearman_rank_correlation

        if len(self._pairs) < 3:
            return None
        truth = [pair[0] for pair in self._pairs]
        scores = [pair[1] for pair in self._pairs]
        try:
            return spearman_rank_correlation(truth, scores)
        except AnalysisError:
            return None

    def state_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "pairs": [[a, b] for a, b in self._pairs],
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RankingReservoir":
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        inst = cls(int(state["capacity"]), rng)
        inst.seen = int(state["seen"])
        inst._pairs = [(float(a), float(b)) for a, b in state["pairs"]]
        return inst


class BinRecoveryCounter:
    """Per-voltage-bin submission counts and score moments.

    The §VI question "does crowd data recover the bins?" needs only one
    count and one running mean per bin — O(bin_count) state however many
    users stream past.  :meth:`ordering_quality` grades how well the
    per-bin mean scores rank the bins themselves.
    """

    def __init__(self) -> None:
        self._moments: Dict[int, StreamingMoments] = {}

    def add(self, bin_index: int, score: float) -> None:
        """Fold one submission's (ground-truth bin, score) in."""
        moments = self._moments.get(bin_index)
        if moments is None:
            moments = self._moments[bin_index] = StreamingMoments()
        moments.add(score)

    @property
    def counts(self) -> Dict[int, int]:
        """Submissions seen per bin, keyed by bin index."""
        return {
            index: self._moments[index].count
            for index in sorted(self._moments)
        }

    def mean_scores(self) -> Dict[int, float]:
        """Mean score per bin, keyed by bin index."""
        return {
            index: self._moments[index].mean
            for index in sorted(self._moments)
        }

    def ordering_quality(self) -> Optional[float]:
        """Spearman's ρ between bin index and per-bin mean score.

        Lower bin indices hold higher-V_th (slower, less leaky) silicon,
        so a faithful crowd shows a consistent monotone relation.  Needs
        at least three populated bins; ``None`` otherwise.
        """
        from repro.core.crowd import spearman_rank_correlation

        if len(self._moments) < 3:
            return None
        indices = sorted(self._moments)
        means = [self._moments[i].mean for i in indices]
        try:
            return spearman_rank_correlation(
                [float(i) for i in indices], means
            )
        except AnalysisError:
            return None

    def state_dict(self) -> Dict[str, Any]:
        return {
            "bins": {
                str(index): moments.state_dict()
                for index, moments in sorted(self._moments.items())
            }
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "BinRecoveryCounter":
        inst = cls()
        inst._moments = {
            int(index): StreamingMoments.from_state(sub)
            for index, sub in state["bins"].items()
        }
        return inst
