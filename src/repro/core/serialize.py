"""JSON serialization of campaign results.

Campaigns are cheap to rerun but studies accumulate: the CLI and any
longer-lived analysis want results on disk.  Traces are intentionally not
serialized (they are engine-grid time series, megabytes each, and fully
reproducible from the config + seed); everything else round-trips exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.errors import AnalysisError

#: Schema version stamped into every document.
SCHEMA_VERSION = 1


def iteration_to_dict(result: IterationResult) -> Dict[str, Any]:
    """One iteration as plain data (trace dropped)."""
    return {
        "model": result.model,
        "serial": result.serial,
        "workload": result.workload,
        "iterations_completed": result.iterations_completed,
        "energy_j": result.energy_j,
        "mean_power_w": result.mean_power_w,
        "mean_freq_mhz": result.mean_freq_mhz,
        "max_cpu_temp_c": result.max_cpu_temp_c,
        "cooldown_s": result.cooldown_s,
        "time_throttled_s": result.time_throttled_s,
    }


def iteration_from_dict(data: Dict[str, Any]) -> IterationResult:
    """Inverse of :func:`iteration_to_dict`."""
    try:
        return IterationResult(
            model=data["model"],
            serial=data["serial"],
            workload=data["workload"],
            iterations_completed=float(data["iterations_completed"]),
            energy_j=float(data["energy_j"]),
            mean_power_w=float(data["mean_power_w"]),
            mean_freq_mhz=float(data["mean_freq_mhz"]),
            max_cpu_temp_c=float(data["max_cpu_temp_c"]),
            cooldown_s=float(data["cooldown_s"]),
            time_throttled_s=float(data["time_throttled_s"]),
        )
    except KeyError as missing:
        raise AnalysisError(f"iteration document missing field {missing}") from None


def device_to_dict(result: DeviceResult) -> Dict[str, Any]:
    """One unit's result as plain data."""
    return {
        "model": result.model,
        "serial": result.serial,
        "workload": result.workload,
        "iterations": [iteration_to_dict(it) for it in result.iterations],
    }


def device_from_dict(data: Dict[str, Any]) -> DeviceResult:
    """Inverse of :func:`device_to_dict`."""
    try:
        return DeviceResult(
            model=data["model"],
            serial=data["serial"],
            workload=data["workload"],
            iterations=tuple(
                iteration_from_dict(it) for it in data["iterations"]
            ),
        )
    except KeyError as missing:
        raise AnalysisError(f"device document missing field {missing}") from None


def experiment_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """One fleet experiment as plain data, with summary convenience keys.

    Variation metrics need at least two units; single-device documents
    carry ``None`` there rather than failing.
    """
    multi_unit = len(result.devices) >= 2
    return {
        "schema_version": SCHEMA_VERSION,
        "model": result.model,
        "workload": result.workload,
        "devices": [device_to_dict(d) for d in result.devices],
        "summary": {
            "performance_variation": (
                result.performance_variation if multi_unit else None
            ),
            "energy_variation": result.energy_variation if multi_unit else None,
            "best_serial": result.best_serial,
            "worst_serial": result.worst_serial,
        },
    }


def experiment_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`experiment_to_dict` (summary keys are ignored —
    they are recomputed properties)."""
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise AnalysisError(
            f"unsupported schema version {version} (supported: {SCHEMA_VERSION})"
        )
    try:
        return ExperimentResult(
            model=data["model"],
            workload=data["workload"],
            devices=tuple(device_from_dict(d) for d in data["devices"]),
        )
    except KeyError as missing:
        raise AnalysisError(f"experiment document missing field {missing}") from None


def dump_experiment(result: ExperimentResult, fp: IO[str], indent: int = 2) -> None:
    """Write one experiment result as JSON."""
    json.dump(experiment_to_dict(result), fp, indent=indent)


def dumps_experiment(result: ExperimentResult, indent: int = 2) -> str:
    """One experiment result as a JSON string."""
    return json.dumps(experiment_to_dict(result), indent=indent)


def load_experiment(source: Union[str, IO[str]]) -> ExperimentResult:
    """Read an experiment result from a JSON string or file object."""
    if isinstance(source, str):
        data = json.loads(source)
    else:
        data = json.load(source)
    if not isinstance(data, dict):
        raise AnalysisError("experiment document must be a JSON object")
    return experiment_from_dict(data)
