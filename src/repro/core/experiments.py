"""The paper's two experiment types (Section III).

* **UNCONSTRAINED** — cores run free under the performance governor; the
  thermal stack throttles as it will.  Measures *performance* variation:
  leaky chips heat more, throttle more, complete fewer iterations.
* **FIXED-FREQUENCY** — all cores pinned at a low frequency guaranteed not
  to throttle, so every chip does (almost exactly) the same work.
  Measures *energy* variation, and doubles as the repeatability check:
  performance spread here should be negligible (the paper saw ≤1.3–2.63%
  RSD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.device.catalog import DeviceSpec
from repro.errors import ConfigurationError

#: Canonical experiment names, exactly as the paper prints them.
UNCONSTRAINED = "UNCONSTRAINED"
FIXED_FREQUENCY = "FIXED-FREQUENCY"


@dataclass(frozen=True)
class ExperimentSpec:
    """One workload definition.

    Attributes
    ----------
    name:
        ``UNCONSTRAINED`` or ``FIXED-FREQUENCY``.
    fixed_freq_mhz:
        Pinned frequency for FIXED-FREQUENCY runs; ``None`` otherwise.
    """

    name: str
    fixed_freq_mhz: Optional[float] = None

    def __post_init__(self) -> None:
        if self.name == UNCONSTRAINED:
            if self.fixed_freq_mhz is not None:
                raise ConfigurationError("UNCONSTRAINED takes no fixed frequency")
        elif self.name == FIXED_FREQUENCY:
            if self.fixed_freq_mhz is None or self.fixed_freq_mhz <= 0:
                raise ConfigurationError(
                    "FIXED-FREQUENCY requires a positive fixed frequency"
                )
        else:
            raise ConfigurationError(
                f"unknown experiment {self.name!r}; use "
                f"{UNCONSTRAINED!r} or {FIXED_FREQUENCY!r}"
            )

    @property
    def is_unconstrained(self) -> bool:
        """True for the performance-variation workload."""
        return self.name == UNCONSTRAINED


def unconstrained() -> ExperimentSpec:
    """The performance-variation experiment."""
    return ExperimentSpec(name=UNCONSTRAINED)


def fixed_frequency(
    device: DeviceSpec, freq_mhz: Optional[float] = None
) -> ExperimentSpec:
    """The energy-variation experiment for one device model.

    Uses the device catalog's calibrated never-throttles frequency unless
    the caller overrides it.
    """
    freq = freq_mhz if freq_mhz is not None else device.fixed_freq_mhz
    return ExperimentSpec(name=FIXED_FREQUENCY, fixed_freq_mhz=freq)
