"""Text rendering of the paper's tables and figures.

Benchmarks print these so a run of the harness visually mirrors what the
paper reports: Table I (voltage bins), Table II (variation summary), the
per-SoC normalized bars of Figures 6–9, and the Figure 13 efficiency
series.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.core.analysis import normalize
from repro.core.efficiency import EfficiencyPoint
from repro.core.results import ExperimentResult
from repro.silicon.vf_tables import VoltageFrequencyTable


def render_table1(table: VoltageFrequencyTable, title: str = "Nexus 5") -> str:
    """Table I: per-bin voltages at each frequency anchor."""
    header_cells = "".join(f"{int(f):>7d}" for f in table.frequencies_mhz)
    lines = [
        f"Voltage (mV) vs Frequency (MHz) across bins — {title}",
        f"{'bin':<8s}{header_cells}",
    ]
    for bin_index in range(table.bin_count):
        row = table.row_mv(bin_index)
        cells = "".join(f"{int(v):>7d}" for v in row)
        lines.append(f"Bin-{bin_index:<4d}{cells}")
    return "\n".join(lines)


def render_table2(
    rows: Mapping[str, Tuple[str, int, float, float]]
) -> str:
    """Table II: per-model (soc, n_devices, perf_variation, energy_variation)."""
    lines = [
        f"{'Chipset':<8s} {'Model':<14s} {'#Dev':>4s} {'Perf':>7s} {'Energy':>7s}",
    ]
    for model, (soc, count, perf, energy) in rows.items():
        lines.append(
            f"{soc:<8s} {model:<14s} {count:>4d} {perf:>6.0%} {energy:>6.0%}"
        )
    return "\n".join(lines)


def render_normalized_bars(
    values: Mapping[str, float],
    metric: str,
    reference: str = "max",
    width: int = 40,
) -> str:
    """A per-SoC figure (6a/6b style): normalized horizontal bars."""
    serials = list(values)
    normalized = normalize([values[s] for s in serials], reference=reference)
    lines = [f"Normalized {metric} (reference = {reference})"]
    for serial, fraction in zip(serials, normalized):
        bar = "#" * max(1, round(fraction * width))
        lines.append(f"  {serial:<14s} {fraction:6.3f} {bar}")
    return "\n".join(lines)


def render_experiment(result: ExperimentResult, metric: str = "performance") -> str:
    """One fleet experiment as a normalized bar figure."""
    if metric == "performance":
        values = result.performances()
        reference = "max"
    elif metric == "energy":
        values = result.energies_j()
        reference = "min"
    else:
        raise ValueError(f"unknown metric {metric!r}")
    title = f"{result.model} — {result.workload} {metric}"
    return title + "\n" + render_normalized_bars(values, metric, reference=reference)


def render_efficiency(points: Sequence[EfficiencyPoint], width: int = 40) -> str:
    """Figure 13: relative efficiency per SoC generation."""
    if not points:
        return "no efficiency data"
    peak = max(point.mean_iters_per_kj for point in points)
    lines = ["Relative efficiency of smartphone SoCs (iterations/kJ)"]
    for point in points:
        fraction = point.mean_iters_per_kj / peak
        bar = "#" * max(1, round(fraction * width))
        lines.append(
            f"  {point.soc:<8s} {point.mean_iters_per_kj:7.1f} {bar}"
        )
    return "\n".join(lines)


def render_variation_summary(
    perf: ExperimentResult, energy: ExperimentResult
) -> Dict[str, float]:
    """The two headline numbers of one model, as a dict for reports."""
    return {
        "performance_variation": perf.performance_variation,
        "energy_variation": energy.energy_variation,
    }
