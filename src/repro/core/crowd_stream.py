"""Streaming crowd campaigns: cohort-batched simulation at planet scale.

:func:`repro.core.crowd.run_crowd_study` is exact but serial and
accumulative — O(users) time through the per-unit engine and O(users)
memory holding every :class:`Submission`.  This module runs the *same*
campaign as a stream:

1. **Cohort planner** — users are materialized in fixed-size cohorts;
   a mixed-model population (``CrowdConfig.models``) assigns each user's
   model from its population index alone.  The population parameter
   stream draws exactly two uniforms per user in population order (see
   :func:`repro.core.crowd.plan_users`), so the planner's RNG cursor is
   a checkpointable object for any model mix.
2. **Batched cohort execution** — each cohort's cooldown probe and field
   ACCUBENCH pass advance in lock-step through one
   :class:`~repro.sim.batch.BatchedWorld` (per-unit rooms, per-unit
   batteries, per-model cohort blocks when models are mixed), replaying
   the serial engine draw-for-draw per unit.  Cohorts ship to worker
   processes as :class:`~repro.core.parallel.CrowdCohortTask`\\ s.
3. **Streaming estimators** — per-user submissions fold, in population
   order, into the online estimators of :mod:`repro.core.streaming`;
   memory stays O(cohort + estimator state) however many users run.
4. **Checkpoint/resume** — after every ``checkpoint_every`` cohorts the
   estimator state, drop counters and parameter-stream cursor are written
   atomically; an interrupted campaign resumed from its checkpoint
   produces bit-identical estimates to an uninterrupted one.
5. **Live telemetry** — an optional :class:`~repro.obs.progress.ProgressBus`
   receives per-cohort completions and a campaign cursor at every fold
   boundary (never inside the lock-step loop), an optional
   :class:`~repro.obs.watch.Watchdog` evaluates each snapshot, and a
   ``repro-manifest-v1`` provenance document is written next to every
   checkpoint and final result.

Submissions themselves are not retained — pass ``on_submission`` to
observe them (the differential harness uses this to compare the stream
against the serial reference at small N).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from math import ceil
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ambient_estimation import (
    DEFAULT_PROBE_POLL_S,
    DEFAULT_PROBE_SKIP_FRACTION,
    estimate_ambient,
)
from repro.core.backends import resolve_backend, validate_backend
from repro.core.batch_runner import run_batch_iteration
from repro.core.crowd import (
    CrowdConfig,
    Submission,
    UserSample,
    crowd_fleet,
    crowd_model_label,
    crowd_param_stream,
    passes_strict_filters,
    plan_users,
    prepare_field_device,
    probe_drop_reason,
)
from repro.core.experiments import unconstrained
from repro.core.parallel import CrowdCohortTask
from repro.core.streaming import (
    BinRecoveryCounter,
    QuantileBank,
    RankingReservoir,
    StreamingMoments,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.obs.manifest import (
    build_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.obs.metrics import default_registry
from repro.obs.progress import ProgressBus, ProgressCallback, TaskProgress
from repro.obs.watch import Watchdog
from repro.rng import derive_stream
from repro.sim.batch import BatchedWorld
from repro.soc.perf import iterations_from_ops

#: Checkpoint file format marker.
CHECKPOINT_FORMAT = "repro-crowd-checkpoint-v1"

#: Default fixed cohort width (units advanced per lock-step batch).
DEFAULT_COHORT_SIZE = 256

#: Default bounded-reservoir width for streaming ranking quality.
DEFAULT_RESERVOIR_CAPACITY = 1024

#: Cohort tasks kept in flight beyond the worker count (prefetch depth).
_PREFETCH = 2


# ---------------------------------------------------------------------------
# Cohort execution (runs inside the worker process)


@dataclass(frozen=True)
class CohortOutcome:
    """One user's result within a cohort: a submission or a drop."""

    user_index: int
    serial: str
    bin_index: int
    submission: Optional[Submission] = None
    drop_reason: Optional[str] = None


@dataclass(frozen=True)
class CohortResult:
    """Everything one executed cohort reports back, in population order."""

    index: int
    model: str
    outcomes: Tuple[CohortOutcome, ...]

    @property
    def serial(self) -> str:  # TaskProgress display surface
        return f"cohort-{self.index:04d}"

    @property
    def workload(self) -> str:  # TaskProgress display surface
        return "CROWD"

    @property
    def submissions(self) -> List[Submission]:
        return [o.submission for o in self.outcomes if o.submission is not None]


def execute_cohort(
    config: CrowdConfig, cohort_index: int, users: Sequence[UserSample]
) -> CohortResult:
    """Run one cohort's probe + field ACCUBENCH pass through a BatchedWorld.

    Mirrors the serial per-user pipeline in
    :func:`repro.core.crowd.run_crowd_study` — reboot-and-soak, battery,
    heat/observe probe, then one protocol iteration — with every per-unit
    random draw taken from the same streams in the same order.  Users
    whose probe fit fails become drops (their unit still rides along in
    the lock-step world; its results are simply discarded, and its
    streams are independent of every other unit's).
    """
    users = tuple(users)
    if not users:
        raise ConfigurationError("a cohort needs at least one user")
    for prev, cur in zip(users, users[1:]):
        if cur.index != prev.index + 1:
            raise ConfigurationError("cohort users must be contiguous")
    registry = default_registry()
    bench = config.protocol
    devices = crowd_fleet(config, start=users[0].index, count=len(users))
    for device, user in zip(devices, users):
        prepare_field_device(device, user)
    rooms = np.array([user.ambient_c for user in users])

    with registry.span(
        "crowd.cohort",
        model=crowd_model_label(config),
        index=cohort_index,
        units=len(users),
    ):
        world = BatchedWorld(
            devices,
            room_temp_c=rooms,
            dt=bench.dt,
            trace_decimation=bench.trace_decimation,
        )

        # Cooldown probe, batched: heat awake (per-step, RNG replayed),
        # then observe asleep — each 5 s poll window is one exact macro
        # propagation followed by one sensor draw per unit, exactly the
        # draws the serial cooldown_probe performs.
        world.acquire_wakelock()
        world.start_load()
        world.run_for(config.probe_heat_s)
        world.stop_load()
        world.release_wakelock()
        times: List[float] = []
        readings: List[np.ndarray] = []
        elapsed = 0.0
        while elapsed < config.probe_observe_s:
            world.run_asleep(DEFAULT_PROBE_POLL_S)
            elapsed += DEFAULT_PROBE_POLL_S
            times.append(elapsed)
            readings.append(world.read_sensors())
        temps = np.stack(readings, axis=0)

        estimates: List[Any] = []
        for column in range(len(users)):
            try:
                estimates.append(
                    estimate_ambient(
                        times,
                        temps[:, column],
                        skip_fraction=DEFAULT_PROBE_SKIP_FRACTION,
                    )
                )
            except AnalysisError as error:
                estimates.append(probe_drop_reason(error))

        cooldown_s, energy_j, completed = run_batch_iteration(
            world, bench, unconstrained(), registry
        )
        world.finalize()

    outcomes = []
    for i, (user, device) in enumerate(zip(users, devices)):
        bin_index = device.soc.clusters[0].bin_index
        if isinstance(estimates[i], str):
            outcomes.append(
                CohortOutcome(
                    user_index=user.index,
                    serial=user.serial,
                    bin_index=bin_index,
                    drop_reason=estimates[i],
                )
            )
            continue
        outcomes.append(
            CohortOutcome(
                user_index=user.index,
                serial=user.serial,
                bin_index=bin_index,
                submission=Submission(
                    serial=user.serial,
                    score=iterations_from_ops(float(completed[i])),
                    energy_j=float(energy_j[i]),
                    ambient_estimate=estimates[i],
                    true_ambient_c=user.ambient_c,
                    true_leak_factor=device.profile.leak_factor,
                ),
            )
        )
    return CohortResult(
        index=cohort_index,
        model=crowd_model_label(config),
        outcomes=tuple(outcomes),
    )


# ---------------------------------------------------------------------------
# Streaming estimator bundle


class CrowdEstimators:
    """All online state a streaming crowd campaign accumulates.

    Folding is strictly in population order (the scheduler guarantees
    cohorts fold in index order regardless of worker completion order),
    so the state after user k is a pure function of users 0..k — the
    property checkpoint/resume leans on.
    """

    def __init__(
        self,
        root_seed: int,
        ambient_band_c: Tuple[float, float] = (22.0, 30.0),
        min_r_squared: float = 0.9,
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    ) -> None:
        self.ambient_band_c = (float(ambient_band_c[0]), float(ambient_band_c[1]))
        self.min_r_squared = float(min_r_squared)
        self.users_done = 0
        self.submission_count = 0
        self.filtered_count = 0
        self.dropped: Dict[str, int] = {}
        self.score_moments = StreamingMoments()
        self.energy_moments = StreamingMoments()
        self.ambient_error_moments = StreamingMoments()
        self.score_quantiles = QuantileBank()
        self.ranking_raw = RankingReservoir(
            reservoir_capacity,
            derive_stream(root_seed, "crowd-stream", "reservoir-raw"),
        )
        self.ranking_filtered = RankingReservoir(
            reservoir_capacity,
            derive_stream(root_seed, "crowd-stream", "reservoir-filtered"),
        )
        self.bins = BinRecoveryCounter()

    def fold(self, outcome: CohortOutcome) -> None:
        """Fold one user's outcome in (population order)."""
        self.users_done += 1
        if outcome.submission is None:
            reason = outcome.drop_reason or "probe_failed"
            self.dropped[reason] = self.dropped.get(reason, 0) + 1
            return
        submission = outcome.submission
        self.submission_count += 1
        self.score_moments.add(submission.score)
        self.energy_moments.add(submission.energy_j)
        self.ambient_error_moments.add(
            submission.ambient_estimate.ambient_c - submission.true_ambient_c
        )
        self.score_quantiles.add(submission.score)
        self.ranking_raw.add(-submission.true_leak_factor, submission.score)
        self.bins.add(outcome.bin_index, submission.score)
        if passes_strict_filters(
            submission, self.ambient_band_c, self.min_r_squared
        ):
            self.filtered_count += 1
            self.ranking_filtered.add(
                -submission.true_leak_factor, submission.score
            )

    def state_dict(self) -> Dict[str, Any]:
        return {
            "ambient_band_c": list(self.ambient_band_c),
            "min_r_squared": self.min_r_squared,
            "users_done": self.users_done,
            "submission_count": self.submission_count,
            "filtered_count": self.filtered_count,
            "dropped": dict(self.dropped),
            "score_moments": self.score_moments.state_dict(),
            "energy_moments": self.energy_moments.state_dict(),
            "ambient_error_moments": self.ambient_error_moments.state_dict(),
            "score_quantiles": self.score_quantiles.state_dict(),
            "ranking_raw": self.ranking_raw.state_dict(),
            "ranking_filtered": self.ranking_filtered.state_dict(),
            "bins": self.bins.state_dict(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "CrowdEstimators":
        inst = cls.__new__(cls)
        band = state["ambient_band_c"]
        inst.ambient_band_c = (float(band[0]), float(band[1]))
        inst.min_r_squared = float(state["min_r_squared"])
        inst.users_done = int(state["users_done"])
        inst.submission_count = int(state["submission_count"])
        inst.filtered_count = int(state["filtered_count"])
        inst.dropped = {k: int(v) for k, v in state["dropped"].items()}
        inst.score_moments = StreamingMoments.from_state(state["score_moments"])
        inst.energy_moments = StreamingMoments.from_state(
            state["energy_moments"]
        )
        inst.ambient_error_moments = StreamingMoments.from_state(
            state["ambient_error_moments"]
        )
        inst.score_quantiles = QuantileBank.from_state(state["score_quantiles"])
        inst.ranking_raw = RankingReservoir.from_state(state["ranking_raw"])
        inst.ranking_filtered = RankingReservoir.from_state(
            state["ranking_filtered"]
        )
        inst.bins = BinRecoveryCounter.from_state(state["bins"])
        return inst


# ---------------------------------------------------------------------------
# Campaign result


@dataclass(frozen=True)
class CrowdStreamResult:
    """Summary of a streamed crowd campaign.

    Every field except ``wall_s`` is a deterministic function of the
    configuration — resumed and uninterrupted campaigns agree exactly.
    """

    model: str
    user_count: int
    cohort_size: int
    cohorts_completed: int
    cohorts_total: int
    users_simulated: int
    submission_count: int
    filtered_count: int
    dropped: Dict[str, int]
    score_mean: float
    score_std: float
    score_quantiles: Dict[str, float]
    energy_mean_j: float
    ambient_error_mean_c: float
    ambient_error_std_c: float
    ranking_quality_raw: Optional[float]
    ranking_quality_filtered: Optional[float]
    bin_counts: Dict[int, int]
    bin_ordering_quality: Optional[float]
    resumed_from_cohort: int
    fingerprint: str
    wall_s: float = field(compare=False)

    @property
    def complete(self) -> bool:
        """Whether every planned cohort has folded."""
        return self.cohorts_completed >= self.cohorts_total

    @property
    def users_per_sec(self) -> float:
        """Users simulated *by this invocation* per wall second."""
        fresh = self.users_simulated - self.resumed_from_cohort * self.cohort_size
        return fresh / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic summary (wall-clock excluded), JSON-ready."""
        return {
            "format": "repro-crowd-stream-v1",
            "fingerprint": self.fingerprint,
            "model": self.model,
            "user_count": self.user_count,
            "cohort_size": self.cohort_size,
            "cohorts_completed": self.cohorts_completed,
            "cohorts_total": self.cohorts_total,
            "users_simulated": self.users_simulated,
            "submission_count": self.submission_count,
            "filtered_count": self.filtered_count,
            "dropped": dict(self.dropped),
            "score_mean": self.score_mean,
            "score_std": self.score_std,
            "score_quantiles": dict(self.score_quantiles),
            "energy_mean_j": self.energy_mean_j,
            "ambient_error_mean_c": self.ambient_error_mean_c,
            "ambient_error_std_c": self.ambient_error_std_c,
            "ranking_quality_raw": self.ranking_quality_raw,
            "ranking_quality_filtered": self.ranking_quality_filtered,
            "bin_counts": {str(k): v for k, v in self.bin_counts.items()},
            "bin_ordering_quality": self.bin_ordering_quality,
            "resumed_from_cohort": self.resumed_from_cohort,
        }


# ---------------------------------------------------------------------------
# Checkpointing


def _config_fingerprint(
    config: CrowdConfig,
    cohort_size: int,
    ambient_band_c: Tuple[float, float],
    min_r_squared: float,
    reservoir_capacity: int,
) -> str:
    """Stable hash of everything that shapes the stream's trajectory."""
    config_dict = asdict(config)
    # The execution backend moves results without shaping them (the
    # differential backend pairings gate exactly that), so a checkpoint
    # written on one backend must resume on any other.
    config_dict.pop("backend", None)
    payload = {
        "config": config_dict,
        "cohort_size": cohort_size,
        "ambient_band_c": list(ambient_band_c),
        "min_r_squared": min_r_squared,
        "reservoir_capacity": reservoir_capacity,
    }
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


def write_checkpoint(
    path: str,
    fingerprint: str,
    cohorts_done: int,
    estimators: CrowdEstimators,
    param_rng_state: Dict[str, Any],
    telemetry: Optional[Dict[str, Any]] = None,
) -> None:
    """Atomically persist the campaign cursor (write-then-rename).

    ``telemetry`` is a small non-load-bearing block (users done, rate,
    wall time at write) that :func:`resume_banner` renders when the
    campaign comes back up; resume correctness never reads it.
    """
    document = {
        "format": CHECKPOINT_FORMAT,
        "fingerprint": fingerprint,
        "cohorts_done": cohorts_done,
        "param_rng_state": param_rng_state,
        "estimators": estimators.state_dict(),
    }
    if telemetry is not None:
        document["telemetry"] = dict(telemetry)
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fp:
        json.dump(document, fp)
    os.replace(tmp, path)


def load_checkpoint(path: str, fingerprint: str) -> Dict[str, Any]:
    """Load and validate a checkpoint written by :func:`write_checkpoint`."""
    with open(path) as fp:
        document = json.load(fp)
    if document.get("format") != CHECKPOINT_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {CHECKPOINT_FORMAT} checkpoint"
        )
    if document.get("fingerprint") != fingerprint:
        raise ConfigurationError(
            f"checkpoint {path} was written by a different campaign "
            "configuration; refusing to resume"
        )
    return document


def resume_banner(document: Dict[str, Any]) -> str:
    """The one-line ``resuming at N users, M cohorts, X users/s`` banner.

    A pure function of the checkpoint document, so the banner a resumed
    campaign prints is exactly the state the interrupted one persisted
    (tested by killing a run mid-flight and comparing).  Checkpoints
    written before the telemetry block simply omit the rate.
    """
    cohorts = int(document.get("cohorts_done", 0))
    telemetry = document.get("telemetry") or {}
    users = telemetry.get("users_done")
    if users is None:
        users = document.get("estimators", {}).get("users_done", 0)
    banner = f"resuming at {int(users)} users, {cohorts} cohorts"
    rate = telemetry.get("users_per_sec")
    if rate is not None:
        banner += f", {float(rate):.2f} users/s"
    return banner


# ---------------------------------------------------------------------------
# The campaign driver


def run_streaming_crowd_study(
    config: Optional[CrowdConfig] = None,
    cohort_size: int = DEFAULT_COHORT_SIZE,
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 1,
    ambient_band_c: Tuple[float, float] = (22.0, 30.0),
    min_r_squared: float = 0.9,
    reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    stop_after_cohorts: Optional[int] = None,
    on_submission: Optional[Callable[[Submission], None]] = None,
    progress: Optional[ProgressCallback] = None,
    telemetry: Optional[ProgressBus] = None,
    watchdog: Optional[Watchdog] = None,
    manifest_path: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    backend: Optional[str] = None,
) -> CrowdStreamResult:
    """Run (or resume) the §VI crowd campaign as a cohort stream.

    Parameters
    ----------
    config:
        The campaign; its protocol must use the exact ``expm`` solver
        with sleep fast-forward (the batched engine's requirements).
    cohort_size:
        Users advanced per lock-step batch.
    jobs:
        Worker processes; the execution backend prefetches cohorts a
        bounded window ahead, and completions always *fold* in population
        order, so results are identical for any worker count.
    backend:
        Execution backend name (see :mod:`repro.core.backends`);
        ``None`` defers to ``config.backend``.  Checkpoints are
        backend-agnostic — the backend is excluded from the campaign
        fingerprint — and results are bit-identical on every backend.
    checkpoint_path:
        When given: resume from it if it exists, write it every
        ``checkpoint_every`` folded cohorts.
    stop_after_cohorts:
        Fold at most this many (new) cohorts, then return a partial
        result — the programmatic form of an interruption, used by the
        resume tests and by incremental campaigns.
    on_submission:
        Observer for every accepted submission, in population order
        (submissions are otherwise not retained).
    progress:
        Per-cohort :class:`~repro.obs.progress.TaskProgress` callback.
    telemetry:
        A :class:`~repro.obs.progress.ProgressBus` fed at every fold
        boundary: the per-cohort event plus a campaign cursor
        (``users_done``, ``users_per_sec``, ``dropped_total``,
        ``checkpoint_cohort``...).  This is what ``--serve`` exposes at
        ``/status``; it never touches the simulation.
    watchdog:
        Rules evaluated against each bus snapshot; warnings land on the
        bus, in ``watchdog.warnings`` (counter) and through ``log``.  A
        local bus is created when ``telemetry`` is not supplied.
    manifest_path:
        Where to write the final ``repro-manifest-v1`` document.  When a
        ``checkpoint_path`` is given, a sibling manifest
        (``<checkpoint>.manifest.json``) is also refreshed at every
        checkpoint whether or not this is set.
    log:
        Sink for the resume banner and watchdog warnings (one string per
        call); defaults to silent.
    """
    config = config if config is not None else CrowdConfig()
    if config.protocol.thermal_solver != "expm":
        raise ConfigurationError(
            "streaming crowd campaigns require protocol.thermal_solver='expm' "
            "(the batched engine's exact propagator); the serial "
            "run_crowd_study has no such requirement"
        )
    if not config.protocol.sleep_fast_forward:
        raise ConfigurationError(
            "streaming crowd campaigns require sleep_fast_forward=True"
        )
    if cohort_size < 1:
        raise ConfigurationError("cohort_size must be at least 1")
    if checkpoint_every < 1:
        raise ConfigurationError("checkpoint_every must be at least 1")
    if jobs < 1:
        raise ConfigurationError("jobs must be at least 1")
    backend_name = validate_backend(
        backend if backend is not None else getattr(config, "backend", "auto")
    )

    fingerprint = _config_fingerprint(
        config, cohort_size, ambient_band_c, min_r_squared, reservoir_capacity
    )
    cohorts_total = ceil(config.user_count / cohort_size)
    rng = crowd_param_stream(config)
    bus = telemetry
    if bus is None and watchdog is not None:
        bus = ProgressBus()
    start_cohort = 0
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        document = load_checkpoint(checkpoint_path, fingerprint)
        estimators = CrowdEstimators.from_state(document["estimators"])
        rng.bit_generator.state = document["param_rng_state"]
        start_cohort = int(document["cohorts_done"])
        banner = resume_banner(document)
        if log is not None:
            log(banner)
        if bus is not None:
            bus.publish(resumed_from_cohort=start_cohort, resume_banner=banner)
    else:
        estimators = CrowdEstimators(
            config.root_seed,
            ambient_band_c=ambient_band_c,
            min_r_squared=min_r_squared,
            reservoir_capacity=reservoir_capacity,
        )

    end_cohort = cohorts_total
    if stop_after_cohorts is not None:
        if stop_after_cohorts < 1:
            raise ConfigurationError("stop_after_cohorts must be at least 1")
        end_cohort = min(cohorts_total, start_cohort + stop_after_cohorts)

    registry = default_registry()
    started_wall = time.perf_counter()
    last_checkpoint: Optional[int] = start_cohort if start_cohort else None
    # Parameter-stream snapshots taken right after each cohort's draws;
    # the checkpoint needs the cursor of the last *folded* cohort even
    # while the planner has prefetched further ahead.
    rng_after: Dict[int, Dict[str, Any]] = {}

    def telemetry_block(wall: float, cohorts_done: int) -> Dict[str, Any]:
        fresh_users = estimators.users_done - start_cohort * cohort_size
        return {
            "users_done": estimators.users_done,
            "cohorts_done": cohorts_done,
            "dropped_total": sum(estimators.dropped.values()),
            "users_per_sec": round(fresh_users / wall, 2) if wall > 0 else 0.0,
            "wall_s": round(wall, 3),
        }

    def write_run_manifest(path: str, kind: str, **extra: Any) -> None:
        write_manifest(
            build_manifest(
                kind,
                fingerprint,
                config.root_seed,
                registry=registry,
                status=bus.status() if bus is not None else None,
                extra={"checkpoint_path": checkpoint_path, **extra},
            ),
            path,
        )

    def make_task(index: int) -> CrowdCohortTask:
        start = index * cohort_size
        width = min(cohort_size, config.user_count - start)
        users = plan_users(config, rng, start, width)
        rng_after[index] = rng.bit_generator.state
        return CrowdCohortTask(
            cohort_index=index, config=config, users=tuple(users)
        )

    def fold(index: int, payload) -> None:
        nonlocal last_checkpoint
        result: CohortResult = payload.results[0]
        for outcome in result.outcomes:
            estimators.fold(outcome)
            if outcome.submission is None:
                registry.counter(
                    f"crowd.dropped.{outcome.drop_reason}"
                ).inc()
            elif on_submission is not None:
                on_submission(outcome.submission)
        registry.counter("crowd.users").add(len(result.outcomes))
        registry.counter("crowd.submissions").add(len(result.submissions))
        registry.counter("crowd.cohorts_completed").inc()
        if payload.metrics is not None:
            registry.merge_snapshot(payload.metrics)
        wall = time.perf_counter() - started_wall
        if wall > 0:
            fresh_users = estimators.users_done - start_cohort * cohort_size
            registry.gauge("crowd.users_per_sec").set(fresh_users / wall)
        state = rng_after.pop(index)
        cursor = telemetry_block(wall, index + 1)
        if checkpoint_path is not None and (
            (index + 1 - start_cohort) % checkpoint_every == 0
            or index + 1 == end_cohort
        ):
            write_checkpoint(
                checkpoint_path,
                fingerprint,
                index + 1,
                estimators,
                state,
                telemetry=cursor,
            )
            last_checkpoint = index + 1
            write_run_manifest(
                str(manifest_path_for(checkpoint_path)),
                "crowd-stream-checkpoint",
                cohorts_done=index + 1,
            )
        event = TaskProgress(
            index=index,
            completed=index + 1 - start_cohort,
            total=end_cohort - start_cohort,
            model=result.model,
            serial=result.serial,
            workload=result.workload,
            wall_s=payload.wall_s,
            steps_per_sec=(
                round(len(result.outcomes) / payload.wall_s, 1)
                if payload.wall_s > 0
                else None
            ),
        )
        if progress is not None:
            progress(event)
        if bus is not None:
            bus(event)
            bus.publish(
                users_total=config.user_count,
                cohorts_total=cohorts_total,
                checkpoint_cohort=last_checkpoint,
                **cursor,
            )
            if watchdog is not None:
                for warning in watchdog.observe(bus.status()):
                    bus.warn(warning)
                    registry.counter("watchdog.warnings").inc()
                    if log is not None:
                        log(
                            f"watchdog[{warning['rule']}]: "
                            f"{warning['message']}"
                        )

    collect = registry.enabled
    effective_jobs = max(1, min(jobs, end_cohort - start_cohort))
    engine = resolve_backend(backend_name, effective_jobs)
    with registry.span(
        "crowd.stream",
        model=crowd_model_label(config),
        users=config.user_count,
        cohort_size=cohort_size,
        jobs=jobs,
    ):
        # The backend yields in completion order with a bounded in-flight
        # window; a small reorder buffer (never larger than the window)
        # restores strict population order before folding.  Payloads are
        # dropped the moment they fold, so parent memory tracks the
        # window, not the campaign.
        task_iter = (make_task(i) for i in range(start_cohort, end_cohort))
        pending: Dict[int, Any] = {}
        next_fold = start_cohort
        try:
            for offset_index, payload in engine.execute(
                task_iter,
                effective_jobs,
                collect_metrics=collect,
                window=effective_jobs + _PREFETCH,
            ):
                pending[start_cohort + offset_index] = payload
                while next_fold in pending:
                    fold(next_fold, pending.pop(next_fold))
                    next_fold += 1
        finally:
            engine.close()

    wall_s = time.perf_counter() - started_wall
    result = CrowdStreamResult(
        model=crowd_model_label(config),
        user_count=config.user_count,
        cohort_size=cohort_size,
        cohorts_completed=end_cohort,
        cohorts_total=cohorts_total,
        users_simulated=estimators.users_done,
        submission_count=estimators.submission_count,
        filtered_count=estimators.filtered_count,
        dropped=dict(estimators.dropped),
        score_mean=estimators.score_moments.mean,
        score_std=estimators.score_moments.std,
        score_quantiles=(
            estimators.score_quantiles.estimates()
            if estimators.submission_count > 0
            else {}
        ),
        energy_mean_j=estimators.energy_moments.mean,
        ambient_error_mean_c=estimators.ambient_error_moments.mean,
        ambient_error_std_c=estimators.ambient_error_moments.std,
        ranking_quality_raw=estimators.ranking_raw.correlation(),
        ranking_quality_filtered=estimators.ranking_filtered.correlation(),
        bin_counts=estimators.bins.counts,
        bin_ordering_quality=estimators.bins.ordering_quality(),
        resumed_from_cohort=start_cohort,
        fingerprint=fingerprint,
        wall_s=wall_s,
    )
    if manifest_path is not None:
        write_manifest(
            build_manifest(
                "crowd-stream",
                fingerprint,
                config.root_seed,
                registry=registry,
                status=bus.status() if bus is not None else None,
                result=result.to_dict(),
                extra={"checkpoint_path": checkpoint_path},
            ),
            manifest_path,
        )
    elif checkpoint_path is not None:
        write_run_manifest(
            str(manifest_path_for(checkpoint_path)),
            "crowd-stream",
            cohorts_done=end_cohort,
        )
    return result
