"""Unsupervised bin discovery (paper Section VI, future work).

The paper proposes clustering crowdsourced performance/energy data to
recover CPU bins when manufacturers stop publishing them ("we plan to
create our own bins by clustering the performance data using unstructured
learning algorithms").  This module implements that proposal: a small,
dependency-free k-means (Lloyd's algorithm with k-means++ seeding) over
per-unit feature vectors, plus silhouette-based selection of k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.rng import derive_stream


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one clustering run.

    Attributes
    ----------
    assignments:
        Cluster index per input row.
    centroids:
        Cluster centres in feature space, shape (k, features).
    inertia:
        Sum of squared distances to assigned centroids.
    """

    assignments: Tuple[int, ...]
    centroids: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]


def _normalize_features(data: np.ndarray) -> np.ndarray:
    """Z-score each feature column (constant columns become zeros)."""
    mean = data.mean(axis=0)
    std = data.std(axis=0)
    std = np.where(std == 0.0, 1.0, std)
    return (data - mean) / std


def kmeans(
    features: Sequence[Sequence[float]],
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    normalize: bool = True,
) -> ClusterResult:
    """Lloyd's k-means with k-means++ seeding.

    Deterministic for a given ``seed``.  Raises when ``k`` exceeds the
    number of rows.
    """
    data = np.asarray(features, dtype=float)
    if data.ndim != 2 or data.shape[0] == 0:
        raise AnalysisError("features must be a non-empty 2-D array")
    if not 1 <= k <= data.shape[0]:
        raise AnalysisError(f"k={k} out of range for {data.shape[0]} rows")
    working = _normalize_features(data) if normalize else data
    rng = derive_stream(seed, "kmeans")

    centroids = _kmeanspp_seed(working, k, rng)
    assignments = np.zeros(working.shape[0], dtype=int)
    for _ in range(max_iter):
        distances = np.linalg.norm(
            working[:, None, :] - centroids[None, :, :], axis=2
        )
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments) and _ != 0:
            break
        assignments = new_assignments
        for index in range(k):
            members = working[assignments == index]
            if members.size:
                centroids[index] = members.mean(axis=0)
    inertia = float(
        sum(
            np.linalg.norm(working[i] - centroids[assignments[i]]) ** 2
            for i in range(working.shape[0])
        )
    )
    return ClusterResult(
        assignments=tuple(int(a) for a in assignments),
        centroids=centroids,
        inertia=inertia,
    )


def _kmeanspp_seed(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ initial centroids."""
    count = data.shape[0]
    first = int(rng.integers(0, count))
    centroids = [data[first]]
    for _ in range(1, k):
        distances = np.min(
            [np.linalg.norm(data - c, axis=1) ** 2 for c in centroids], axis=0
        )
        total = distances.sum()
        if total == 0.0:
            # All remaining points coincide with a centroid; duplicate one.
            centroids.append(data[int(rng.integers(0, count))])
            continue
        probabilities = distances / total
        choice = int(rng.choice(count, p=probabilities))
        centroids.append(data[choice])
    return np.array(centroids, dtype=float)


def silhouette_score(features: Sequence[Sequence[float]], result: ClusterResult) -> float:
    """Mean silhouette coefficient of a clustering (−1 … 1, higher better).

    Degenerate cases (k=1, singleton clusters) score 0 for the affected
    points, per the usual convention.
    """
    data = _normalize_features(np.asarray(features, dtype=float))
    labels = np.asarray(result.assignments)
    count = data.shape[0]
    if result.k == 1 or count <= result.k:
        return 0.0
    scores = []
    for i in range(count):
        same = data[(labels == labels[i])]
        if same.shape[0] <= 1:
            scores.append(0.0)
            continue
        a = float(
            np.linalg.norm(same - data[i], axis=1).sum() / (same.shape[0] - 1)
        )
        b = min(
            float(np.linalg.norm(data[labels == other] - data[i], axis=1).mean())
            for other in set(labels.tolist())
            if other != labels[i]
        )
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores))


def choose_k(
    features: Sequence[Sequence[float]],
    k_range: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Tuple[int, ClusterResult]:
    """Pick k by silhouette over a candidate range (default 2..min(8, n−1))."""
    data = np.asarray(features, dtype=float)
    if data.shape[0] < 3:
        raise AnalysisError("need at least 3 units to choose a cluster count")
    candidates = (
        list(k_range) if k_range is not None else list(range(2, min(8, data.shape[0] - 1) + 1))
    )
    best: Optional[Tuple[float, int, ClusterResult]] = None
    for k in candidates:
        result = kmeans(features, k, seed=seed)
        score = silhouette_score(features, result)
        if best is None or score > best[0]:
            best = (score, k, result)
    assert best is not None  # candidates is never empty
    return best[1], best[2]
