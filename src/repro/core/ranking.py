"""Device ranking (paper Section VI, future work).

The paper's endgame is a crowdsourced service that ranks a user's unit
against the population of the same model: "Not only can the devices be
ranked on the absolute scale with respect to one another, but the gathered
information can also be used to understand how the manufacturers are
binning their CPUs."  This module ranks units by a composite
energy-performance score and places a new unit within a reference
population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.results import DeviceResult
from repro.errors import AnalysisError


@dataclass(frozen=True)
class RankedUnit:
    """One unit's position in a ranking.

    Attributes
    ----------
    serial:
        Unit identity.
    score:
        Composite quality score (higher is better silicon).
    rank:
        1-based rank within the ranked population.
    percentile:
        Percentile within the population (100 = best).
    """

    serial: str
    score: float
    rank: int
    percentile: float


def quality_score(
    performance: float,
    energy_j: float,
    performance_weight: float = 0.5,
) -> float:
    """Composite silicon-quality score.

    Geometric blend of performance (more is better) and energy (less is
    better); the weight sets how much performance counts relative to
    energy.  Units: arbitrary, comparable within one model + workload.
    """
    if performance <= 0 or energy_j <= 0:
        raise AnalysisError("performance and energy must be positive")
    if not 0.0 <= performance_weight <= 1.0:
        raise AnalysisError("performance_weight must be within [0, 1]")
    energy_weight = 1.0 - performance_weight
    return (performance**performance_weight) * ((1.0 / energy_j) ** energy_weight)


def rank_units(
    results: Sequence[DeviceResult], performance_weight: float = 0.5
) -> List[RankedUnit]:
    """Rank a population of device results, best first."""
    if not results:
        raise AnalysisError("cannot rank an empty population")
    scored = [
        (r.serial, quality_score(r.performance, r.energy_j, performance_weight))
        for r in results
    ]
    scored.sort(key=lambda item: item[1], reverse=True)
    population = len(scored)
    ranked = []
    for index, (serial, score) in enumerate(scored):
        rank = index + 1
        percentile = 100.0 * (population - rank) / max(1, population - 1)
        ranked.append(
            RankedUnit(serial=serial, score=score, rank=rank, percentile=percentile)
        )
    return ranked


def place_unit(
    unit: DeviceResult,
    population: Sequence[DeviceResult],
    performance_weight: float = 0.5,
) -> RankedUnit:
    """Place one unit within a reference population (the crowdsourced
    "how good is *my* phone?" query)."""
    if not population:
        raise AnalysisError("reference population is empty")
    unit_score = quality_score(unit.performance, unit.energy_j, performance_weight)
    scores = [
        quality_score(r.performance, r.energy_j, performance_weight)
        for r in population
    ]
    better = sum(1 for s in scores if s > unit_score)
    rank = better + 1
    total = len(scores) + 1
    percentile = 100.0 * (total - rank) / max(1, total - 1)
    return RankedUnit(
        serial=unit.serial, score=unit_score, rank=rank, percentile=percentile
    )
