"""Batched fleet execution: one :class:`BatchedWorld` per fleet workload.

The serial campaign path runs each unit's iteration batch through its own
:class:`~repro.sim.engine.World`.  With the exact thermal solver the
whole fleet instead advances in lock-step through
:class:`repro.sim.batch.BatchedWorld` — mixed device models grouped into
per-model cohort blocks, one batched propagation and one vectorized power
evaluation per engine step — while producing the same
:class:`~repro.core.results.IterationResult` fields the protocol builds
(within the ulp-level budget documented by ``repro.check``'s
``BATCH_SPEC``).  Skin throttles, memory-bounded workloads and the
runtime invariant suite all run vectorized inside the batched engine.

Eligibility is decided by :func:`batch_ineligibility_reason`; only what
the batched engine genuinely cannot model (Euler integration, disabled
sleep fast-forward) falls back to the serial per-unit path.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.core.config import AccubenchConfig
from repro.core.experiments import ExperimentSpec
from repro.core.protocol import MIN_COOLDOWN_MARGIN_C
from repro.core.results import DeviceResult, IterationResult
from repro.device.phone import Device
from repro.errors import ConfigurationError
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.thermabox import BatchedThermabox, ThermaboxConfig
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.sim.batch import BatchedWorld
from repro.sim.trace import Trace
from repro.soc.perf import iterations_from_ops

if TYPE_CHECKING:  # circular at runtime, exactly like repro.core.parallel
    from repro.core.runner import CampaignConfig

#: Fleets below this size default to the serial path when batching is on
#: "auto": the fixed per-step numpy overhead only amortizes across units.
MIN_AUTO_BATCH_UNITS = 4


def batch_ineligibility_reason(
    config: "CampaignConfig",
    experiment: ExperimentSpec,
    devices: Sequence[Device],
) -> Optional[str]:
    """Why this fleet cannot run batched, or ``None`` if it can.

    The reasons mirror the assumptions baked into
    :class:`~repro.sim.batch.BatchedWorld`: exact propagation (one
    (Φ, Ψ) pair per model cohort) and sleep fast-forward cooldowns.
    Mixed-model fleets, invariant observers, skin throttles and
    memory-bounded workloads all run batched.
    """
    bench = config.accubench
    if bench.thermal_solver != "expm":
        return "thermal_solver is not 'expm'"
    if not bench.sleep_fast_forward:
        return "sleep_fast_forward is disabled"
    if not devices:
        return "empty fleet"
    if any(not dev.thermal.is_exact for dev in devices):
        return "device thermal network is not exact (expm)"
    return None


def shard_bounds(fleet: Sequence[Device], jobs: int) -> List[int]:
    """Cut points slicing a batched fleet into contiguous shards.

    This is the one place batched task sizing is decided (the runner and
    any future dispatcher call it rather than re-deriving the policy): at
    most ``jobs`` shards so every worker gets one, each at least
    :data:`MIN_AUTO_BATCH_UNITS` units so the batched step's fixed numpy
    cost still amortizes.  On a mixed-model fleet the cuts snap to model
    boundaries — a per-model cohort block split across shards would
    shrink its GEMM batch on both sides.  Units are never reordered:
    ``fleet[bounds[i]:bounds[i+1]]`` slices reassemble in fleet order.
    """
    shard_count = max(1, min(jobs, len(fleet) // MIN_AUTO_BATCH_UNITS))
    bounds = [
        round(i * len(fleet) / shard_count) for i in range(shard_count + 1)
    ]
    changes = [
        i
        for i in range(1, len(fleet))
        if fleet[i].spec.name != fleet[i - 1].spec.name
    ]
    if changes:
        snapped = [0]
        for cut in bounds[1:-1]:
            nearest = min(changes, key=lambda boundary: abs(boundary - cut))
            if nearest > snapped[-1]:
                snapped.append(nearest)
        snapped.append(len(fleet))
        bounds = snapped
    return bounds


def run_batch(
    devices: Sequence[Device],
    experiment: ExperimentSpec,
    config: "CampaignConfig",
    ambient_c: Optional[float] = None,
    iterations: Optional[int] = None,
    supply_voltage: Optional[float] = None,
) -> List[DeviceResult]:
    """Run one fleet's full iteration batch through a :class:`BatchedWorld`.

    Mirrors :meth:`CampaignRunner.run_device` over every unit at once:
    Monsoon per unit, one chamber (columnized) stabilized once, then
    ``iterations`` back-to-back warmup → cooldown → workload passes.
    Returns per-unit :class:`DeviceResult`\\ s in fleet order.
    """
    from repro.core.runner import CampaignRunner

    reason = batch_ineligibility_reason(config, experiment, devices)
    if reason is not None:
        raise ConfigurationError(f"fleet is not batchable: {reason}")
    runner = CampaignRunner(config)
    bench = config.accubench
    count = iterations if iterations is not None else bench.iterations
    if count < 1:
        raise ConfigurationError("iterations must be at least 1")
    units = len(devices)
    for device in devices:
        volts = (
            supply_voltage
            if supply_voltage is not None
            else runner.monsoon_voltage_for(device.spec)
        )
        device.connect_supply(MonsoonPowerMonitor(volts))

    target = ambient_c if ambient_c is not None else config.ambient_c
    if config.use_thermabox:
        chamber = BatchedThermabox(
            ThermaboxConfig(target_c=target), count=units, initial_temp_c=target
        )
        room_temp = config.room_temp_c
    else:
        chamber = None
        room_temp = target

    registry = default_registry()
    # One live propagator per model cohort; dedupe by identity so a shared
    # instance is not double-counted in the cache telemetry.
    propagators = list(
        {
            id(dev.thermal.propagator): dev.thermal.propagator
            for dev in devices
            if dev.thermal.propagator is not None
        }.values()
    )
    hits_before = sum(p.cache_hits for p in propagators)
    misses_before = sum(p.cache_misses for p in propagators)

    results: List[List[IterationResult]] = [[] for _ in range(units)]
    started_wall = time.perf_counter()
    looped_total = 0
    with registry.span(
        "run_batch",
        model="+".join(sorted({dev.spec.name for dev in devices})),
        units=units,
        workload=experiment.name,
        iterations=count,
    ):
        if chamber is not None:
            chamber.wait_until_stable(config.room_temp_c)
        world = BatchedWorld(
            devices,
            room_temp_c=room_temp,
            chamber=chamber,
            dt=bench.dt,
            trace_decimation=bench.trace_decimation,
            check_invariants=bench.check_invariants,
        )
        for iteration in range(count):
            cooldown_s, energy_j, completed = run_batch_iteration(
                world, bench, experiment, registry
            )
            looped_total += int(world.looped_steps.sum())
            if registry.enabled:
                # Iteration-boundary cursor for the live /status endpoint:
                # a long multi-iteration shard shows movement between
                # shard completions without the hot loop being touched.
                registry.gauge("batch.iterations_done").set(iteration + 1)
                elapsed = time.perf_counter() - started_wall
                if elapsed > 0:
                    registry.gauge("batch.steps_per_sec").set(
                        looped_total / elapsed
                    )

            for i, device in enumerate(devices):
                trace = world.traces[i]
                results[i].append(
                    IterationResult(
                        model=device.spec.name,
                        serial=device.serial,
                        workload=experiment.name,
                        iterations_completed=iterations_from_ops(
                            float(completed[i])
                        ),
                        energy_j=float(energy_j[i]),
                        mean_power_w=float(energy_j[i]) / bench.workload_s,
                        mean_freq_mhz=float(
                            np.mean(trace.phase_column("workload", "freq"))
                        ),
                        max_cpu_temp_c=trace.max("cpu_temp"),
                        cooldown_s=float(cooldown_s[i]),
                        time_throttled_s=_throttled_time(trace),
                        trace=trace if bench.keep_traces else None,
                    )
                )
        world.finalize()
    _publish_batch_metrics(
        registry,
        world,
        chamber,
        propagators,
        hits_before,
        misses_before,
        looped_total,
        time.perf_counter() - started_wall,
    )
    return [
        DeviceResult(
            model=device.spec.name,
            serial=device.serial,
            workload=experiment.name,
            iterations=tuple(results[i]),
        )
        for i, device in enumerate(devices)
    ]


def run_batch_iteration(
    world: BatchedWorld,
    bench: "AccubenchConfig",
    experiment: ExperimentSpec,
    registry: MetricsRegistry,
):
    """One warmup → cooldown → workload pass over an existing batched world.

    The batched mirror of :meth:`Accubench.run_iteration`'s phase machine,
    shared by the campaign fleet runner above and the streaming crowd
    engine (:mod:`repro.core.crowd_stream`).  Returns per-unit
    ``(cooldown_s, energy_j, completed_ops)`` arrays; traces for the
    iteration are left on ``world.traces``.
    """
    sim_clock = lambda: float(world.clock_now.max())  # noqa: E731
    world.begin_iteration()
    if experiment.is_unconstrained:
        world.unconstrain_frequency()
    else:
        assert experiment.fixed_freq_mhz is not None  # spec invariant
        world.set_fixed_frequency(experiment.fixed_freq_mhz)

    world.acquire_wakelock()
    world.start_load(bench.utilization, bench.memory_boundedness)
    world.set_phase("warmup")
    with registry.span("phase.warmup", clock=sim_clock):
        world.run_for(bench.warmup_s)

    world.stop_load()
    world.release_wakelock()
    world.set_phase("cooldown")
    targets = np.maximum(
        bench.cooldown_target_c,
        world.ambient_now() + MIN_COOLDOWN_MARGIN_C,
    )
    with registry.span("phase.cooldown", clock=sim_clock):
        cooldown_s = world.run_cooldown(
            targets, bench.cooldown_poll_s, bench.cooldown_timeout_s
        )

    world.acquire_wakelock()
    world.start_load(bench.utilization, bench.memory_boundedness)
    energy_before = world.energy_drawn_j
    ops_before = world.ops_total
    world.set_phase("workload")
    with registry.span("phase.workload", clock=sim_clock):
        world.run_for(bench.workload_s)
    energy_j = world.energy_drawn_j - energy_before
    completed = world.ops_total - ops_before
    world.stop_load()
    world.release_wakelock()
    world.close()
    _publish_iteration_metrics(registry, world)
    return cooldown_s, energy_j, completed


def _throttled_time(trace: Trace) -> float:
    """Per-unit mirror of ``Accubench._throttled_time``."""
    try:
        steps = trace.phase_column("workload", "throttle_steps")
    except Exception:  # no workload phase recorded
        return 0.0
    times = trace.times()
    if times.size < 2 or steps.size == 0:
        return 0.0
    sample_spacing = float(times[1] - times[0])
    return float((steps > 0).sum()) * sample_spacing


def _publish_iteration_metrics(
    registry: MetricsRegistry, world: BatchedWorld
) -> None:
    """One iteration's engine tallies, summed over units.

    The counters land on the same keys ``Accubench._publish_world_metrics``
    uses, so a metrics document reads identically whether the fleet ran
    serially or batched.
    """
    if not registry.enabled:
        return
    registry.counter("engine.steps").add(int(world.looped_steps.sum()))
    registry.counter("engine.fast_forward_steps").add(
        int(world.fast_forward_steps.sum())
    )
    registry.counter("engine.fast_forward_windows").add(
        int(world.fast_forward_windows.sum())
    )
    registry.counter("engine.sim_time_s").add(float(world.clock_now.sum()))
    throttle = sum(log.count("throttle-step") for log in world.event_logs)
    offline = sum(log.count("core-offline") for log in world.event_logs)
    registry.counter("engine.throttle_events").add(throttle)
    registry.counter("engine.core_offline_events").add(offline)
    registry.counter("protocol.iterations").add(world.count)


def _publish_batch_metrics(
    registry: MetricsRegistry,
    world: BatchedWorld,
    chamber: Optional[BatchedThermabox],
    propagators: Sequence,
    hits_before: int,
    misses_before: int,
    looped_total: int,
    wall_s: float,
) -> None:
    """Batch-level telemetry: instrument tallies plus batching gauges."""
    if not registry.enabled:
        return
    hits = sum(p.cache_hits for p in propagators) - hits_before
    misses = sum(p.cache_misses for p in propagators) - misses_before
    registry.counter("propagator.cache_hits").add(hits)
    registry.counter("propagator.cache_misses").add(misses)
    registry.counter("thermabox.heater_duty_s").add(
        float(chamber.heater_duty_seconds.sum()) if chamber is not None else 0.0
    )
    registry.counter("thermabox.cooler_duty_s").add(
        float(chamber.cooler_duty_seconds.sum()) if chamber is not None else 0.0
    )
    registry.counter("thermabox.elapsed_s").add(
        float(chamber.elapsed_s.sum()) if chamber is not None else 0.0
    )
    registry.gauge("batch.size").set(world.count)
    registry.counter("batch.cohort_splits").add(world.cohort_splits)
    if wall_s > 0:
        registry.gauge("batch.steps_per_sec").set(looped_total / wall_s)
