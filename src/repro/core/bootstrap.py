"""Bootstrap confidence intervals for variation metrics.

The paper reports point estimates with RSD error bars and argues its
spreads are *lower bounds* (Section VII).  With ≥5 iterations per unit we
can do a bit better: resample iterations within each unit to put a
confidence interval on the fleet's variation metric itself — useful when
judging whether, say, a 4% spread on five LG G5s is signal or noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.analysis import energy_variation, performance_variation
from repro.core.results import ExperimentResult
from repro.errors import AnalysisError
from repro.rng import derive_stream

#: Default resampling count.
DEFAULT_RESAMPLES = 2000


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap interval around a point estimate.

    Attributes
    ----------
    point:
        The metric on the original data.
    low / high:
        Percentile-bootstrap bounds.
    confidence:
        Nominal coverage, e.g. 0.95.
    resamples:
        Bootstrap iterations used.
    """

    point: float
    low: float
    high: float
    confidence: float
    resamples: int

    def contains(self, value: float) -> bool:
        """Whether a value lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low


def _bootstrap_metric(
    per_unit_samples: Sequence[Sequence[float]],
    metric: Callable[[List[float]], float],
    confidence: float,
    resamples: int,
    seed: int,
) -> ConfidenceInterval:
    if not 0.0 < confidence < 1.0:
        raise AnalysisError("confidence must be within (0, 1)")
    if resamples < 100:
        raise AnalysisError("use at least 100 resamples")
    if len(per_unit_samples) < 2:
        raise AnalysisError("need at least two units")
    if any(len(samples) == 0 for samples in per_unit_samples):
        raise AnalysisError("every unit needs at least one sample")

    arrays = [np.asarray(samples, dtype=float) for samples in per_unit_samples]
    point = metric([float(a.mean()) for a in arrays])
    rng = derive_stream(seed, "bootstrap")
    outcomes = np.empty(resamples)
    for i in range(resamples):
        means = [
            float(a[rng.integers(0, len(a), size=len(a))].mean()) for a in arrays
        ]
        outcomes[i] = metric(means)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=point,
        low=float(np.quantile(outcomes, alpha)),
        high=float(np.quantile(outcomes, 1.0 - alpha)),
        confidence=confidence,
        resamples=resamples,
    )


def performance_variation_ci(
    result: ExperimentResult,
    confidence: float = 0.95,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI on the fleet's performance variation."""
    samples = [
        [it.iterations_completed for it in device.iterations]
        for device in result.devices
    ]
    return _bootstrap_metric(
        samples, performance_variation, confidence, resamples, seed
    )


def energy_variation_ci(
    result: ExperimentResult,
    confidence: float = 0.95,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI on the fleet's energy variation."""
    samples = [
        [it.energy_j for it in device.iterations] for device in result.devices
    ]
    return _bootstrap_metric(samples, energy_variation, confidence, resamples, seed)


def variation_is_significant(
    interval: ConfidenceInterval, noise_floor: float = 0.01
) -> bool:
    """Is the spread distinguishable from measurement noise?

    True when the whole interval sits above ``noise_floor`` — the
    paper-style claim "we are confident that these are real variations"
    (Section IV-A3) made quantitative.
    """
    return interval.low > noise_floor
