"""Estimating ambient temperature from the cooldown phase (paper §VI).

The paper's crowdsourcing plan cannot control ambient temperature in the
wild, but notes that "preliminary results on using the cooldown phase as an
estimate of ambient temperature are encouraging."  A sleeping phone's
temperature decays exponentially toward the room:

    T(t) = T_ambient + (T_0 − T_ambient) · exp(−t/τ)

Uniformly-sampled readings of such a decay satisfy the AR(1) recurrence
``T[i+1] = a + b·T[i]`` with ``T_ambient = a / (1 − b)`` and
``τ = −Δt / ln(b)`` — a closed-form fit needing only the 5-second sensor
polls the cooldown phase already performs.  The early samples mix in the
die's fast transient (it equalizes with the package within seconds), so the
fit skips a configurable head fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.sim.trace import Trace

#: Fraction of cooldown samples discarded before fitting (die→package
#: fast transient).
DEFAULT_SKIP_FRACTION = 0.25

#: Fewest post-skip samples a fit will accept.
MIN_SAMPLES = 8

#: The field probe's sensor polling period (the 5-second polls the
#: cooldown phase already performs); shared with the batched probe in
#: :mod:`repro.core.crowd_stream`.
DEFAULT_PROBE_POLL_S = 5.0

#: The field probe's head-skip fraction — more aggressive than the trace
#: fit's :data:`DEFAULT_SKIP_FRACTION` because the probe's observe window
#: starts right at wakelock release, deep in the die transient.
DEFAULT_PROBE_SKIP_FRACTION = 0.4


@dataclass(frozen=True)
class AmbientEstimate:
    """Result of one cooldown-decay fit.

    Attributes
    ----------
    ambient_c:
        Estimated room temperature, °C.
    time_constant_s:
        Fitted cooling time constant, seconds.
    r_squared:
        Goodness of the AR(1) regression (1.0 = perfect decay).
    sample_count:
        Samples used by the fit (after head-skipping).
    """

    ambient_c: float
    time_constant_s: float
    r_squared: float
    sample_count: int

    def is_confident(self, min_r_squared: float = 0.95) -> bool:
        """Whether the decay was clean enough to trust (crowd filtering)."""
        return self.r_squared >= min_r_squared and self.time_constant_s > 0


def estimate_ambient(
    times_s: Sequence[float],
    temps_c: Sequence[float],
    skip_fraction: float = DEFAULT_SKIP_FRACTION,
) -> AmbientEstimate:
    """Fit an exponential-decay asymptote to uniform cooldown samples."""
    if not 0.0 <= skip_fraction < 1.0:
        raise AnalysisError("skip_fraction must be within [0, 1)")
    times = np.asarray(times_s, dtype=float)
    temps = np.asarray(temps_c, dtype=float)
    if times.shape != temps.shape or times.ndim != 1:
        raise AnalysisError("times and temps must be 1-D and equal length")
    start = int(len(times) * skip_fraction)
    times, temps = times[start:], temps[start:]
    if len(times) < MIN_SAMPLES:
        raise AnalysisError(
            f"need at least {MIN_SAMPLES} samples after skipping; "
            f"got {len(times)}"
        )
    spacing = np.diff(times)
    if spacing.min() <= 0:
        raise AnalysisError("times must be strictly increasing")
    if spacing.max() - spacing.min() > 1e-6 * max(spacing.max(), 1.0):
        raise AnalysisError("the AR(1) fit requires uniform sampling")
    dt = float(spacing[0])
    if float(np.ptp(temps)) < 0.2:
        raise AnalysisError(
            "temperature barely moves; nothing to fit (already at ambient?)"
        )

    current, following = temps[:-1], temps[1:]
    # Least-squares fit of following = a + b * current.
    b, a = np.polyfit(current, following, 1)
    if not 0.0 < b < 1.0:
        raise AnalysisError(
            "samples do not describe a decay (already at ambient, or heating)"
        )
    predicted = a + b * current
    residual = following - predicted
    total = following - following.mean()
    denom = float((total**2).sum())
    r_squared = 1.0 - float((residual**2).sum()) / denom if denom > 0 else 1.0

    return AmbientEstimate(
        ambient_c=float(a / (1.0 - b)),
        time_constant_s=float(-dt / np.log(b)),
        r_squared=max(0.0, r_squared),
        sample_count=len(times),
    )


def cooldown_probe(
    device,
    room,
    heat_s: float = 120.0,
    observe_s: float = 900.0,
    poll_s: float = DEFAULT_PROBE_POLL_S,
    dt: float = 0.2,
    skip_fraction: float = DEFAULT_PROBE_SKIP_FRACTION,
) -> AmbientEstimate:
    """Run a dedicated heat-then-observe cycle and estimate the room.

    This is what a field deployment would do (paper §VI): briefly warm the
    phone, release the wakelock, and watch the sensor relax toward the
    room for long enough that the chassis — not just the die — dominates
    the decay.  The ACCUBENCH cooldown phase stops at its target too early
    to reveal the asymptote; this probe keeps watching.

    ``device`` must be idle; ``room`` is an ambient profile.  Returns the
    fitted estimate; the true room temperature is *not* consulted.
    """
    from repro.sim.engine import World  # local import: avoids module cycle

    world = World(device, room=room, dt=dt, trace_decimation=1)
    device.acquire_wakelock()
    device.start_load()
    world.run_for(heat_s)
    device.stop_load()
    device.release_wakelock()

    times = []
    temps = []
    elapsed = 0.0
    while elapsed < observe_s:
        world.run_for(poll_s)
        elapsed += poll_s
        times.append(elapsed)
        temps.append(device.read_cpu_temp())
    return estimate_ambient(times, temps, skip_fraction=skip_fraction)


def estimate_from_trace(
    trace: Trace,
    occurrence: int = 0,
    skip_fraction: float = DEFAULT_SKIP_FRACTION,
) -> AmbientEstimate:
    """Fit the estimator to a protocol trace's cooldown phase.

    Uses the engine-grid ``cpu_temp`` channel (uniformly sampled), exactly
    the data a field deployment's 5-second polls would carry.
    """
    span = trace.phase("cooldown", occurrence)
    times = trace.times()
    mask = (times >= span.start_s) & (times < span.end_s)
    return estimate_ambient(
        times[mask], trace.column("cpu_temp")[mask], skip_fraction=skip_fraction
    )
