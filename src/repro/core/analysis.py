"""Statistical primitives of the paper's analysis.

The paper reports normalized means, errors as Relative Standard Deviation
("the absolute value of the coefficient of variation", Section IV), and
headline spreads of the form "bin-0 is 14% faster than bin-3" (relative to
the worse unit) and "consumes 19% less energy than bin-3" (relative to the
larger energy).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import AnalysisError


def relative_standard_deviation(values: Sequence[float]) -> float:
    """RSD: sample standard deviation over |mean|.

    A single observation has zero spread by definition here (the paper's
    error bars need ≥2 iterations to be meaningful, but a degenerate call
    should not crash an analysis pipeline).
    """
    data = list(values)
    if not data:
        raise AnalysisError("RSD of an empty sequence is undefined")
    if len(data) == 1:
        return 0.0
    mean = sum(data) / len(data)
    if mean == 0.0:
        raise AnalysisError("RSD is undefined for zero mean")
    variance = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
    return abs(math.sqrt(variance) / mean)


def normalize(values: Sequence[float], reference: str = "max") -> List[float]:
    """Normalize values for the paper's figure style.

    ``reference`` picks the denominator: ``"max"`` (best bar = 1.0),
    ``"min"``, or ``"first"``.
    """
    data = list(values)
    if not data:
        raise AnalysisError("cannot normalize an empty sequence")
    if reference == "max":
        denom = max(data)
    elif reference == "min":
        denom = min(data)
    elif reference == "first":
        denom = data[0]
    else:
        raise AnalysisError(f"unknown reference {reference!r}")
    if denom == 0.0:
        raise AnalysisError("cannot normalize by zero")
    return [value / denom for value in data]


def performance_variation(performances: Sequence[float]) -> float:
    """The paper's performance spread: how much faster the best unit is
    than the worst — (max − min) / min."""
    data = list(performances)
    if len(data) < 2:
        raise AnalysisError("variation needs at least two units")
    worst = min(data)
    if worst <= 0:
        raise AnalysisError("performance must be positive")
    return (max(data) - worst) / worst


def energy_variation(energies: Sequence[float]) -> float:
    """The paper's energy spread: how much less the best unit consumes
    than the worst — (max − min) / max."""
    data = list(energies)
    if len(data) < 2:
        raise AnalysisError("variation needs at least two units")
    worst = max(data)
    if worst <= 0:
        raise AnalysisError("energy must be positive")
    return (worst - min(data)) / worst
