"""Pluggable execution backends with zero-copy shared-memory transport.

:func:`repro.core.parallel.run_tasks` used to hard-wire a
``ProcessPoolExecutor``: every task and every result — including each
:class:`~repro.sim.trace.Trace`'s numpy buffer — round-tripped through
pickle, and the parent paid an unpickle copy per trace.  This module
factors the execution substrate into an :class:`ExecutionBackend`
interface with three implementations:

:class:`InProcessBackend`
    Runs tasks sequentially in the caller's process — byte-for-byte the
    historical serial campaign loop.
:class:`ProcessPoolBackend`
    The historical pool path: a ``ProcessPoolExecutor`` per dispatch,
    results pickled whole.
:class:`SharedMemoryBackend`
    A persistent worker pool fed by a work queue.  Workers pack every
    result trace's sample rows into one ``multiprocessing.shared_memory``
    segment per task (or a memmapped spill file once the parent's live
    attach bytes exceed a configurable budget) and ship only a lightweight
    pickled header — the stripped results, metric snapshot and per-trace
    ``(offsets, phases)``.  The parent attaches numpy views instead of
    unpickling copies.

Every backend consumes tasks from an *iterable* with a bounded in-flight
window — ``10^4+`` cohort tasks are never enqueued (or pickled) upfront —
and yields ``(submission_index, TaskPayload)`` in completion order.  The
contract, enforced unconditionally by ``repro.check.differential``'s
backend pairings, is bit-identical results (trace bytes included) for any
backend and any jobs count: a backend moves results, it never shapes them.

Segment lifetime (shared-memory backend)
----------------------------------------
The worker creates a segment, detaches it from its own resource tracker
(the parent owns cleanup), copies the live trace rows in, closes its
mapping and sends the segment name.  The parent attaches, **unlinks
immediately** — so a crash never leaks a named segment past the attach —
and parks the mapping in an owner object each attached trace holds; the
memory is released when the last trace referencing it is collected (or
grows its buffer onto the heap).  Live attached bytes are tracked against
``rss_budget_mb``: past the budget, new tasks are flagged to spill their
trace block to a temp file instead, which the parent memmaps
copy-on-write and deletes right after mapping.

Transport telemetry (published when the default registry is enabled):
``transport.pickle_bytes`` (result-side pickled bytes — comparable
across backends), ``transport.task_pickle_bytes`` (submission blobs),
``transport.shm_bytes`` (trace bytes moved by segment or spill file),
``transport.traces_attached`` / ``transport.traces_copied`` (zero-copy
attaches vs unpickled copies), and the ``backend.queue_depth`` gauge
(in-flight window occupancy at each scheduling step).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import tempfile
import time
import traceback
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import replace
from multiprocessing import resource_tracker, shared_memory
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.parallel import Task, TaskPayload, execute_task_payload
from repro.core.results import DeviceResult
from repro.errors import BackendError, ConfigurationError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.sim.trace import Trace

#: Every name ``CampaignConfig.backend`` / ``CrowdConfig.backend`` /
#: ``--backend`` accepts.  ``"auto"`` resolves at dispatch time:
#: in-process at one effective job, shared-memory otherwise.
BACKEND_NAMES: Tuple[str, ...] = (
    "auto",
    "in-process",
    "process-pool",
    "shared-memory",
)

#: Tasks kept in flight beyond the worker count (prefetch depth) when the
#: caller does not size the window explicitly.
PREFETCH = 2

#: Environment override for the shared-memory backend's attach budget, in
#: megabytes; past it, trace blocks spill to memmapped temp files.
SPILL_BUDGET_ENV = "REPRO_SHM_BUDGET_MB"

#: How long a worker sits on an empty work queue before re-checking that
#: its parent is still alive (a SIGKILLed parent must not leave orphans).
_WORKER_POLL_S = 5.0

#: Bytes per float64 trace cell.
_ITEM_BYTES = 8


def validate_backend(name: str) -> str:
    """Return ``name`` if it is a known backend, else raise."""
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown backend {name!r}; choose one of: "
            + ", ".join(BACKEND_NAMES)
        )
    return name


def resolve_backend(name: str, jobs: int) -> "ExecutionBackend":
    """Build the backend a name resolves to at an effective worker count.

    ``"auto"`` picks :class:`InProcessBackend` when everything would run
    under a single job anyway, and the zero-copy
    :class:`SharedMemoryBackend` (the parallel default) otherwise.  An
    explicit name is always honored as given — ``"shared-memory"`` at
    ``jobs=1`` still runs a one-worker pool with full transport, which is
    exactly what the backend parity pairings exercise.
    """
    validate_backend(name)
    if name == "auto":
        name = "in-process" if jobs <= 1 else "shared-memory"
    if name == "in-process":
        return InProcessBackend()
    if name == "process-pool":
        return ProcessPoolBackend()
    budget = os.environ.get(SPILL_BUDGET_ENV)
    return SharedMemoryBackend(
        rss_budget_mb=float(budget) if budget else None
    )


def default_window(jobs: int) -> int:
    """In-flight task window for a worker count: jobs plus prefetch."""
    return jobs + PREFETCH


class ExecutionBackend(ABC):
    """Where tasks run and how their results travel back.

    ``execute`` consumes tasks lazily (pulling at most ``window`` ahead of
    completions) and yields ``(submission_index, TaskPayload)`` in
    completion order; callers needing submission order reassemble by
    index.  Backends are reusable across ``execute`` calls — the
    shared-memory pool persists between dispatches — and must be
    ``close``\\ d when the campaign is done (``with backend:`` works too).
    """

    name: str = "?"

    @abstractmethod
    def execute(
        self,
        tasks: Iterable[Task],
        jobs: int,
        collect_metrics: bool = False,
        window: Optional[int] = None,
    ) -> Iterator[Tuple[int, TaskPayload]]:
        """Run tasks; yield ``(submission_index, payload)`` as they land."""

    def close(self) -> None:
        """Release worker processes and transport resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InProcessBackend(ExecutionBackend):
    """Sequential execution in the caller's process.

    Tasks run on the caller's own objects (a :class:`DeviceTask`'s device
    is mutated, exactly like the historical serial loop) and there is no
    transport at all, so ``jobs`` is ignored.
    """

    name = "in-process"

    def execute(
        self,
        tasks: Iterable[Task],
        jobs: int,
        collect_metrics: bool = False,
        window: Optional[int] = None,
    ) -> Iterator[Tuple[int, TaskPayload]]:
        if jobs < 1:
            raise ConfigurationError("jobs must be at least 1")
        for index, task in enumerate(tasks):
            yield index, execute_task_payload(
                task, collect_metrics=collect_metrics
            )


class ProcessPoolBackend(ExecutionBackend):
    """The historical ``ProcessPoolExecutor`` path, now windowed.

    Results are pickled whole — trace buffers included — which is exactly
    what the shared-memory backend's A/B benchmark measures against.  When
    the parent registry is enabled, result transport is metered by
    re-serializing each payload (``transport.pickle_bytes``), so byte
    counters cost a copy; benchmarks time with metrics off and meter in a
    separate pass.
    """

    name = "process-pool"

    def execute(
        self,
        tasks: Iterable[Task],
        jobs: int,
        collect_metrics: bool = False,
        window: Optional[int] = None,
    ) -> Iterator[Tuple[int, TaskPayload]]:
        if jobs < 1:
            raise ConfigurationError("jobs must be at least 1")
        window = default_window(jobs) if window is None else max(1, window)
        registry = default_registry()
        iterator = enumerate(tasks)
        exhausted = False
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending: Dict[Any, int] = {}
            try:
                while True:
                    while not exhausted and len(pending) < window:
                        try:
                            index, task = next(iterator)
                        except StopIteration:
                            exhausted = True
                            break
                        future = pool.submit(
                            execute_task_payload, task, collect_metrics
                        )
                        pending[future] = index
                    if registry.enabled:
                        registry.gauge("backend.queue_depth").set(
                            len(pending)
                        )
                    if not pending:
                        break
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        payload = future.result()
                        if registry.enabled:
                            _meter_pickled_payload(registry, payload)
                        yield index, payload
            finally:
                for future in pending:
                    future.cancel()


def _meter_pickled_payload(
    registry: MetricsRegistry, payload: TaskPayload
) -> None:
    """Count one pickle-transported payload's bytes and trace copies."""
    try:
        size = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable payloads never reached the parent anyway
        return
    registry.counter("transport.pickle_bytes").add(float(size))
    copied = sum(
        1
        for result in payload.results
        if isinstance(result, DeviceResult)
        for iteration in result.iterations
        if iteration.trace is not None
    )
    if copied:
        registry.counter("transport.traces_copied").add(float(copied))


# ---------------------------------------------------------------------------
# Shared-memory backend


class _SegmentOwner:
    """Keeps one attached trace block mapped until every view is gone."""

    __slots__ = ("_segment", "__weakref__")

    def __init__(self, segment: Any) -> None:
        self._segment = segment

    def __del__(self) -> None:
        close = getattr(self._segment, "close", None)
        if close is not None:
            try:
                close()
            except Exception:
                # A view can outlive us inside one GC pass; the mapping is
                # reclaimed with the process either way (already unlinked).
                pass


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh segment the *parent* will own: untracked in this process.

    Python 3.13 grew ``track=False``; earlier interpreters only offer the
    private resource-tracker API, so a failure to unregister merely means
    a spurious leaked-segment warning at worker exit, never a leak (the
    parent unlinks on attach).
    """
    try:
        return shared_memory.SharedMemory(
            create=True, size=nbytes, track=False
        )
    except TypeError:
        pass
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    return segment


def _attach_trace(
    channels: Tuple[str, ...],
    samples: np.ndarray,
    phases: Sequence[Any],
    open_phase: Optional[Tuple[str, float]],
    owner: Optional[_SegmentOwner],
) -> Trace:
    """Parent-side rebuild of one transported trace.

    A module-level seam on purpose: it runs in the parent (unlike the
    worker half), so the mutation smoke test can corrupt it with a plain
    monkeypatch and prove the backend parity pairings have teeth.
    """
    return Trace.from_samples(
        channels, samples, phases=phases, open_phase=open_phase, owner=owner
    )


def _iter_traces(
    results: List[Any],
) -> Iterator[Tuple[int, int, Trace]]:
    """Every non-empty trace in a result list as (device, iteration, trace)."""
    for d, result in enumerate(results):
        if not isinstance(result, DeviceResult):
            continue
        for i, iteration in enumerate(result.iterations):
            if iteration.trace is not None and len(iteration.trace) > 0:
                yield d, i, iteration.trace


def _strip_traces(
    results: List[Any], positions: Iterable[Tuple[int, int]]
) -> List[Any]:
    """Results with the traces at ``positions`` replaced by ``None``."""
    by_device: Dict[int, List[int]] = {}
    for d, i in positions:
        by_device.setdefault(d, []).append(i)
    stripped = list(results)
    for d, indices in by_device.items():
        iterations = list(stripped[d].iterations)
        for i in indices:
            iterations[i] = replace(iterations[i], trace=None)
        stripped[d] = replace(stripped[d], iterations=tuple(iterations))
    return stripped


def _detach_traces(
    payload: TaskPayload, spill_path: Optional[str]
) -> Tuple[TaskPayload, Optional[Dict[str, Any]]]:
    """Worker-side pack: move trace rows out of the payload into a block.

    Returns the stripped payload plus a transport block description
    (``None`` when the payload carries no trace samples): segment name or
    spill path, total bytes, and one header per trace —
    ``(device, iteration, channels, rows, byte offset, phases, open
    phase)`` — everything the parent needs to attach views in place.
    """
    traces = list(_iter_traces(payload.results))
    if not traces:
        if spill_path is not None:
            try:
                os.unlink(spill_path)
            except OSError:
                pass
        return payload, None
    nbytes = sum(t.samples().nbytes for _, _, t in traces)
    cells = nbytes // _ITEM_BYTES
    if spill_path is None:
        segment = _create_segment(nbytes)
        target = np.ndarray((cells,), dtype=np.float64, buffer=segment.buf)
    else:
        segment = None
        target = np.memmap(
            spill_path, dtype=np.float64, mode="w+", shape=(cells,)
        )
    headers: List[Tuple[Any, ...]] = []
    offset = 0
    for d, i, trace in traces:
        rows = trace.samples()
        count = rows.size
        target[offset // _ITEM_BYTES : offset // _ITEM_BYTES + count] = (
            rows.reshape(-1)
        )
        headers.append(
            (
                d,
                i,
                trace.channels,
                rows.shape[0],
                offset,
                trace.phases,
                trace.open_phase,
            )
        )
        offset += rows.nbytes
    stripped = _strip_traces(payload.results, [(d, i) for d, i, _ in traces])
    if segment is not None:
        block: Dict[str, Any] = {"kind": "shm", "name": segment.name}
        del target  # release the exported buffer before closing the map
        segment.close()
    else:
        target.flush()
        block = {"kind": "file", "path": spill_path}
        del target
    block.update(nbytes=nbytes, headers=headers)
    return replace(payload, results=stripped), block


def _shm_worker_main(
    task_queue: Any, result_queue: Any, parent_pid: int
) -> None:
    """Worker loop: pull an envelope, run it, pack traces, send a header.

    Exits on the ``None`` sentinel, or when its parent has vanished (a
    SIGKILLed campaign must not leave orphans grinding on — the crowd
    kill/resume test runs exactly that scenario).
    """
    while True:
        try:
            envelope = task_queue.get(timeout=_WORKER_POLL_S)
        except queue.Empty:
            if os.getppid() != parent_pid:
                return
            continue
        if envelope is None:
            return
        index, blob, collect, spill_path = envelope
        try:
            task = pickle.loads(blob)
            payload = execute_task_payload(task, collect_metrics=collect)
            payload, block = _detach_traces(payload, spill_path)
            body = pickle.dumps(
                (payload, block), protocol=pickle.HIGHEST_PROTOCOL
            )
            result_queue.put((index, "ok", body))
        except BaseException as error:  # ship it; the parent re-raises
            try:
                body = pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                body = pickle.dumps(
                    BackendError(f"{type(error).__name__}: {error}")
                )
            result_queue.put(
                (index, "error", (body, traceback.format_exc()))
            )
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                return


class SharedMemoryBackend(ExecutionBackend):
    """Persistent worker pool with zero-copy trace transport.

    Parameters
    ----------
    rss_budget_mb:
        Soft ceiling on parent-attached live trace bytes.  While the
        budget is exceeded, newly submitted tasks are flagged to spill
        their trace block to a memmapped temp file instead of a
        shared-memory segment, bounding resident shared memory for
        disk-scale campaigns.  ``None`` (default) never spills; the
        :data:`SPILL_BUDGET_ENV` environment variable configures it for
        ``"auto"``-resolved backends.
    spill_dir:
        Directory for spill files; the system temp dir by default.
    """

    name = "shared-memory"

    def __init__(
        self,
        rss_budget_mb: Optional[float] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        self._context = multiprocessing.get_context()
        self._workers: List[Any] = []
        self._task_queue: Optional[Any] = None
        self._result_queue: Optional[Any] = None
        self._worker_count = 0
        self._inflight = 0
        self._live_bytes = 0
        self._rss_budget_bytes = (
            None if rss_budget_mb is None else int(rss_budget_mb * 1e6)
        )
        self._spill_dir = spill_dir

    @property
    def live_attached_bytes(self) -> int:
        """Trace bytes currently mapped into the parent via attach."""
        return self._live_bytes

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self, jobs: int) -> None:
        if (
            self._workers
            and self._worker_count == jobs
            and all(worker.is_alive() for worker in self._workers)
        ):
            return
        self.close()
        self._task_queue = self._context.Queue()
        self._result_queue = self._context.Queue()
        self._workers = [
            self._context.Process(
                target=_shm_worker_main,
                args=(self._task_queue, self._result_queue, os.getpid()),
                daemon=True,
            )
            for _ in range(jobs)
        ]
        for worker in self._workers:
            worker.start()
        self._worker_count = jobs

    def close(self) -> None:
        workers, self._workers = self._workers, []
        task_queue, self._task_queue = self._task_queue, None
        result_queue, self._result_queue = self._result_queue, None
        graceful = self._inflight == 0
        self._inflight = 0
        self._worker_count = 0
        if task_queue is None:
            return
        if graceful:
            for _ in workers:
                try:
                    task_queue.put(None)
                except Exception:
                    break
            for worker in workers:
                worker.join(timeout=10.0)
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        # Unread completions still hold named segments (or spill files);
        # attach-and-unlink each so an aborted stream leaks nothing.
        while True:
            try:
                message = result_queue.get_nowait()
            except Exception:
                break
            self._discard(message)
        for pipe in (task_queue, result_queue):
            try:
                pipe.close()
                pipe.cancel_join_thread()
            except Exception:
                pass

    def _discard(self, message: Tuple[Any, ...]) -> None:
        """Release the transport resources of a result nobody will read."""
        try:
            _, kind, body = message
            if kind != "ok":
                return
            _, block = pickle.loads(body)
            if block is None:
                return
            if block["kind"] == "shm":
                segment = shared_memory.SharedMemory(name=block["name"])
                segment.unlink()
                segment.close()
            else:
                os.unlink(block["path"])
        except Exception:
            pass

    # -- dispatch -------------------------------------------------------

    def execute(
        self,
        tasks: Iterable[Task],
        jobs: int,
        collect_metrics: bool = False,
        window: Optional[int] = None,
    ) -> Iterator[Tuple[int, TaskPayload]]:
        if jobs < 1:
            raise ConfigurationError("jobs must be at least 1")
        window = default_window(jobs) if window is None else max(1, window)
        self._ensure_pool(jobs)
        registry = default_registry()
        iterator = enumerate(tasks)
        exhausted = False
        try:
            while True:
                while not exhausted and self._inflight < window:
                    try:
                        index, task = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    blob = pickle.dumps(
                        task, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    self._task_queue.put(
                        (index, blob, collect_metrics, self._spill_target())
                    )
                    self._inflight += 1
                    if registry.enabled:
                        # Submissions are metered separately from results:
                        # ``transport.pickle_bytes`` stays comparable
                        # across backends as *result*-side bytes.
                        registry.counter("transport.task_pickle_bytes").add(
                            float(len(blob))
                        )
                if registry.enabled:
                    registry.gauge("backend.queue_depth").set(self._inflight)
                if self._inflight == 0:
                    break
                yield self._receive(registry)
        finally:
            if self._inflight:
                # The consumer abandoned the stream mid-flight (an upstream
                # exception): tear the pool down so stale completions can
                # never collide with the next dispatch.
                self.close()

    def _receive(self, registry: MetricsRegistry) -> Tuple[int, TaskPayload]:
        while True:
            try:
                message = self._result_queue.get(timeout=1.0)
                break
            except queue.Empty:
                dead = [w for w in self._workers if not w.is_alive()]
                if dead:
                    codes = ", ".join(str(w.exitcode) for w in dead)
                    self.close()
                    raise BackendError(
                        f"{len(dead)} shared-memory worker(s) died "
                        f"mid-task (exit codes: {codes})"
                    )
        self._inflight -= 1
        index, kind, body = message
        if kind == "error":
            blob, text = body
            error = pickle.loads(blob)
            raise error from BackendError(f"worker traceback:\n{text}")
        payload, block = pickle.loads(body)
        if registry.enabled:
            registry.counter("transport.pickle_bytes").add(float(len(body)))
        if block is not None:
            payload = self._attach_block(payload, block, registry)
        return index, payload

    # -- attach side ----------------------------------------------------

    def _spill_target(self) -> Optional[str]:
        if (
            self._rss_budget_bytes is None
            or self._live_bytes < self._rss_budget_bytes
        ):
            return None
        directory = self._spill_dir or tempfile.gettempdir()
        handle, path = tempfile.mkstemp(
            prefix="repro-spill-", suffix=".traces", dir=directory
        )
        os.close(handle)
        return path

    def _attach_block(
        self,
        payload: TaskPayload,
        block: Dict[str, Any],
        registry: MetricsRegistry,
    ) -> TaskPayload:
        nbytes = block["nbytes"]
        if block["kind"] == "shm":
            # Attach registers the name with the resource tracker (on every
            # interpreter we support) and unlink() unregisters it — no manual
            # tracker calls here, or the shared tracker sees a double
            # unregister and whines at exit.
            segment = shared_memory.SharedMemory(name=block["name"])
            owner = _SegmentOwner(segment)
            segment.unlink()
            flat: np.ndarray = np.ndarray(
                (nbytes // _ITEM_BYTES,),
                dtype=np.float64,
                buffer=segment.buf,
            )
        else:
            # Copy-on-write mapping: a same-stamp overwrite after attach
            # lands in anonymous memory, never back in the (deleted) file.
            flat = np.memmap(block["path"], dtype=np.float64, mode="c")
            owner = _SegmentOwner(flat)
            os.unlink(block["path"])
        self._retain(owner, nbytes)
        results = list(payload.results)
        for d, i, channels, rows, offset, phases, open_phase in block[
            "headers"
        ]:
            columns = len(channels) + 1
            start = offset // _ITEM_BYTES
            samples = flat[start : start + rows * columns].reshape(
                rows, columns
            )
            trace = _attach_trace(channels, samples, phases, open_phase, owner)
            iterations = list(results[d].iterations)
            iterations[i] = replace(iterations[i], trace=trace)
            results[d] = replace(results[d], iterations=tuple(iterations))
        if registry.enabled:
            registry.counter("transport.shm_bytes").add(float(nbytes))
            registry.counter("transport.traces_attached").add(
                float(len(block["headers"]))
            )
        return replace(payload, results=results)

    def _retain(self, owner: _SegmentOwner, nbytes: int) -> None:
        self._live_bytes += nbytes
        weakref.finalize(owner, self._release, nbytes)

    def _release(self, nbytes: int) -> None:
        self._live_bytes -= nbytes
