"""Parallel campaign execution.

The study design is embarrassingly parallel one level below the campaign:
devices never interact, so every (model, unit, workload) triple is an
independent work item.  Iterations within one unit are *not* independent —
thermal and mitigation state deliberately carries across the paper's
back-to-back iterations — so the unit of work is a :class:`DeviceTask`:
one unit's full iteration batch under one workload.

Determinism
-----------
Results are bit-identical to a serial run regardless of worker count:

* Every stochastic element of a device (silicon sampling, sensor noise, OS
  background activity) draws from a stream derived from
  ``(root_seed, model, serial, purpose)`` via :func:`repro.rng.derive_stream`
  — no stream is shared between units, so execution order cannot perturb
  anything.
* Devices are fully constructed in the parent process and shipped to
  workers by pickling, which round-trips generator state, thermal state and
  numpy buffers exactly.
* :func:`run_tasks` uses ``ProcessPoolExecutor.map``, which yields results
  in submission order, so reassembly is stable no matter which worker
  finishes first.

``jobs == 1`` (or a single task) bypasses the pool entirely and runs
in-process — that path is byte-for-byte the sequential campaign loop.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.experiments import ExperimentSpec
from repro.core.results import DeviceResult
from repro.device.phone import Device
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # circular at runtime: runner builds tasks, tasks run a runner
    from repro.core.runner import CampaignConfig


@dataclass(frozen=True)
class DeviceTask:
    """One unit's full iteration batch under one workload.

    Attributes
    ----------
    device:
        The unit, fully constructed (its seeded streams included); pickled
        to the worker, so the caller's instance is never mutated when the
        task runs in a pool.
    experiment:
        The workload to run.
    config:
        Campaign configuration the worker's runner is built from.
    ambient_c / iterations / supply_voltage:
        Per-call overrides, exactly as accepted by
        :meth:`repro.core.runner.CampaignRunner.run_device`.
    """

    device: Device
    experiment: ExperimentSpec
    config: "CampaignConfig"
    ambient_c: Optional[float] = None
    iterations: Optional[int] = None
    supply_voltage: Optional[float] = None


def execute_device_task(task: DeviceTask) -> DeviceResult:
    """Run one task to completion (the worker-process entry point)."""
    from repro.core.runner import CampaignRunner

    runner = CampaignRunner(task.config)
    return runner.run_device(
        task.device,
        task.experiment,
        ambient_c=task.ambient_c,
        iterations=task.iterations,
        supply_voltage=task.supply_voltage,
    )


def run_tasks(tasks: Sequence[DeviceTask], jobs: int) -> List[DeviceResult]:
    """Execute tasks over ``jobs`` worker processes, preserving task order.

    ``jobs`` must already be resolved to a concrete positive count (the
    runner maps ``0`` to the machine's core count before calling).  With one
    job or one task the pool is bypassed and everything runs in-process.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be at least 1")
    items = list(tasks)
    workers = min(jobs, len(items))
    if workers <= 1:
        return [execute_device_task(task) for task in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(execute_device_task, items))
