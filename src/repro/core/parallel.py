"""Parallel campaign execution.

The study design is embarrassingly parallel one level below the campaign:
devices never interact, so every (model, unit, workload) triple is an
independent work item.  Iterations within one unit are *not* independent —
thermal and mitigation state deliberately carries across the paper's
back-to-back iterations — so the unit of work is a :class:`DeviceTask`:
one unit's full iteration batch under one workload.

Determinism
-----------
Results are bit-identical to a serial run regardless of worker count:

* Every stochastic element of a device (silicon sampling, sensor noise, OS
  background activity) draws from a stream derived from
  ``(root_seed, model, serial, purpose)`` via :func:`repro.rng.derive_stream`
  — no stream is shared between units, so execution order cannot perturb
  anything.
* Devices are fully constructed in the parent process and shipped to
  workers by pickling, which round-trips generator state, thermal state and
  numpy buffers exactly.
* :func:`run_tasks` hands tasks to an
  :class:`~repro.core.backends.ExecutionBackend` and consumes completions
  as they land — so the parent can merge worker telemetry and report
  progress the moment each task completes — but results are reassembled
  into a list keyed by submission index, so the returned order (and every
  value in it) is independent of which worker finishes first.

*Where* tasks run is a pluggable :mod:`repro.core.backends` choice
(in-process, process pool, or the zero-copy shared-memory pool), selected
by :attr:`CampaignConfig.backend` — results are bit-identical under every
backend, a contract ``repro.check.differential``'s backend pairings gate
unconditionally.  ``tasks`` may be any iterable: the backend pulls
lazily, keeping a bounded in-flight window, so huge campaigns never
enqueue (or pickle) every task upfront.  With ``"auto"`` (the default),
``jobs == 1`` — or a single task — bypasses pools entirely and runs
in-process: byte-for-byte the sequential campaign loop.

Telemetry
---------
When the parent's :func:`repro.obs.default_registry` is enabled, each
worker builds its own enabled registry for the duration of its task,
snapshots it into the returned :class:`TaskPayload`, and the parent merges
the snapshot as the completion lands.  Per-task wall time goes into the
``task.wall_s`` histogram either way, and an optional ``progress``
callback receives a :class:`~repro.obs.progress.TaskProgress` per
completion — in completion order, which is the whole point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.core.experiments import ExperimentSpec
from repro.core.results import DeviceResult
from repro.device.phone import Device
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, default_registry, use_registry
from repro.obs.progress import ProgressCallback, TaskProgress

if TYPE_CHECKING:  # circular at runtime: runner builds tasks, tasks run a runner
    from repro.core.runner import CampaignConfig


@dataclass(frozen=True)
class DeviceTask:
    """One unit's full iteration batch under one workload.

    Attributes
    ----------
    device:
        The unit, fully constructed (its seeded streams included); pickled
        to the worker, so the caller's instance is never mutated when the
        task runs in a pool.
    experiment:
        The workload to run.
    config:
        Campaign configuration the worker's runner is built from.
    ambient_c / iterations / supply_voltage:
        Per-call overrides, exactly as accepted by
        :meth:`repro.core.runner.CampaignRunner.run_device`.
    """

    device: Device
    experiment: ExperimentSpec
    config: "CampaignConfig"
    ambient_c: Optional[float] = None
    iterations: Optional[int] = None
    supply_voltage: Optional[float] = None

    @property
    def result_count(self) -> int:
        return 1


@dataclass(frozen=True)
class BatchTask:
    """One fleet shard's full iteration batch, run through a BatchedWorld.

    The shard's units advance in lock-step inside a single worker (see
    :mod:`repro.core.batch_runner`); a mixed-model shard runs as
    per-model cohort blocks within that one world.  The payload carries
    one :class:`DeviceResult` per unit, in shard order.  Shards are
    contiguous fleet slices — on mixed fleets the runner snaps shard cuts
    to model boundaries so cohort blocks stay whole — so flattening
    payloads in submission order reassembles the fleet ordering a serial
    run would produce.
    """

    devices: tuple
    experiment: ExperimentSpec
    config: "CampaignConfig"
    ambient_c: Optional[float] = None
    iterations: Optional[int] = None
    supply_voltage: Optional[float] = None

    @property
    def result_count(self) -> int:
        return len(self.devices)


@dataclass(frozen=True)
class CrowdCohortTask:
    """One crowd cohort's probe + field ACCUBENCH pass, batched.

    The cohort's devices are built *inside* the worker (unit silicon and
    noise streams are keyed by serial, so construction needs no parent
    state beyond the :class:`~repro.core.crowd.UserSample` plan), keeping
    the pickled task small enough to ship a million-user campaign as
    thousands of lightweight cohort descriptions.  The payload carries a
    single :class:`~repro.core.crowd_stream.CohortResult`.
    """

    cohort_index: int
    config: Any  # CrowdConfig; untyped to keep this module import-light
    users: tuple  # of UserSample, in population order

    @property
    def result_count(self) -> int:
        return 1


#: Anything :func:`run_tasks` accepts.
Task = Union[DeviceTask, BatchTask, CrowdCohortTask]


@dataclass(frozen=True)
class TaskPayload:
    """What a worker returns: the results plus its telemetry.

    Attributes
    ----------
    results:
        The task's :class:`DeviceResult` list — one entry for a
        :class:`DeviceTask`, one per unit (in shard order) for a
        :class:`BatchTask`.  Unaffected by whether metrics were collected.
    wall_s:
        Wall-clock execution time of the task, measured in the process
        that ran it.
    metrics:
        The worker registry's snapshot (see
        :meth:`repro.obs.MetricsRegistry.snapshot`), or ``None`` when the
        parent was not collecting.
    """

    results: List[DeviceResult]
    wall_s: float
    metrics: Optional[Dict[str, Any]] = None


def execute_device_task(task: DeviceTask) -> DeviceResult:
    """Run one task to completion without telemetry (legacy entry point)."""
    return execute_task_payload(task, collect_metrics=False).results[0]


def execute_task_payload(
    task: "Task", collect_metrics: bool = False
) -> TaskPayload:
    """Run one task to completion (the worker-process entry point).

    With ``collect_metrics``, the task runs against a fresh enabled
    registry scoped to this call, and the payload carries its snapshot —
    the worker-side half of cross-process metric aggregation.  Collection
    never touches the simulation's random streams, so the results are
    identical either way.
    """
    started = time.perf_counter()
    if collect_metrics:
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            results = _run(task)
        snapshot = registry.snapshot()
    else:
        results = _run(task)
        snapshot = None
    return TaskPayload(
        results=results, wall_s=time.perf_counter() - started, metrics=snapshot
    )


def _run(task: "Task") -> List[DeviceResult]:
    from repro.core.runner import CampaignRunner

    if isinstance(task, CrowdCohortTask):
        from repro.core.crowd_stream import execute_cohort

        return [execute_cohort(task.config, task.cohort_index, task.users)]
    if isinstance(task, BatchTask):
        from repro.core.batch_runner import run_batch

        return run_batch(
            list(task.devices),
            task.experiment,
            task.config,
            ambient_c=task.ambient_c,
            iterations=task.iterations,
            supply_voltage=task.supply_voltage,
        )
    runner = CampaignRunner(task.config)
    return [
        runner.run_device(
            task.device,
            task.experiment,
            ambient_c=task.ambient_c,
            iterations=task.iterations,
            supply_voltage=task.supply_voltage,
        )
    ]


def run_tasks(
    tasks: Iterable["Task"],
    jobs: int,
    progress: Optional[ProgressCallback] = None,
    backend: Optional[Union[str, "Any"]] = None,
) -> List[DeviceResult]:
    """Execute tasks over an execution backend, preserving task order.

    ``jobs`` must already be resolved to a concrete positive count (the
    runner maps ``0`` to the machine's core count before calling).
    ``backend`` is a :data:`~repro.core.backends.BACKEND_NAMES` name
    (``None`` means ``"auto"``: in-process at one effective job, the
    zero-copy shared-memory pool otherwise) or an already constructed
    :class:`~repro.core.backends.ExecutionBackend` — a caller-owned
    instance is used as-is and not closed here, so a long campaign can
    keep one worker pool across dispatches.

    ``tasks`` may be a lazy iterable: the backend pulls at most a bounded
    window ahead of completions, and the per-task result-count/offset
    bookkeeping (the single place task sizing is resolved) grows as tasks
    are drawn.  Completions are consumed as they land: worker metric
    snapshots merge into the parent's default registry and ``progress``
    fires per unit result, while the returned list stays in submission
    order — a :class:`BatchTask`'s per-unit results flatten in place of
    the shard.  Only each payload's results are retained; the payload
    itself (metrics snapshot included) is dropped as soon as it is
    absorbed, so parent memory tracks the in-flight window.
    """
    from repro.core.backends import ExecutionBackend, resolve_backend

    if jobs < 1:
        raise ConfigurationError("jobs must be at least 1")
    registry = default_registry()
    collect = registry.enabled
    if isinstance(tasks, Sequence):
        known_total: Optional[int] = sum(
            task.result_count for task in tasks
        )
        effective = min(jobs, max(len(tasks), 1))
    else:
        known_total = None
        effective = jobs

    owned: Optional[ExecutionBackend] = None
    if backend is None or isinstance(backend, str):
        owned = resolve_backend(backend or "auto", effective)
        engine: ExecutionBackend = owned
    else:
        engine = backend

    sizes: List[int] = []
    offsets: List[int] = []
    produced = 0

    def annotated() -> Iterable["Task"]:
        # Sizing/offset bookkeeping happens exactly once, here, as the
        # backend draws tasks — call sites never duplicate it.
        nonlocal produced
        for task in tasks:
            sizes.append(task.result_count)
            offsets.append(produced)
            produced += task.result_count
            yield task

    slots: Dict[int, List[DeviceResult]] = {}
    completed = 0
    try:
        for index, payload in engine.execute(
            annotated(), effective, collect_metrics=collect
        ):
            slots[index] = payload.results
            completed += sizes[index]
            total = known_total if known_total is not None else produced
            _absorb(
                registry, payload, progress, offsets[index], completed, total
            )
    finally:
        if owned is not None:
            owned.close()
    return [
        result for index in range(len(sizes)) for result in slots.pop(index)
    ]


def _absorb(
    registry: MetricsRegistry,
    payload: TaskPayload,
    progress: Optional[ProgressCallback],
    base_index: int,
    completed: int,
    total: int,
) -> None:
    """Fold one completed task into parent-side telemetry and progress."""
    if registry.enabled:
        if payload.metrics is not None:
            registry.merge_snapshot(payload.metrics)
        registry.histogram("task.wall_s").observe(payload.wall_s)
        registry.counter("tasks.completed").inc()
        registry.gauge("tasks.total").set(total)
    # The worker's engine-step tally rides in its metrics snapshot; turn
    # it into a per-shard rate so the progress bus can stream steps/sec
    # without anything ever touching the hot loop.
    steps_per_sec = None
    if payload.metrics is not None and payload.wall_s > 0:
        steps = payload.metrics.get("counters", {}).get("engine.steps")
        if steps:
            steps_per_sec = round(steps / payload.wall_s, 1)
    if progress is not None:
        for offset, result in enumerate(payload.results):
            progress(
                TaskProgress(
                    index=base_index + offset,
                    completed=completed,
                    total=total,
                    model=result.model,
                    serial=result.serial,
                    workload=result.workload,
                    wall_s=payload.wall_s,
                    steps_per_sec=steps_per_sec,
                )
            )
