"""Cross-generation efficiency (paper Figure 13).

The paper defines efficiency implicitly as useful work per energy during
the UNCONSTRAINED workload and plots it per SoC generation, observing that
while efficiency improves overall with process scaling, the SD-805 measured
*less* efficient than the older SD-800 — a consequence of pushing the same
28 nm process to 2.65 GHz at higher binned voltages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.results import ExperimentResult
from repro.errors import AnalysisError


@dataclass(frozen=True)
class EfficiencyPoint:
    """One model's point on the Figure 13 axis.

    Attributes
    ----------
    model / soc / year:
        Identity and generation ordering.
    mean_iters_per_kj:
        Fleet-mean iterations per kilojoule.
    per_unit:
        Per-serial efficiency, for error bars.
    """

    model: str
    soc: str
    year: int
    mean_iters_per_kj: float
    per_unit: Tuple[Tuple[str, float], ...]


def efficiency_point(
    result: ExperimentResult, soc_name: str, year: int
) -> EfficiencyPoint:
    """Fold one model's UNCONSTRAINED result into an efficiency point."""
    per_unit = tuple(
        (device.serial, device.efficiency_iters_per_kj) for device in result.devices
    )
    values = [value for _, value in per_unit]
    return EfficiencyPoint(
        model=result.model,
        soc=soc_name,
        year=year,
        mean_iters_per_kj=sum(values) / len(values),
        per_unit=per_unit,
    )


def efficiency_series(points: Sequence[EfficiencyPoint]) -> List[EfficiencyPoint]:
    """Points sorted in generation order (the Figure 13 x-axis)."""
    if not points:
        raise AnalysisError("no efficiency points supplied")
    return sorted(points, key=lambda p: (p.year, p.soc))


def relative_to_first(points: Sequence[EfficiencyPoint]) -> Dict[str, float]:
    """Each SoC's efficiency relative to the oldest generation (= 1.0)."""
    ordered = efficiency_series(points)
    baseline = ordered[0].mean_iters_per_kj
    if baseline <= 0:
        raise AnalysisError("baseline efficiency must be positive")
    return {point.soc: point.mean_iters_per_kj / baseline for point in ordered}


def sd805_regression(points: Sequence[EfficiencyPoint]) -> bool:
    """True if the SD-805 measured less efficient than the SD-800 —
    the paper's headline Figure 13 anomaly."""
    by_soc = {point.soc: point.mean_iters_per_kj for point in points}
    try:
        return by_soc["SD-805"] < by_soc["SD-800"]
    except KeyError as missing:
        raise AnalysisError(f"missing efficiency point for {missing}") from None
