"""Whole-study orchestration and persistence.

A :class:`Study` is the paper's complete evaluation as one object: every
model's fleet under both workloads, with the derived artifacts (Table II
rows, efficiency points) and a directory layout for saving and reloading:

    study_dir/
      manifest.json                     # models, workloads, summary rows
      <model-slug>/unconstrained.json   # ExperimentResult documents
      <model-slug>/fixed-frequency.json

Reloading a saved study restores every number without re-simulating —
campaigns are deterministic, but a full-length five-model study is minutes
of compute worth caching.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.efficiency import EfficiencyPoint, efficiency_point
from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.results import ExperimentResult
from repro.core.runner import CampaignRunner
from repro.core.serialize import experiment_from_dict, experiment_to_dict
from repro.device.catalog import DEVICE_NAMES, device_spec
from repro.errors import AnalysisError
from repro.soc.catalog import soc_by_name

#: Manifest schema marker.
MANIFEST_FORMAT = "repro-study-v1"


def _slug(model: str) -> str:
    return model.lower().replace(" ", "-")


@dataclass(frozen=True)
class Study:
    """Results of the full paper evaluation.

    Attributes
    ----------
    results:
        ``{model: (unconstrained, fixed_frequency)}`` experiment results.
    """

    results: Dict[str, Tuple[ExperimentResult, ExperimentResult]]

    def __post_init__(self) -> None:
        if not self.results:
            raise AnalysisError("a study needs at least one model")

    @property
    def models(self) -> Tuple[str, ...]:
        """Models covered, insertion order."""
        return tuple(self.results)

    def performance(self, model: str) -> ExperimentResult:
        """One model's UNCONSTRAINED result."""
        return self._pair(model)[0]

    def energy(self, model: str) -> ExperimentResult:
        """One model's FIXED-FREQUENCY result."""
        return self._pair(model)[1]

    def _pair(self, model: str) -> Tuple[ExperimentResult, ExperimentResult]:
        try:
            return self.results[model]
        except KeyError:
            known = ", ".join(self.results)
            raise AnalysisError(f"no model {model!r} in study; have: {known}") from None

    # -- derived artifacts ------------------------------------------------

    def table2_rows(self) -> Dict[str, Tuple[str, int, float, float]]:
        """Table II: {model: (soc, n_devices, perf_var, energy_var)}."""
        rows = {}
        for model, (performance, energy) in self.results.items():
            rows[model] = (
                device_spec(model).soc_name,
                len(performance.devices),
                performance.performance_variation,
                energy.energy_variation,
            )
        return rows

    def efficiency_points(self) -> List[EfficiencyPoint]:
        """Figure 13 inputs, generation-ordered."""
        points = []
        for model, (performance, _) in self.results.items():
            soc = soc_by_name(device_spec(model).soc_name)
            points.append(efficiency_point(performance, soc.name, soc.year))
        return sorted(points, key=lambda p: (p.year, p.soc))

    # -- persistence ------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> Path:
        """Write the study to a directory; returns the manifest path."""
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": MANIFEST_FORMAT,
            "models": list(self.results),
            "table2": {
                model: {
                    "soc": soc, "devices": count,
                    "performance_variation": perf, "energy_variation": energy,
                }
                for model, (soc, count, perf, energy) in self.table2_rows().items()
            },
        }
        for model, (performance, energy) in self.results.items():
            model_dir = root / _slug(model)
            model_dir.mkdir(exist_ok=True)
            (model_dir / "unconstrained.json").write_text(
                json.dumps(experiment_to_dict(performance), indent=2)
            )
            (model_dir / "fixed-frequency.json").write_text(
                json.dumps(experiment_to_dict(energy), indent=2)
            )
        manifest_path = root / "manifest.json"
        manifest_path.write_text(json.dumps(manifest, indent=2))
        return manifest_path

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "Study":
        """Reload a saved study."""
        root = Path(directory)
        manifest_path = root / "manifest.json"
        if not manifest_path.exists():
            raise AnalysisError(f"no study manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != MANIFEST_FORMAT:
            raise AnalysisError(
                f"unsupported study format {manifest.get('format')!r}"
            )
        results = {}
        for model in manifest["models"]:
            model_dir = root / _slug(model)
            performance = experiment_from_dict(
                json.loads((model_dir / "unconstrained.json").read_text())
            )
            energy = experiment_from_dict(
                json.loads((model_dir / "fixed-frequency.json").read_text())
            )
            results[model] = (performance, energy)
        return cls(results=results)


def run_study(
    runner: CampaignRunner, models: Optional[Sequence[str]] = None
) -> Study:
    """Execute the paper's study design and return it as a :class:`Study`."""
    chosen = list(models) if models else list(DEVICE_NAMES)
    results = {}
    for model in chosen:
        spec = device_spec(model)
        performance = runner.run_fleet(model, unconstrained())
        energy = runner.run_fleet(model, fixed_frequency(spec))
        results[model] = (performance, energy)
    return Study(results=results)
