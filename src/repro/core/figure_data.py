"""Plot-ready data series for the paper's figures.

The library renders ASCII reports (:mod:`repro.core.reporting`), but users
with a plotting stack want raw series.  This module extracts each figure's
data as plain :class:`Series` objects and renders them to CSV — no
plotting dependencies, no image files, just the numbers a figure is made
of.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.analysis import normalize
from repro.core.efficiency import EfficiencyPoint
from repro.core.results import ExperimentResult
from repro.errors import AnalysisError
from repro.sim.trace import Trace


@dataclass(frozen=True)
class Series:
    """One figure's data.

    Attributes
    ----------
    name:
        Figure identity, e.g. ``"fig06a-performance"``.
    x_label / y_label:
        Axis labels.
    columns:
        Ordered mapping of column label → values.  The first column is the
        x axis; all columns share a length.
    """

    name: str
    x_label: str
    y_label: str
    columns: Tuple[Tuple[str, Tuple[float, ...]], ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise AnalysisError("a series needs at least one column")
        lengths = {len(values) for _, values in self.columns}
        if len(lengths) != 1:
            raise AnalysisError("all columns must share a length")

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return len(self.columns[0][1])

    def column(self, label: str) -> Tuple[float, ...]:
        """Fetch one column by label."""
        for name, values in self.columns:
            if name == label:
                return values
        known = ", ".join(name for name, _ in self.columns)
        raise AnalysisError(f"no column {label!r}; columns: {known}")

    def to_csv(self) -> str:
        """Render as CSV with a header row."""
        out = io.StringIO()
        out.write(",".join(name for name, _ in self.columns) + "\n")
        for row in range(self.row_count):
            out.write(
                ",".join(f"{values[row]:.6g}" for _, values in self.columns) + "\n"
            )
        return out.getvalue()


def bar_series(
    result: ExperimentResult, metric: str = "performance", name: str = ""
) -> Series:
    """A per-SoC figure (6a/6b style) as normalized bars.

    ``metric`` is ``"performance"`` (normalized to max) or ``"energy"``
    (normalized to min).  The x column is the unit index, with the serial
    carried in a parallel categorical encoding (index order = serials
    order).
    """
    if metric == "performance":
        raw = [result.by_serial(s).performance for s in result.serials]
        normalized = normalize(raw, reference="max")
    elif metric == "energy":
        raw = [result.by_serial(s).energy_j for s in result.serials]
        normalized = normalize(raw, reference="min")
    else:
        raise AnalysisError(f"unknown metric {metric!r}")
    return Series(
        name=name or f"{result.model}-{metric}",
        x_label="unit index (see serials)",
        y_label=f"normalized {metric}",
        columns=(
            ("unit_index", tuple(float(i) for i in range(len(raw)))),
            ("raw", tuple(raw)),
            ("normalized", tuple(normalized)),
        ),
    )


def trace_series(
    trace: Trace, channels: Sequence[str], name: str = "trace"
) -> Series:
    """Time-domain figure data (Figures 4, 5) from a protocol trace."""
    if not channels:
        raise AnalysisError("pick at least one channel")
    columns: List[Tuple[str, Tuple[float, ...]]] = [
        ("time_s", tuple(float(t) for t in trace.times()))
    ]
    for channel in channels:
        columns.append(
            (channel, tuple(float(v) for v in trace.column(channel)))
        )
    return Series(
        name=name,
        x_label="time (s)",
        y_label=", ".join(channels),
        columns=tuple(columns),
    )


def efficiency_figure(points: Sequence[EfficiencyPoint]) -> Series:
    """Figure 13 data: per-generation efficiency."""
    if not points:
        raise AnalysisError("no efficiency points")
    ordered = sorted(points, key=lambda p: (p.year, p.soc))
    return Series(
        name="fig13-efficiency",
        x_label="generation index (see SoC order)",
        y_label="iterations per kJ",
        columns=(
            ("generation_index", tuple(float(i) for i in range(len(ordered)))),
            ("iters_per_kj", tuple(p.mean_iters_per_kj for p in ordered)),
        ),
    )


def histogram_series(
    counts: Sequence[float], edges: Sequence[float], name: str
) -> Series:
    """Figure 11/12 distribution data from a numpy histogram pair."""
    if len(edges) != len(counts) + 1:
        raise AnalysisError("edges must be one longer than counts")
    centers = tuple(
        (float(lo) + float(hi)) / 2.0 for lo, hi in zip(edges, list(edges)[1:])
    )
    return Series(
        name=name,
        x_label="bin center",
        y_label="samples",
        columns=(
            ("bin_center", centers),
            ("count", tuple(float(c) for c in counts)),
        ),
    )


def export_bundle(series: Sequence[Series]) -> Dict[str, str]:
    """Render many series to ``{name: csv_text}`` (the CLI's export set)."""
    bundle = {}
    for item in series:
        if item.name in bundle:
            raise AnalysisError(f"duplicate series name {item.name!r}")
        bundle[item.name] = item.to_csv()
    return bundle
