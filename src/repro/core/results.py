"""Result containers for ACCUBENCH runs.

The hierarchy mirrors the study design: an *iteration* is one pass through
the protocol, a *device result* aggregates ≥5 iterations on one unit, an
*experiment result* collects all units of one model under one workload —
the thing each of the paper's per-SoC figures (6–9) plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.analysis import (
    energy_variation,
    performance_variation,
    relative_standard_deviation,
)
from repro.errors import AnalysisError
from repro.sim.trace import Trace


@dataclass(frozen=True)
class IterationResult:
    """One pass through the ACCUBENCH protocol on one unit.

    Attributes
    ----------
    model / serial:
        Which unit produced this iteration.
    workload:
        Experiment name (``"UNCONSTRAINED"`` or ``"FIXED-FREQUENCY"``).
    iterations_completed:
        π-workload iterations finished in the workload phase (the paper's
        performance score).
    energy_j:
        Supply energy over the workload phase, joules.
    mean_power_w:
        Mean supply power over the workload phase, watts.
    mean_freq_mhz:
        Mean big-cluster frequency over the workload phase, MHz.
    max_cpu_temp_c:
        Peak die temperature over the whole protocol, °C.
    cooldown_s:
        How long the cooldown phase took, seconds.
    time_throttled_s:
        Workload time spent with a throttle cap in force, seconds.
    trace:
        Full protocol trace, if the config kept it.
    """

    model: str
    serial: str
    workload: str
    iterations_completed: float
    energy_j: float
    mean_power_w: float
    mean_freq_mhz: float
    max_cpu_temp_c: float
    cooldown_s: float
    time_throttled_s: float
    trace: Optional[Trace] = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class DeviceResult:
    """All iterations of one experiment on one unit."""

    model: str
    serial: str
    workload: str
    iterations: Tuple[IterationResult, ...]

    def __post_init__(self) -> None:
        if not self.iterations:
            raise AnalysisError("a device result needs at least one iteration")

    @property
    def performance(self) -> float:
        """Mean iterations completed across protocol iterations."""
        return _mean([it.iterations_completed for it in self.iterations])

    @property
    def performance_rsd(self) -> float:
        """Relative standard deviation of the performance score."""
        return relative_standard_deviation(
            [it.iterations_completed for it in self.iterations]
        )

    @property
    def energy_j(self) -> float:
        """Mean workload energy across protocol iterations, joules."""
        return _mean([it.energy_j for it in self.iterations])

    @property
    def energy_rsd(self) -> float:
        """Relative standard deviation of the workload energy."""
        return relative_standard_deviation([it.energy_j for it in self.iterations])

    @property
    def mean_freq_mhz(self) -> float:
        """Mean of per-iteration mean frequencies, MHz."""
        return _mean([it.mean_freq_mhz for it in self.iterations])

    @property
    def efficiency_iters_per_kj(self) -> float:
        """Work per energy: iterations per kilojoule (Figure 13's metric)."""
        energy = self.energy_j
        if energy <= 0:
            raise AnalysisError("cannot compute efficiency of zero energy")
        return self.performance / (energy / 1000.0)


@dataclass(frozen=True)
class ExperimentResult:
    """One workload across a whole fleet of one model."""

    model: str
    workload: str
    devices: Tuple[DeviceResult, ...]

    def __post_init__(self) -> None:
        if not self.devices:
            raise AnalysisError("an experiment result needs at least one device")

    def by_serial(self, serial: str) -> DeviceResult:
        """Look up one unit's result."""
        for device in self.devices:
            if device.serial == serial:
                return device
        known = ", ".join(d.serial for d in self.devices)
        raise AnalysisError(f"no unit {serial!r} in results; units: {known}")

    @property
    def serials(self) -> Tuple[str, ...]:
        """Unit serials, result order."""
        return tuple(device.serial for device in self.devices)

    def performances(self) -> Dict[str, float]:
        """Per-unit performance scores."""
        return {d.serial: d.performance for d in self.devices}

    def energies_j(self) -> Dict[str, float]:
        """Per-unit workload energies, joules."""
        return {d.serial: d.energy_j for d in self.devices}

    @property
    def performance_variation(self) -> float:
        """The paper's performance-spread metric: (max − min) / min."""
        return performance_variation([d.performance for d in self.devices])

    @property
    def energy_variation(self) -> float:
        """The paper's energy-spread metric: (max − min) / max."""
        return energy_variation([d.energy_j for d in self.devices])

    @property
    def best_serial(self) -> str:
        """Unit with the highest performance."""
        return max(self.devices, key=lambda d: d.performance).serial

    @property
    def worst_serial(self) -> str:
        """Unit with the lowest performance."""
        return min(self.devices, key=lambda d: d.performance).serial

    @property
    def most_efficient_serial(self) -> str:
        """Unit with the least workload energy."""
        return min(self.devices, key=lambda d: d.energy_j).serial

    @property
    def mean_performance_rsd(self) -> float:
        """Mean per-unit repeatability (the paper's error bars)."""
        return _mean([d.performance_rsd for d in self.devices])


def _mean(values: List[float]) -> float:
    if not values:
        raise AnalysisError("cannot average an empty sequence")
    return sum(values) / len(values)
