"""ACCUBENCH protocol configuration (paper Section III).

The paper's durations: 3-minute warmup (enough for an idle CPU to reach a
busy CPU's thermal state), cooldown polling the temperature sensor every
5 seconds until it reports the target, then a 5-minute workload.  Tests
scale everything down with :meth:`AccubenchConfig.scaled`; the physics is
qualitatively identical at shorter durations, just noisier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import minutes, require_finite


@dataclass(frozen=True)
class AccubenchConfig:
    """Parameters of one ACCUBENCH run.

    Attributes
    ----------
    warmup_s:
        Duration of the all-cores warmup burn, seconds.
    workload_s:
        Duration of the measured workload (T_workload), seconds.
    cooldown_target_c:
        Sensor temperature at which the workload may start, °C.
    cooldown_poll_s:
        Sleep interval between sensor polls during cooldown, seconds.
    cooldown_timeout_s:
        Abort bound on the cooldown phase, seconds.
    iterations:
        Back-to-back protocol iterations per experiment.
    dt:
        Simulation step, seconds.
    trace_decimation:
        Record every N-th engine step into the trace.
    keep_traces:
        Whether iteration results retain their full traces (the
        distribution figures need them; big campaigns may drop them).
    thermal_solver:
        Chassis-network integration scheme: ``"euler"`` (sub-stepped
        explicit Euler, the historical default) or ``"expm"`` (exact
        zero-order-hold matrix-exponential propagation; unconditionally
        stable and required for the sleep fast-forward).
    sleep_fast_forward:
        Whether the cooldown/soak phases may advance whole poll windows
        as single exact propagations while the device sleeps.  Only takes
        effect with ``thermal_solver="expm"``; results agree with full
        stepping within the sensor's resolution.
    check_invariants:
        Attach the :mod:`repro.check.invariants` suite to every world the
        protocol builds, raising
        :class:`~repro.errors.InvariantViolation` the step the physics
        stops being plausible.  Off by default — an observed run takes
        the engine's per-step path instead of the inlined hot loop.
    batch:
        Whether fleet runs use the lock-step batched engine
        (:mod:`repro.sim.batch`).  ``None`` (the default) batches
        automatically when a fleet has at least four eligible units;
        ``True`` batches whenever the fleet is eligible; ``False`` forces
        the serial per-unit path.  The batched engine covers every
        catalog scenario — mixed-model fleets (per-model cohort blocks),
        invariant observers, skin throttles and memory-bounded
        workloads included; only the Euler solver and disabled sleep
        fast-forward still require the serial path — see
        :func:`repro.core.batch_runner.batch_ineligibility_reason`.
    utilization:
        Per-core CPU utilization of the benchmark load, in (0, 1].
    memory_boundedness:
        Fraction of workload time stalled on memory at the top frequency
        (β in the DVFS stall model), in [0, 1).  Memory-bound loads
        scale sub-linearly with frequency and draw less core power.
    """

    warmup_s: float = minutes(3)
    workload_s: float = minutes(5)
    cooldown_target_c: float = 38.0
    cooldown_poll_s: float = 5.0
    cooldown_timeout_s: float = minutes(45)
    iterations: int = 5
    dt: float = 0.1
    trace_decimation: int = 10
    keep_traces: bool = False
    thermal_solver: str = "euler"
    sleep_fast_forward: bool = True
    check_invariants: bool = False
    batch: Optional[bool] = None
    utilization: float = 1.0
    memory_boundedness: float = 0.0

    def __post_init__(self) -> None:
        if self.thermal_solver not in ("euler", "expm"):
            raise ConfigurationError(
                f"unknown thermal_solver {self.thermal_solver!r}; "
                "choose 'euler' or 'expm'"
            )
        require_finite(
            "AccubenchConfig",
            warmup_s=self.warmup_s,
            workload_s=self.workload_s,
            cooldown_target_c=self.cooldown_target_c,
            cooldown_poll_s=self.cooldown_poll_s,
            cooldown_timeout_s=self.cooldown_timeout_s,
            dt=self.dt,
        )
        if self.cooldown_target_c < 0:
            raise ConfigurationError("cooldown_target_c must not be negative")
        if self.warmup_s <= 0 or self.workload_s <= 0:
            raise ConfigurationError("phase durations must be positive")
        if self.cooldown_poll_s <= 0 or self.cooldown_timeout_s <= 0:
            raise ConfigurationError("cooldown timings must be positive")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be at least 1")
        if self.dt <= 0:
            raise ConfigurationError("dt must be positive")
        if self.cooldown_poll_s < self.dt:
            raise ConfigurationError("cooldown_poll_s must be at least dt")
        if self.trace_decimation < 1:
            raise ConfigurationError("trace_decimation must be at least 1")
        require_finite(
            "AccubenchConfig",
            utilization=self.utilization,
            memory_boundedness=self.memory_boundedness,
        )
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError("utilization must be within (0, 1]")
        if not 0.0 <= self.memory_boundedness < 1.0:
            raise ConfigurationError("memory_boundedness must be within [0, 1)")

    def scaled(self, factor: float) -> "AccubenchConfig":
        """A config with phase durations scaled by ``factor`` (tests use
        factors well below 1 to keep runtimes short)."""
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        return replace(
            self,
            warmup_s=self.warmup_s * factor,
            workload_s=self.workload_s * factor,
            cooldown_timeout_s=self.cooldown_timeout_s * factor,
        )

    def with_traces(self) -> "AccubenchConfig":
        """A config that retains full iteration traces."""
        return replace(self, keep_traces=True)
