"""Cross-generation comparison (paper §IV-C's discussion, quantified).

The paper's discussion compares generations along two axes at once:
"While manufacturers announce new SoCs by touting their performance and
energy improvements over the previous generation, we were unable to find
any sources depicting efficiencies."  This module produces exactly those
statements from two fleets' results: performance gain, energy cost, and
the efficiency verdict that marketing omits — including the SD-805's
faster-but-less-efficient regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.results import ExperimentResult
from repro.errors import AnalysisError


@dataclass(frozen=True)
class GenerationComparison:
    """One SoC generation measured against another.

    All ratios are ``newer / older`` fleet means.

    Attributes
    ----------
    older_model / newer_model:
        The compared handsets.
    performance_ratio:
        Work completed per fixed time (UNCONSTRAINED), newer over older.
    power_ratio:
        Mean workload power, newer over older.
    efficiency_ratio:
        Work per joule, newer over older — the number nobody advertises.
    """

    older_model: str
    newer_model: str
    performance_ratio: float
    power_ratio: float
    efficiency_ratio: float

    @property
    def is_faster(self) -> bool:
        """The newer generation completes more work."""
        return self.performance_ratio > 1.0

    @property
    def is_more_efficient(self) -> bool:
        """The newer generation does more work per joule."""
        return self.efficiency_ratio > 1.0

    @property
    def is_marketing_regression(self) -> bool:
        """Faster on the box, less efficient in the hand — the SD-805
        pattern the paper calls out."""
        return self.is_faster and not self.is_more_efficient

    def summary(self) -> str:
        """One-line human verdict."""
        speed = f"{self.performance_ratio - 1.0:+.0%} performance"
        efficiency = f"{self.efficiency_ratio - 1.0:+.0%} efficiency"
        verdict = (
            "a marketing regression" if self.is_marketing_regression
            else "a genuine improvement" if self.is_faster and self.is_more_efficient
            else "a mixed result"
        )
        return (
            f"{self.newer_model} vs {self.older_model}: {speed}, "
            f"{efficiency} — {verdict}"
        )


def _fleet_mean(result: ExperimentResult, attribute: str) -> float:
    values = [getattr(device, attribute) for device in result.devices]
    if not values:
        raise AnalysisError("experiment has no devices")
    return sum(values) / len(values)


def _fleet_mean_power(result: ExperimentResult) -> float:
    powers = [
        it.mean_power_w for device in result.devices for it in device.iterations
    ]
    if not powers:
        raise AnalysisError("experiment has no iterations")
    return sum(powers) / len(powers)


def compare_generations(
    older: ExperimentResult, newer: ExperimentResult
) -> GenerationComparison:
    """Compare two UNCONSTRAINED fleet results, newer against older."""
    if older.workload != newer.workload:
        raise AnalysisError(
            f"cannot compare {older.workload!r} against {newer.workload!r}"
        )
    old_perf = _fleet_mean(older, "performance")
    new_perf = _fleet_mean(newer, "performance")
    old_eff = _fleet_mean(older, "efficiency_iters_per_kj")
    new_eff = _fleet_mean(newer, "efficiency_iters_per_kj")
    if min(old_perf, new_perf, old_eff, new_eff) <= 0:
        raise AnalysisError("fleet means must be positive")
    return GenerationComparison(
        older_model=older.model,
        newer_model=newer.model,
        performance_ratio=new_perf / old_perf,
        power_ratio=_fleet_mean_power(newer) / _fleet_mean_power(older),
        efficiency_ratio=new_eff / old_eff,
    )


def generation_ladder(
    results: Sequence[ExperimentResult],
) -> List[GenerationComparison]:
    """Adjacent-generation comparisons over an ordered result sequence."""
    if len(results) < 2:
        raise AnalysisError("need at least two generations to compare")
    return [
        compare_generations(older, newer)
        for older, newer in zip(results, results[1:])
    ]
