"""The paper's reported numbers, as calibration targets with tolerances.

Every table/figure reproduction asserts against these bands.  The bands are
deliberately generous: our substrate is a calibrated simulator, not the
authors' testbed, so what must hold is the *shape* — who wins, roughly by
how much, and the cross-generation ordering — not the third digit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class VariationTarget:
    """One model's Table II row with acceptance bands.

    Attributes
    ----------
    model / soc:
        Handset and SoC names.
    device_count:
        Fleet size in the study.
    performance / energy:
        The paper's reported variation fractions.
    performance_band / energy_band:
        Accepted (low, high) reproduction bands.
    """

    model: str
    soc: str
    device_count: int
    performance: float
    energy: float
    performance_band: Tuple[float, float]
    energy_band: Tuple[float, float]


#: Table II of the paper with reproduction bands.
TABLE2_TARGETS: Dict[str, VariationTarget] = {
    "Nexus 5": VariationTarget(
        model="Nexus 5", soc="SD-800", device_count=4,
        performance=0.14, energy=0.19,
        performance_band=(0.08, 0.22), energy_band=(0.12, 0.28),
    ),
    "Nexus 6": VariationTarget(
        model="Nexus 6", soc="SD-805", device_count=3,
        performance=0.02, energy=0.02,
        performance_band=(0.0, 0.05), energy_band=(0.0, 0.06),
    ),
    "Nexus 6P": VariationTarget(
        model="Nexus 6P", soc="SD-810", device_count=3,
        performance=0.10, energy=0.12,
        performance_band=(0.06, 0.17), energy_band=(0.07, 0.18),
    ),
    "LG G5": VariationTarget(
        model="LG G5", soc="SD-820", device_count=5,
        performance=0.04, energy=0.10,
        performance_band=(0.02, 0.09), energy_band=(0.05, 0.15),
    ),
    "Google Pixel": VariationTarget(
        model="Google Pixel", soc="SD-821", device_count=3,
        performance=0.05, energy=0.09,
        performance_band=(0.02, 0.09), energy_band=(0.05, 0.14),
    ),
}

#: Figure 6 headline: bin-0 is this much faster than bin-3 (Nexus 5).
FIG6_PERF_BIN0_OVER_BIN3 = 0.14

#: Figure 6 headline: bin-0 uses this much less energy than bin-3.
FIG6_ENERGY_SAVING_BIN0 = 0.19

#: Figure 11: Pixel device-488 outperformed device-653 by ~7%, with the
#: mean frequency delta matching.
FIG11_PIXEL_PERF_DELTA = 0.07

#: Figure 12: Nexus 5 bin-1 outperformed bin-3 by ~11%.
FIG12_NEXUS5_PERF_DELTA = 0.11

#: Figure 10: the LG G5 at 3.85 V input is roughly this much slower than
#: at 4.4 V (≈20%, Section IV-C).
FIG10_G5_THROTTLE_FRACTION = 0.20

#: Figure 2: energy for the same work grows ≥ this factor from ~20 °C to
#: ~40 °C ambient (the paper reports 25–30% between ambient extremes).
FIG2_ENERGY_GROWTH_MIN = 1.15

#: Section VII: the methodology's average repeatability error.
REPEATABILITY_RSD = 0.011

#: FIXED-FREQUENCY cross-device performance spread upper bounds seen in
#: the paper (1.3% on the Nexus 5, RSD 2.63% on the Nexus 6P).
FIXED_FREQ_PERF_SPREAD_MAX = 0.03

#: THERMABOX regulation band (Section III).
THERMABOX_TOLERANCE_C = 0.5

#: Figure 13 ordering constraint: the SD-805 measured *less* efficient
#: than the SD-800 despite being newer.
EFFICIENCY_SD805_BELOW_SD800 = True


def in_band(value: float, band: Tuple[float, float]) -> bool:
    """Whether a measured variation falls inside an acceptance band."""
    low, high = band
    return low <= value <= high
