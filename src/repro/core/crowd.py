"""Crowdsourced benchmarking study simulator (paper §VI).

The paper's endgame: ship a benchmarking app, gather runs from phones in
the wild, and rank devices / recover bins from the data.  "The only
parameters that we cannot control for in the wild are ambient temperature
and software stack.  However, preliminary results on using the cooldown
phase as an estimate of ambient temperature are encouraging.  This, in
addition to strict filters, should enable us to compare different devices
from across the world."

This module simulates exactly that pipeline:

1. sample a population of users, each with their own unit (silicon
   lottery), room temperature, and battery charge;
2. each user's app runs a cooldown probe (ambient estimate) followed by a
   field ACCUBENCH pass, battery-powered, in their uncontrolled room;
3. apply the paper's "strict filters" (ambient-estimate band, clean decay
   fits) and measure how well the filtered ranking recovers the true
   silicon ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.ambient_estimation import AmbientEstimate, cooldown_probe
from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.battery import Battery
from repro.device.fleet import synthetic_fleet
from repro.errors import AnalysisError, ConfigurationError
from repro.rng import DEFAULT_ROOT_SEED, derive_stream
from repro.thermal.ambient import ConstantAmbient


@dataclass(frozen=True)
class CrowdConfig:
    """Population and field-protocol parameters.

    Attributes
    ----------
    model:
        Handset model the crowd owns.
    user_count:
        Number of participants.
    ambient_range_c:
        Uniform range of room temperatures across the crowd.
    charge_range:
        Uniform range of battery state-of-charge at run time.
    protocol:
        The field app's (shortened) ACCUBENCH parameters.
    probe_heat_s / probe_observe_s:
        The ambient-probe cycle lengths.
    root_seed:
        Seed for population sampling.
    """

    model: str = "Nexus 5"
    user_count: int = 30
    ambient_range_c: Tuple[float, float] = (16.0, 36.0)
    charge_range: Tuple[float, float] = (0.5, 1.0)
    protocol: AccubenchConfig = field(
        default_factory=lambda: AccubenchConfig(
            warmup_s=120.0,
            workload_s=180.0,
            cooldown_target_c=40.0,
            cooldown_timeout_s=3600.0,
            iterations=1,
            dt=0.25,
            trace_decimation=20,
        )
    )
    probe_heat_s: float = 90.0
    probe_observe_s: float = 600.0
    root_seed: int = DEFAULT_ROOT_SEED

    def __post_init__(self) -> None:
        if self.user_count < 1:
            raise ConfigurationError("user_count must be at least 1")
        low, high = self.ambient_range_c
        if low >= high:
            raise ConfigurationError("ambient_range_c must be (low, high)")
        low, high = self.charge_range
        if not 0.0 < low <= high <= 1.0:
            raise ConfigurationError("charge_range must be within (0, 1]")


@dataclass(frozen=True)
class Submission:
    """One user's uploaded result.

    Attributes
    ----------
    serial:
        The unit's identity (in reality: an anonymized install id).
    score:
        Workload iterations completed.
    energy_j:
        Battery energy over the workload (self-reported via fuel gauge).
    ambient_estimate:
        The app's cooldown-probe estimate of the user's room.
    true_ambient_c / true_leak_factor:
        Ground truth the real study would NOT have — kept for evaluating
        the pipeline itself.
    """

    serial: str
    score: float
    energy_j: float
    ambient_estimate: AmbientEstimate
    true_ambient_c: float
    true_leak_factor: float


def run_crowd_study(config: Optional[CrowdConfig] = None) -> List[Submission]:
    """Simulate the full §VI crowd campaign and return all submissions."""
    config = config if config is not None else CrowdConfig()
    rng = derive_stream(config.root_seed, "crowd", config.model)
    fleet = synthetic_fleet(
        config.model,
        config.user_count,
        lot_name="crowd",
        root_seed=config.root_seed,
    )
    bench = Accubench(config.protocol)
    submissions = []
    for device in fleet:
        ambient = float(rng.uniform(*config.ambient_range_c))
        charge = float(rng.uniform(*config.charge_range))
        device.reboot(soak_temp_c=ambient)
        device.connect_supply(
            Battery(device.spec.battery, state_of_charge=charge)
        )
        room = ConstantAmbient(ambient)
        try:
            estimate = cooldown_probe(
                device,
                room,
                heat_s=config.probe_heat_s,
                observe_s=config.probe_observe_s,
                dt=config.protocol.dt,
            )
        except AnalysisError:
            # An unusable decay (e.g. someone's balcony in the wind);
            # the app uploads nothing.
            continue
        result = bench.run_iteration(device, unconstrained(), room=room)
        submissions.append(
            Submission(
                serial=device.serial,
                score=result.iterations_completed,
                energy_j=result.energy_j,
                ambient_estimate=estimate,
                true_ambient_c=ambient,
                true_leak_factor=device.profile.leak_factor,
            )
        )
    return submissions


def strict_filters(
    submissions: Sequence[Submission],
    ambient_band_c: Tuple[float, float] = (22.0, 30.0),
    min_r_squared: float = 0.9,
) -> List[Submission]:
    """The paper's "strict filters": keep comparable runs only.

    Filters on the *estimated* ambient (the real pipeline has no ground
    truth) and on the decay-fit quality.
    """
    low, high = ambient_band_c
    if low >= high:
        raise AnalysisError("ambient_band_c must be (low, high)")
    return [
        s
        for s in submissions
        if s.ambient_estimate.is_confident(min_r_squared)
        and low <= s.ambient_estimate.ambient_c <= high
    ]


def spearman_rank_correlation(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Spearman's ρ between two paired sequences (ties share mean rank)."""
    if len(first) != len(second):
        raise AnalysisError("sequences must be paired")
    if len(first) < 3:
        raise AnalysisError("need at least 3 pairs for a rank correlation")

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while (
                j + 1 < len(order)
                and values[order[j + 1]] == values[order[i]]
            ):
                j += 1
            mean_rank = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                result[order[k]] = mean_rank
            i = j + 1
        return result

    ra, rb = ranks(list(first)), ranks(list(second))
    mean_a = sum(ra) / len(ra)
    mean_b = sum(rb) / len(rb)
    cov = sum((a - mean_a) * (b - mean_b) for a, b in zip(ra, rb))
    var_a = sum((a - mean_a) ** 2 for a in ra)
    var_b = sum((b - mean_b) ** 2 for b in rb)
    if var_a == 0 or var_b == 0:
        raise AnalysisError("rank correlation undefined for constant input")
    return cov / (var_a * var_b) ** 0.5


def silicon_ranking_quality(submissions: Sequence[Submission]) -> float:
    """How well scores recover the true silicon ordering.

    Returns Spearman's ρ between −leak_factor (less leakage = better
    silicon) and score; 1.0 means the crowd data ranks units exactly as
    their silicon would under lab conditions.
    """
    if len(submissions) < 3:
        raise AnalysisError("need at least 3 submissions to grade a ranking")
    truth = [-s.true_leak_factor for s in submissions]
    scores = [s.score for s in submissions]
    return spearman_rank_correlation(truth, scores)
