"""Crowdsourced benchmarking study simulator (paper §VI).

The paper's endgame: ship a benchmarking app, gather runs from phones in
the wild, and rank devices / recover bins from the data.  "The only
parameters that we cannot control for in the wild are ambient temperature
and software stack.  However, preliminary results on using the cooldown
phase as an estimate of ambient temperature are encouraging.  This, in
addition to strict filters, should enable us to compare different devices
from across the world."

This module simulates exactly that pipeline:

1. sample a population of users, each with their own unit (silicon
   lottery), room temperature, and battery charge;
2. each user's app runs a cooldown probe (ambient estimate) followed by a
   field ACCUBENCH pass, battery-powered, in their uncontrolled room;
3. apply the paper's "strict filters" (ambient-estimate band, clean decay
   fits) and measure how well the filtered ranking recovers the true
   silicon ranking.

:func:`run_crowd_study` is the serial reference implementation — one user
at a time through the per-unit engine.  The cohort planner primitives it
is built from (:func:`draw_user_params`, :func:`plan_users`,
:func:`crowd_fleet`) are shared with :mod:`repro.core.crowd_stream`, the
cohort-batched streaming engine that scales the same campaign to millions
of users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ambient_estimation import AmbientEstimate, cooldown_probe
from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.battery import Battery
from repro.device.fleet import synthetic_fleet
from repro.device.phone import Device
from repro.errors import AnalysisError, ConfigurationError
from repro.obs.metrics import default_registry
from repro.rng import DEFAULT_ROOT_SEED, derive_stream
from repro.thermal.ambient import ConstantAmbient

#: Lot name shared by the serial and streamed crowd paths; unit serials
#: (and therefore their silicon and noise streams) derive from it.
CROWD_LOT_NAME = "crowd"


@dataclass(frozen=True)
class CrowdConfig:
    """Population and field-protocol parameters.

    Attributes
    ----------
    model:
        Handset model the crowd owns.
    models:
        Optional heterogeneous population: when non-empty, participants
        cycle through these models in population order (user ``i`` owns
        ``models[i % len(models)]``) and ``model`` is ignored.  The
        assignment is a pure function of the population index — no RNG
        draws — so the parameter stream's two-uniforms-per-user
        checkpoint cursor is unchanged and any population slice can be
        materialized independently.
    user_count:
        Number of participants.
    ambient_range_c:
        Uniform range of room temperatures across the crowd.
    charge_range:
        Uniform range of battery state-of-charge at run time.
    protocol:
        The field app's (shortened) ACCUBENCH parameters.
    probe_heat_s / probe_observe_s:
        The ambient-probe cycle lengths.
    root_seed:
        Seed for population sampling.
    backend:
        Execution backend for streamed cohort dispatch (see
        :mod:`repro.core.backends`).  Backends move results without
        shaping them, so this field is excluded from the checkpoint
        fingerprint — a campaign checkpointed on one backend resumes
        bit-identically on another.
    """

    model: str = "Nexus 5"
    models: Tuple[str, ...] = ()
    user_count: int = 30
    ambient_range_c: Tuple[float, float] = (16.0, 36.0)
    charge_range: Tuple[float, float] = (0.5, 1.0)
    protocol: AccubenchConfig = field(
        default_factory=lambda: AccubenchConfig(
            warmup_s=120.0,
            workload_s=180.0,
            cooldown_target_c=40.0,
            cooldown_timeout_s=3600.0,
            iterations=1,
            dt=0.25,
            trace_decimation=20,
        )
    )
    probe_heat_s: float = 90.0
    probe_observe_s: float = 600.0
    root_seed: int = DEFAULT_ROOT_SEED
    backend: str = "auto"

    def __post_init__(self) -> None:
        from repro.core.backends import validate_backend

        validate_backend(self.backend)
        if self.user_count < 1:
            raise ConfigurationError("user_count must be at least 1")
        low, high = self.ambient_range_c
        if low >= high:
            raise ConfigurationError("ambient_range_c must be (low, high)")
        low, high = self.charge_range
        if not 0.0 < low <= high <= 1.0:
            raise ConfigurationError("charge_range must be within (0, 1]")


@dataclass(frozen=True)
class Submission:
    """One user's uploaded result.

    Attributes
    ----------
    serial:
        The unit's identity (in reality: an anonymized install id).
    score:
        Workload iterations completed.
    energy_j:
        Battery energy over the workload (self-reported via fuel gauge).
    ambient_estimate:
        The app's cooldown-probe estimate of the user's room.
    true_ambient_c / true_leak_factor:
        Ground truth the real study would NOT have — kept for evaluating
        the pipeline itself.
    """

    serial: str
    score: float
    energy_j: float
    ambient_estimate: AmbientEstimate
    true_ambient_c: float
    true_leak_factor: float


@dataclass(frozen=True)
class UserSample:
    """One planned participant: population index plus field conditions.

    The crowd parameter stream draws exactly two uniforms per user
    (ambient, then charge) in population order — the invariant both the
    serial loop and the streamed cohort planner rely on for draw-for-draw
    agreement and for checkpointable RNG cursors.
    """

    index: int
    serial: str
    ambient_c: float
    charge: float


def crowd_models(config: CrowdConfig) -> Tuple[str, ...]:
    """The population's model cycle: ``models`` if set, else ``(model,)``."""
    return tuple(config.models) if config.models else (config.model,)


def crowd_model_for(config: CrowdConfig, index: int) -> str:
    """Which model population index ``index`` owns (index-pure, no RNG)."""
    cycle = crowd_models(config)
    return cycle[index % len(cycle)]


def crowd_model_label(config: CrowdConfig) -> str:
    """Display label for the population: one model, or a ``+`` join."""
    return "+".join(crowd_models(config))


def crowd_param_stream(config: CrowdConfig) -> np.random.Generator:
    """The population parameter stream ``run_crowd_study`` consumes.

    Keyed by the single-model field regardless of ``models`` — user
    parameters (ambient, charge) are model-independent, and keeping the
    key stable means a homogeneous campaign and a mixed campaign with the
    same seed draw identical user conditions.
    """
    return derive_stream(config.root_seed, CROWD_LOT_NAME, config.model)


def draw_user_params(
    config: CrowdConfig, rng: np.random.Generator
) -> Tuple[float, float]:
    """Draw one user's (ambient °C, state of charge), in the serial order."""
    ambient = float(rng.uniform(*config.ambient_range_c))
    charge = float(rng.uniform(*config.charge_range))
    return ambient, charge


def plan_users(
    config: CrowdConfig,
    rng: np.random.Generator,
    start: int,
    count: int,
) -> List[UserSample]:
    """Materialize ``count`` users from population index ``start`` on.

    Consumes ``2 * count`` uniforms from ``rng`` — the caller owns the
    cursor (and may checkpoint the generator state between calls).
    """
    users = []
    for index in range(start, start + count):
        ambient, charge = draw_user_params(config, rng)
        users.append(
            UserSample(
                index=index,
                serial=f"{CROWD_LOT_NAME}-{index:03d}",
                ambient_c=ambient,
                charge=charge,
            )
        )
    return users


def crowd_fleet(
    config: CrowdConfig, start: int = 0, count: Optional[int] = None
) -> List[Device]:
    """Build the crowd's devices for population indices [start, start+count).

    Unit silicon is keyed per (model, lot, serial), so any slice of the
    population can be materialized independently — a mixed-model
    population builds each unit from its own index's model and gets the
    exact same device whichever cohort materializes it.  The thermal
    solver follows the field protocol's.
    """
    width = count if count is not None else config.user_count
    cycle = crowd_models(config)
    if len(cycle) == 1:
        return synthetic_fleet(
            cycle[0],
            width,
            lot_name=CROWD_LOT_NAME,
            root_seed=config.root_seed,
            thermal_solver=config.protocol.thermal_solver,
            start_index=start,
        )
    return [
        synthetic_fleet(
            crowd_model_for(config, index),
            1,
            lot_name=CROWD_LOT_NAME,
            root_seed=config.root_seed,
            thermal_solver=config.protocol.thermal_solver,
            start_index=index,
        )[0]
        for index in range(start, start + width)
    ]


def prepare_field_device(device: Device, user: UserSample) -> None:
    """Put one unit into its user's field state: soaked to the room,
    running on a partially-charged battery."""
    device.reboot(soak_temp_c=user.ambient_c)
    device.connect_supply(
        Battery(device.spec.battery, state_of_charge=user.charge)
    )


def probe_drop_reason(error: AnalysisError) -> str:
    """Classify why a cooldown probe produced no usable estimate.

    The keys are stable telemetry labels (``crowd.dropped.<reason>``),
    derived from the :func:`estimate_ambient` failure modes.
    """
    text = str(error)
    if "samples after skipping" in text:
        return "too_few_samples"
    if "uniform sampling" in text or "strictly increasing" in text:
        return "nonuniform_sampling"
    if "barely moves" in text:
        return "already_at_ambient"
    if "do not describe a decay" in text:
        return "no_clean_decay"
    return "probe_failed"


class CrowdStudyResult(Sequence):
    """Submissions plus the yield accounting a list silently discarded.

    Behaves as a sequence of :class:`Submission` (indexing, iteration,
    ``len``) for drop-in compatibility with the historical ``List``
    return, and additionally exposes which users uploaded nothing and
    why.
    """

    def __init__(
        self,
        submissions: Sequence[Submission],
        dropped: Optional[Dict[str, int]] = None,
        users: Optional[int] = None,
    ) -> None:
        self.submissions: Tuple[Submission, ...] = tuple(submissions)
        #: Users whose probe produced nothing, keyed by drop reason.
        self.dropped: Dict[str, int] = dict(dropped or {})
        #: Participants simulated (submissions + drops).
        self.users = (
            users
            if users is not None
            else len(self.submissions) + sum(self.dropped.values())
        )

    @property
    def dropped_total(self) -> int:
        """Users who uploaded nothing."""
        return sum(self.dropped.values())

    def __len__(self) -> int:
        return len(self.submissions)

    def __getitem__(self, index):
        return self.submissions[index]

    def __iter__(self) -> Iterator[Submission]:
        return iter(self.submissions)

    def __repr__(self) -> str:
        return (
            f"CrowdStudyResult({len(self.submissions)} submissions, "
            f"{self.dropped_total} dropped of {self.users} users)"
        )


def run_crowd_study(config: Optional[CrowdConfig] = None) -> CrowdStudyResult:
    """Simulate the full §VI crowd campaign, one user at a time.

    The serial reference path: exact but O(users) in both time and
    memory.  Large populations should stream through
    :func:`repro.core.crowd_stream.run_streaming_crowd_study`, which this
    function's cohort-planner helpers also feed.
    """
    config = config if config is not None else CrowdConfig()
    rng = crowd_param_stream(config)
    fleet = crowd_fleet(config)
    users = plan_users(config, rng, 0, config.user_count)
    bench = Accubench(config.protocol)
    registry = default_registry()
    submissions = []
    dropped: Dict[str, int] = {}
    for device, user in zip(fleet, users):
        prepare_field_device(device, user)
        room = ConstantAmbient(user.ambient_c)
        try:
            estimate = cooldown_probe(
                device,
                room,
                heat_s=config.probe_heat_s,
                observe_s=config.probe_observe_s,
                dt=config.protocol.dt,
            )
        except AnalysisError as error:
            # An unusable decay (e.g. someone's balcony in the wind);
            # the app uploads nothing — but the study should know how
            # much of its population it lost, and to what.
            reason = probe_drop_reason(error)
            dropped[reason] = dropped.get(reason, 0) + 1
            registry.counter(f"crowd.dropped.{reason}").inc()
            continue
        result = bench.run_iteration(device, unconstrained(), room=room)
        submissions.append(
            Submission(
                serial=device.serial,
                score=result.iterations_completed,
                energy_j=result.energy_j,
                ambient_estimate=estimate,
                true_ambient_c=user.ambient_c,
                true_leak_factor=device.profile.leak_factor,
            )
        )
    registry.counter("crowd.users").add(config.user_count)
    registry.counter("crowd.submissions").add(len(submissions))
    return CrowdStudyResult(
        submissions, dropped=dropped, users=config.user_count
    )


def strict_filters(
    submissions: Sequence[Submission],
    ambient_band_c: Tuple[float, float] = (22.0, 30.0),
    min_r_squared: float = 0.9,
) -> List[Submission]:
    """The paper's "strict filters": keep comparable runs only.

    Filters on the *estimated* ambient (the real pipeline has no ground
    truth) and on the decay-fit quality.
    """
    low, high = ambient_band_c
    if low >= high:
        raise AnalysisError("ambient_band_c must be (low, high)")
    return [
        s
        for s in submissions
        if s.ambient_estimate.is_confident(min_r_squared)
        and low <= s.ambient_estimate.ambient_c <= high
    ]


def passes_strict_filters(
    submission: Submission,
    ambient_band_c: Tuple[float, float] = (22.0, 30.0),
    min_r_squared: float = 0.9,
) -> bool:
    """One submission's :func:`strict_filters` verdict (streaming form)."""
    low, high = ambient_band_c
    if low >= high:
        raise AnalysisError("ambient_band_c must be (low, high)")
    return (
        submission.ambient_estimate.is_confident(min_r_squared)
        and low <= submission.ambient_estimate.ambient_c <= high
    )


def average_ranks(values: Sequence[float]) -> np.ndarray:
    """1-based ranks with ties sharing their group's mean rank.

    The vectorized (``scipy``-free) equivalent of ``rankdata(values,
    method="average")``: a stable argsort, group boundaries where the
    sorted values change, and each group's mean rank scattered back.
    Tie semantics are exact — equal floats share one rank.
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=boundary[1:])
    group = np.cumsum(boundary) - 1
    counts = np.bincount(group)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    # First and last 0-based positions of each group average to
    # (start + (count-1)/2); +1 converts to 1-based ranks.
    mean_rank = starts + (counts - 1) / 2.0 + 1.0
    ranks = np.empty(n)
    ranks[order] = mean_rank[group]
    return ranks


def spearman_rank_correlation(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Spearman's ρ between two paired sequences (ties share mean rank)."""
    if len(first) != len(second):
        raise AnalysisError("sequences must be paired")
    if len(first) < 3:
        raise AnalysisError("need at least 3 pairs for a rank correlation")
    ra = average_ranks(first)
    rb = average_ranks(second)
    da = ra - ra.mean()
    db = rb - rb.mean()
    var_a = float(da @ da)
    var_b = float(db @ db)
    if var_a == 0 or var_b == 0:
        raise AnalysisError("rank correlation undefined for constant input")
    return float(da @ db) / (var_a * var_b) ** 0.5


def silicon_ranking_quality(submissions: Sequence[Submission]) -> float:
    """How well scores recover the true silicon ordering.

    Returns Spearman's ρ between −leak_factor (less leakage = better
    silicon) and score; 1.0 means the crowd data ranks units exactly as
    their silicon would under lab conditions.
    """
    if len(submissions) < 3:
        raise AnalysisError("need at least 3 submissions to grade a ranking")
    truth = [-s.true_leak_factor for s in submissions]
    scores = [s.score for s in submissions]
    return spearman_rank_correlation(truth, scores)
