"""ACCUBENCH: the paper's methodology and analysis (its core contribution).

The protocol (warmup → cooldown-to-target → fixed-duration workload), the
two experiment types (UNCONSTRAINED performance, FIXED-FREQUENCY energy),
the campaign runner that reproduces the paper's study design, and the
analysis/reporting layer that turns raw iterations into the paper's tables
and figures.
"""

from repro.core.analysis import (
    energy_variation,
    normalize,
    performance_variation,
    relative_standard_deviation,
)
from repro.core.config import AccubenchConfig
from repro.core.experiments import (
    FIXED_FREQUENCY,
    UNCONSTRAINED,
    ExperimentSpec,
    fixed_frequency,
    unconstrained,
)
from repro.core.ambient_estimation import (
    AmbientEstimate,
    cooldown_probe,
    estimate_ambient,
    estimate_from_trace,
)
from repro.core.bootstrap import (
    ConfidenceInterval,
    energy_variation_ci,
    performance_variation_ci,
    variation_is_significant,
)
from repro.core.clustering import ClusterResult, choose_k, kmeans, silhouette_score
from repro.core.comparison import (
    GenerationComparison,
    compare_generations,
    generation_ladder,
)
from repro.core.crowd import (
    CrowdConfig,
    CrowdStudyResult,
    Submission,
    UserSample,
    average_ranks,
    passes_strict_filters,
    run_crowd_study,
    silicon_ranking_quality,
    spearman_rank_correlation,
    strict_filters,
)
from repro.core.crowd_stream import (
    CohortResult,
    CrowdEstimators,
    CrowdStreamResult,
    execute_cohort,
    run_streaming_crowd_study,
)
from repro.core.distributions import (
    DistributionSummary,
    PairComparison,
    compare_pair,
    summarize_workload,
)
from repro.core.efficiency import (
    EfficiencyPoint,
    efficiency_point,
    efficiency_series,
    relative_to_first,
    sd805_regression,
)
from repro.core.figure_data import (
    Series,
    bar_series,
    efficiency_figure,
    export_bundle,
    histogram_series,
    trace_series,
)
from repro.core.lower_bound import (
    expected_variation,
    fleet_size_curve,
    undersampling_factor,
)
from repro.core.protocol import Accubench
from repro.core.ranking import RankedUnit, place_unit, quality_score, rank_units
from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.core.study import Study, run_study
from repro.core.serialize import (
    dump_experiment,
    dumps_experiment,
    experiment_from_dict,
    experiment_to_dict,
    load_experiment,
)

__all__ = [
    "Accubench",
    "AccubenchConfig",
    "AmbientEstimate",
    "CampaignConfig",
    "CampaignRunner",
    "ClusterResult",
    "CohortResult",
    "ConfidenceInterval",
    "CrowdConfig",
    "CrowdEstimators",
    "CrowdStreamResult",
    "CrowdStudyResult",
    "GenerationComparison",
    "Submission",
    "UserSample",
    "DeviceResult",
    "DistributionSummary",
    "EfficiencyPoint",
    "ExperimentResult",
    "ExperimentSpec",
    "FIXED_FREQUENCY",
    "IterationResult",
    "PairComparison",
    "RankedUnit",
    "Series",
    "Study",
    "UNCONSTRAINED",
    "average_ranks",
    "bar_series",
    "choose_k",
    "compare_generations",
    "compare_pair",
    "cooldown_probe",
    "dump_experiment",
    "dumps_experiment",
    "efficiency_figure",
    "efficiency_point",
    "efficiency_series",
    "energy_variation",
    "energy_variation_ci",
    "estimate_ambient",
    "estimate_from_trace",
    "execute_cohort",
    "expected_variation",
    "experiment_from_dict",
    "experiment_to_dict",
    "export_bundle",
    "fleet_size_curve",
    "fixed_frequency",
    "generation_ladder",
    "histogram_series",
    "kmeans",
    "load_experiment",
    "normalize",
    "passes_strict_filters",
    "performance_variation",
    "performance_variation_ci",
    "place_unit",
    "quality_score",
    "rank_units",
    "relative_standard_deviation",
    "relative_to_first",
    "run_crowd_study",
    "run_streaming_crowd_study",
    "run_study",
    "sd805_regression",
    "silhouette_score",
    "silicon_ranking_quality",
    "spearman_rank_correlation",
    "strict_filters",
    "summarize_workload",
    "trace_series",
    "unconstrained",
    "undersampling_factor",
    "variation_is_significant",
]
