"""Frequency/temperature distribution analysis (paper Section IV-B).

Figures 11 and 12 compare two units' frequency and temperature
distributions over a workload and show that the *mean frequency* delta
matches the performance delta — the paper's evidence that variation comes
from thermal throttling, not background activity.  The section also makes
a subtler point: time-spent-at-temperature is **not** sufficient to predict
which device throttles harder (the Pixel device-488 ran hotter yet faster),
so the analysis here exposes both views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.sim.trace import Trace


@dataclass(frozen=True)
class DistributionSummary:
    """Distributional view of one unit's workload phase.

    Attributes
    ----------
    serial:
        Which unit.
    mean_freq_mhz / freq_p10_mhz / freq_p90_mhz:
        Big-cluster frequency statistics over the workload.
    mean_temp_c / max_temp_c:
        Die temperature statistics over the workload.
    time_above_hot_s:
        Time spent at or above the hot threshold, seconds.
    freq_histogram / temp_histogram:
        (counts, bin_edges) histograms, for plotting.
    """

    serial: str
    mean_freq_mhz: float
    freq_p10_mhz: float
    freq_p90_mhz: float
    mean_temp_c: float
    max_temp_c: float
    time_above_hot_s: float
    freq_histogram: Tuple[np.ndarray, np.ndarray]
    temp_histogram: Tuple[np.ndarray, np.ndarray]


def summarize_workload(
    trace: Trace,
    serial: str,
    hot_threshold_c: float = 70.0,
    occurrence: int = 0,
    bins: int = 24,
) -> DistributionSummary:
    """Distill one iteration trace into a :class:`DistributionSummary`."""
    freq = trace.phase_column("workload", "freq", occurrence)
    temp = trace.phase_column("workload", "cpu_temp", occurrence)
    if freq.size == 0 or temp.size == 0:
        raise AnalysisError("trace has no workload-phase samples")
    times = trace.times()
    spacing = float(times[1] - times[0]) if times.size > 1 else 0.0
    return DistributionSummary(
        serial=serial,
        mean_freq_mhz=float(freq.mean()),
        freq_p10_mhz=float(np.percentile(freq, 10)),
        freq_p90_mhz=float(np.percentile(freq, 90)),
        mean_temp_c=float(temp.mean()),
        max_temp_c=float(temp.max()),
        time_above_hot_s=float((temp >= hot_threshold_c).sum()) * spacing,
        freq_histogram=np.histogram(freq, bins=bins),
        temp_histogram=np.histogram(temp, bins=bins),
    )


@dataclass(frozen=True)
class PairComparison:
    """The Figure 11/12 comparison between two units.

    Attributes
    ----------
    faster / slower:
        Distribution summaries, ordered by mean frequency.
    mean_freq_delta:
        Fractional mean-frequency advantage of the faster unit.
    hotter_is_faster:
        True when the faster unit also spent *more* time hot — the Pixel
        counterintuitive case showing time-at-temperature is insufficient.
    """

    faster: DistributionSummary
    slower: DistributionSummary
    mean_freq_delta: float
    hotter_is_faster: bool


def compare_pair(
    first: DistributionSummary, second: DistributionSummary
) -> PairComparison:
    """Order two summaries and compute the paper's comparison metrics."""
    if first.mean_freq_mhz >= second.mean_freq_mhz:
        faster, slower = first, second
    else:
        faster, slower = second, first
    if slower.mean_freq_mhz <= 0:
        raise AnalysisError("mean frequency must be positive")
    delta = (faster.mean_freq_mhz - slower.mean_freq_mhz) / slower.mean_freq_mhz
    return PairComparison(
        faster=faster,
        slower=slower,
        mean_freq_delta=delta,
        hotter_is_faster=faster.time_above_hot_s > slower.time_above_hot_s,
    )
