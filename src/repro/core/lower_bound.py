"""Fleet-size effects: why the paper's numbers are lower bounds (§VII).

"It only takes two devices to observe variations.  While our study of
SoCs is limited ... the process variations shown in Table II can be
considered as a minimum lower-bound to the overall variation for each
SoC."  A spread metric of the form (max − min)/min can only *grow* as
more units are sampled, and its expectation under subsampling quantifies
how much a small study understates the population.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.analysis import performance_variation
from repro.errors import AnalysisError
from repro.rng import derive_stream

#: Default subsampling repetitions per fleet size.
DEFAULT_RESAMPLES = 1000


def expected_variation(
    population_values: Sequence[float],
    fleet_size: int,
    metric: Callable[[List[float]], float] = performance_variation,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> float:
    """Expected spread a ``fleet_size``-unit study would report.

    Subsamples (without replacement) fleets of the given size from the
    population's per-unit values and averages the metric.
    """
    values = np.asarray(population_values, dtype=float)
    if values.ndim != 1 or len(values) < 2:
        raise AnalysisError("population needs at least two units")
    if not 2 <= fleet_size <= len(values):
        raise AnalysisError(
            f"fleet_size must be within [2, {len(values)}]; got {fleet_size}"
        )
    if resamples < 10:
        raise AnalysisError("use at least 10 resamples")
    rng = derive_stream(seed, "lower-bound", fleet_size)
    outcomes = np.empty(resamples)
    for i in range(resamples):
        chosen = rng.choice(values, size=fleet_size, replace=False)
        outcomes[i] = metric(list(chosen))
    return float(outcomes.mean())


def fleet_size_curve(
    population_values: Sequence[float],
    sizes: Sequence[int],
    metric: Callable[[List[float]], float] = performance_variation,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> Dict[int, float]:
    """Expected spread as a function of study size — the §VII curve."""
    if not sizes:
        raise AnalysisError("give at least one fleet size")
    return {
        size: expected_variation(
            population_values, size, metric, resamples, seed
        )
        for size in sizes
    }


def undersampling_factor(
    population_values: Sequence[float],
    study_size: int,
    metric: Callable[[List[float]], float] = performance_variation,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> float:
    """Population variation over a small study's expected variation.

    A factor of 1.4 means a ``study_size``-unit study typically reports
    only ~70% of the population's true spread — the quantified version of
    the paper's lower-bound caveat.
    """
    values = list(population_values)
    expected = expected_variation(values, study_size, metric, resamples, seed)
    if expected <= 0:
        raise AnalysisError("expected variation is zero; factor undefined")
    return metric(values) / expected
