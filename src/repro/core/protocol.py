"""The ACCUBENCH protocol state machine (paper Section III, Figure 4).

One iteration:

1. **Warmup** — acquire a wakelock and burn all cores for a fixed time, so
   a previously-idle CPU reaches the same thermal state as a busy one.
2. **Cooldown** — release the wakelock, sleep, and wake every 5 s to poll
   the temperature sensor until it reports the target temperature.  This
   normalizes the thermal state *downward* across devices and iterations.
3. **Workload** — reacquire the wakelock, zero the power monitor, and burn
   all cores for T_workload; performance is iterations completed, energy
   is the monitor's integral.

A fixed-*work* variant (:meth:`Accubench.run_fixed_work`) supports the
paper's Figures 1 and 2, which report energy to complete a set amount of
work rather than work completed in set time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import AccubenchConfig
from repro.core.experiments import ExperimentSpec
from repro.core.results import IterationResult
from repro.device.phone import Device
from repro.errors import ProtocolError
from repro.instruments.thermabox import Thermabox
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.sim.engine import World
from repro.soc.perf import PI_ITERATION_OPS, iterations_from_ops
from repro.thermal.ambient import AmbientProfile

#: The cooldown target can never be below ambient; hold at least this
#: margin above the chamber/room temperature, °C.
MIN_COOLDOWN_MARGIN_C = 6.0


class Accubench:
    """Runs the protocol against one device."""

    def __init__(self, config: Optional[AccubenchConfig] = None) -> None:
        self.config = config if config is not None else AccubenchConfig()

    def run_iteration(
        self,
        device: Device,
        experiment: ExperimentSpec,
        room: Optional[AmbientProfile] = None,
        chamber: Optional[Thermabox] = None,
    ) -> IterationResult:
        """Run one warmup → cooldown → workload pass.

        The device must be powered from an energy-metered supply — the
        methodology's Monsoon, or a :class:`~repro.device.battery.Battery`
        (the paper compares both on the LG G5).  Device thermal and
        mitigation state carries over between calls — exactly like the
        paper's back-to-back iterations; the warmup/cooldown phases exist
        to normalize it.
        """
        supply = self._require_energy_metering(device)
        config = self.config
        world = World(
            device,
            room=room,
            chamber=chamber,
            dt=config.dt,
            trace_decimation=config.trace_decimation,
            sleep_fast_forward=config.sleep_fast_forward,
        )
        invariants = self._attach_invariants(world)

        self._configure_frequency(device, experiment)
        registry = default_registry()
        sim_clock = lambda: world.now  # noqa: E731

        # Phase 1: warmup.
        device.acquire_wakelock()
        device.start_load(config.utilization, config.memory_boundedness)
        world.set_phase("warmup")
        with registry.span("phase.warmup", clock=sim_clock):
            world.run_for(config.warmup_s)

        # Phase 2: cooldown (suspend; poll the sensor every few seconds).
        device.stop_load()
        device.release_wakelock()
        world.set_phase("cooldown")
        target_c = max(
            config.cooldown_target_c, world.ambient_c + MIN_COOLDOWN_MARGIN_C
        )
        with registry.span("phase.cooldown", clock=sim_clock):
            cooldown_s = world.run_until(
                lambda w: w.device.read_cpu_temp() <= target_c,
                check_every_s=config.cooldown_poll_s,
                timeout_s=config.cooldown_timeout_s,
            )

        # Phase 3: workload (the measured window).
        device.acquire_wakelock()
        device.start_load(config.utilization, config.memory_boundedness)
        energy_before = supply.energy_drawn_j
        ops_before = world.ops_total
        world.set_phase("workload")
        with registry.span("phase.workload", clock=sim_clock):
            world.run_for(config.workload_s)
        energy_j = supply.energy_drawn_j - energy_before
        mean_power_w = energy_j / config.workload_s
        completed = iterations_from_ops(world.ops_total - ops_before)
        device.stop_load()
        device.release_wakelock()
        world.close()
        if invariants is not None:
            invariants.finish(world)
        self._publish_world_metrics(registry, world)

        return IterationResult(
            model=device.spec.name,
            serial=device.serial,
            workload=experiment.name,
            iterations_completed=completed,
            energy_j=energy_j,
            mean_power_w=mean_power_w,
            mean_freq_mhz=float(
                np.mean(world.trace.phase_column("workload", "freq"))
            ),
            max_cpu_temp_c=world.trace.max("cpu_temp"),
            cooldown_s=cooldown_s,
            time_throttled_s=self._throttled_time(world),
            trace=world.trace if config.keep_traces else None,
        )

    def run_fixed_work(
        self,
        device: Device,
        work_iterations: float,
        room: Optional[AmbientProfile] = None,
        chamber: Optional[Thermabox] = None,
        timeout_s: float = 7200.0,
        skip_conditioning: bool = False,
        fixed_freq_mhz: Optional[float] = None,
    ) -> IterationResult:
        """Measure energy and time to complete a fixed amount of work.

        Used by the Figure 1 (bin energy at fixed work) and Figure 2
        (ambient-temperature energy scaling) reproductions.  Warmup and
        cooldown still run unless ``skip_conditioning`` — normalizing the
        starting state matters just as much for energy comparisons.
        ``fixed_freq_mhz`` pins the clock (Figure 2 runs at a set
        frequency); ``None`` leaves the performance governor in charge.
        """
        if work_iterations <= 0:
            raise ProtocolError("work_iterations must be positive")
        supply = self._require_energy_metering(device)
        config = self.config
        world = World(
            device,
            room=room,
            chamber=chamber,
            dt=config.dt,
            trace_decimation=config.trace_decimation,
            sleep_fast_forward=config.sleep_fast_forward,
        )
        invariants = self._attach_invariants(world)
        if fixed_freq_mhz is None:
            device.unconstrain_frequency()
        else:
            device.set_fixed_frequency(fixed_freq_mhz)

        registry = default_registry()
        sim_clock = lambda: world.now  # noqa: E731
        if not skip_conditioning:
            device.acquire_wakelock()
            device.start_load(config.utilization, config.memory_boundedness)
            world.set_phase("warmup")
            with registry.span("phase.warmup", clock=sim_clock):
                world.run_for(config.warmup_s)
            device.stop_load()
            device.release_wakelock()
            world.set_phase("cooldown")
            target_c = max(
                config.cooldown_target_c, world.ambient_c + MIN_COOLDOWN_MARGIN_C
            )
            with registry.span("phase.cooldown", clock=sim_clock):
                world.run_until(
                    lambda w: w.device.read_cpu_temp() <= target_c,
                    check_every_s=config.cooldown_poll_s,
                    timeout_s=config.cooldown_timeout_s,
                )

        device.acquire_wakelock()
        device.start_load(config.utilization, config.memory_boundedness)
        energy_before = supply.energy_drawn_j
        ops_before = world.ops_total
        ops_target = ops_before + work_iterations * PI_ITERATION_OPS
        world.set_phase("workload")
        started = world.now
        with registry.span("phase.workload", clock=sim_clock):
            world.run_until(
                lambda w: w.ops_total >= ops_target,
                check_every_s=max(config.dt, 1.0),
                timeout_s=timeout_s,
            )
        duration_s = world.now - started
        energy_j = supply.energy_drawn_j - energy_before
        mean_power_w = energy_j / duration_s if duration_s > 0 else 0.0
        device.stop_load()
        device.release_wakelock()
        world.close()
        if invariants is not None:
            invariants.finish(world)
        self._publish_world_metrics(registry, world)

        return IterationResult(
            model=device.spec.name,
            serial=device.serial,
            workload=f"FIXED-WORK({work_iterations:g})",
            iterations_completed=duration_s,  # time-to-completion, seconds
            energy_j=energy_j,
            mean_power_w=mean_power_w,
            mean_freq_mhz=float(
                np.mean(world.trace.phase_column("workload", "freq"))
            ),
            max_cpu_temp_c=world.trace.max("cpu_temp"),
            cooldown_s=0.0,
            time_throttled_s=self._throttled_time(world),
            trace=world.trace if config.keep_traces else None,
        )

    # -- internals --------------------------------------------------------

    def _attach_invariants(self, world: World):
        """Attach the runtime invariant suite when the config asks for it.

        Imported lazily: :mod:`repro.check` depends on the runner, which
        depends on this module.
        """
        if not self.config.check_invariants:
            return None
        from repro.check.invariants import InvariantSuite

        suite = InvariantSuite()
        world.attach_observer(suite)
        return suite

    @staticmethod
    def _publish_world_metrics(registry: MetricsRegistry, world: World) -> None:
        """Harvest one finished world's tallies into the registry.

        Worlds are created per protocol iteration, so their counts are
        already per-iteration deltas.  Every key is published even at
        zero, so a metrics document always has the full schema regardless
        of solver or workload.
        """
        if not registry.enabled:
            return
        looped = world.clock.steps - world.fast_forward_steps
        registry.counter("engine.steps").add(looped)
        registry.counter("engine.fast_forward_steps").add(world.fast_forward_steps)
        registry.counter("engine.fast_forward_windows").add(world.fast_forwards)
        registry.counter("engine.sim_time_s").add(world.now)
        events = world.events
        registry.counter("engine.throttle_events").add(
            events.count("throttle-step")
        )
        registry.counter("engine.core_offline_events").add(
            events.count("core-offline")
        )
        registry.counter("protocol.iterations").inc()

    @staticmethod
    def _require_energy_metering(device: Device):
        """The supply must expose cumulative energy accounting."""
        supply = device.supply
        if not hasattr(supply, "energy_drawn_j"):
            raise ProtocolError(
                "ACCUBENCH measures energy at the supply: power the device "
                "from a MonsoonPowerMonitor or Battery (both meter energy "
                "via .energy_drawn_j)"
            )
        return supply

    @staticmethod
    def _configure_frequency(device: Device, experiment: ExperimentSpec) -> None:
        if experiment.is_unconstrained:
            device.unconstrain_frequency()
        else:
            assert experiment.fixed_freq_mhz is not None  # spec invariant
            device.set_fixed_frequency(experiment.fixed_freq_mhz)

    @staticmethod
    def _throttled_time(world: World) -> float:
        trace = world.trace
        try:
            steps = trace.phase_column("workload", "throttle_steps")
        except Exception:  # no workload phase recorded
            return 0.0
        times = trace.times()
        if times.size < 2 or steps.size == 0:
            return 0.0
        sample_spacing = float(times[1] - times[0])
        return float((steps > 0).sum()) * sample_spacing
