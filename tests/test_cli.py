"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_fleet_defaults(self):
        args = build_parser().parse_args(["run-fleet", "Nexus 5"])
        args.experiment == "both"
        assert args.scale == 1.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_solver_defaults_to_euler(self):
        args = build_parser().parse_args(["run-fleet", "Nexus 5"])
        assert args.solver == "euler"

    def test_solver_expm_accepted(self):
        args = build_parser().parse_args(
            ["run-fleet", "Nexus 5", "--solver", "expm"]
        )
        assert args.solver == "expm"

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-fleet", "Nexus 5", "--solver", "rk4"]
            )


class TestListDevices:
    def test_lists_all_models(self, capsys):
        assert main(["list-devices"]) == 0
        out = capsys.readouterr().out
        for model in ("Nexus 5", "Nexus 6", "Nexus 6P", "LG G5", "Google Pixel"):
            assert model in out

    def test_shows_soc_and_process(self, capsys):
        main(["list-devices"])
        out = capsys.readouterr().out
        assert "SD-800" in out
        assert "28nm-LP" in out
        assert "14nm-FinFET" in out


class TestTable1:
    def test_prints_bins(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Bin-0" in out
        assert "1100" in out


class TestRunFleet:
    def test_unconstrained_run(self, capsys):
        code = main([
            "run-fleet", "Nexus 5",
            "--experiment", "unconstrained",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "performance variation" in out
        assert "bin-0" in out

    def test_json_dump(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code = main([
            "run-fleet", "Nexus 5",
            "--experiment", "fixed",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
            "--json", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert "fixed-frequency" in payload
        assert payload["fixed-frequency"]["model"] == "Nexus 5"

    def test_expm_solver_end_to_end(self, capsys):
        code = main([
            "run-fleet", "Nexus 5",
            "--experiment", "unconstrained",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
            "--solver", "expm",
        ])
        assert code == 0
        assert "performance variation" in capsys.readouterr().out

    def test_unknown_model_is_clean_error(self, capsys):
        code = main([
            "run-fleet", "iPhone 7", "--scale", "0.12", "--no-thermabox",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestRunFleetTelemetry:
    RUN = [
        "run-fleet", "Nexus 5",
        "--experiment", "unconstrained",
        "--scale", "0.12", "--iterations", "1", "--no-thermabox",
    ]

    def test_metrics_out_writes_document(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main(self.RUN + ["--metrics-out", str(metrics_path)]) == 0
        assert "wrote metrics to" in capsys.readouterr().out
        document = json.loads(metrics_path.read_text())
        assert document["format"] == "repro-metrics-v1"
        for key in (
            "engine.steps",
            "engine.fast_forward_windows",
            "propagator.cache_hits",
            "tasks.completed",
        ):
            assert key in document["counters"], key
        span_names = {span["name"] for span in document["spans"]}
        assert {"phase.warmup", "phase.cooldown", "phase.workload"} <= span_names
        assert document["histograms"]["task.wall_s"]["count"] == 4

    def test_metrics_collection_leaves_results_unchanged(self, capsys, tmp_path):
        plain = tmp_path / "plain.json"
        instrumented = tmp_path / "instrumented.json"
        main(self.RUN + ["--json", str(plain)])
        main(self.RUN + [
            "--json", str(instrumented),
            "--metrics-out", str(tmp_path / "metrics.json"),
        ])
        assert instrumented.read_text() == plain.read_text()

    def test_progress_lines_on_stderr(self, capsys):
        assert main(self.RUN + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "[1/4]" in err
        assert "[4/4]" in err
        assert "bin-0" in err


class TestReport:
    def metrics_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        main([
            "run-fleet", "Nexus 5",
            "--experiment", "unconstrained",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
            "--metrics-out", str(path),
        ])
        return path

    def test_summary_table(self, capsys, tmp_path):
        path = self.metrics_file(tmp_path)
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.steps" in out
        assert "phase.workload" in out
        assert "task.wall_s" in out

    def test_prometheus_dump(self, capsys, tmp_path):
        path = self.metrics_file(tmp_path)
        capsys.readouterr()
        assert main(["report", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_steps counter" in out
        assert "repro_task_wall_s_count 4" in out

    def test_missing_file_is_clean_error(self, capsys, tmp_path):
        code = main(["report", str(tmp_path / "absent.json")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTable2:
    def test_subset_study(self, capsys):
        code = main([
            "table2", "--models", "Nexus 6",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SD-805" in out
        assert "Nexus 6" in out


class TestEstimateAmbient:
    def test_probe_reports_estimate(self, capsys):
        code = main([
            "estimate-ambient", "Nexus 5",
            "--ambient", "30", "--observe", "420",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated" in out
        assert "true ambient 30.0" in out


class TestCrowd:
    def test_small_crowd(self, capsys):
        code = main([
            "crowd", "--users", "4", "--scale", "0.3", "--seed", "11",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "submissions from 4 users" in out
        assert "ranking quality" in out

    def test_streamed_crowd_checkpoint_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "campaign.json"
        base = [
            "crowd", "--users", "6", "--scale", "0.1", "--seed", "11",
            "--checkpoint", str(checkpoint), "--cohort-size", "3",
        ]
        code = main(base + ["--stop-after-cohorts", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(1/2 cohorts of 3)" in out
        assert "resume with --checkpoint" in out
        assert checkpoint.exists()

        code = main(base)
        assert code == 0
        out = capsys.readouterr().out
        assert "6 submissions from 6 users (2/2 cohorts of 3)" in out
        assert "score quantiles (streamed):" in out


class TestTelemetryPlane:
    CROWD = [
        "crowd", "--users", "6", "--scale", "0.1", "--seed", "11",
        "--stream", "--cohort-size", "3",
    ]
    FLEET = [
        "run-fleet", "Nexus 5", "--experiment", "unconstrained",
        "--scale", "0.12", "--iterations", "1", "--no-thermabox",
    ]

    def test_watch_parser_defaults(self):
        args = build_parser().parse_args(["watch", "http://127.0.0.1:9100"])
        assert args.interval == 2.0
        assert not args.once

    def test_crowd_json_writes_summary_and_manifest(self, capsys, tmp_path):
        summary = tmp_path / "crowd.json"
        assert main(self.CROWD + ["--json", str(summary)]) == 0
        assert "+ manifest" in capsys.readouterr().out
        manifest = tmp_path / "crowd.json.manifest.json"
        assert manifest.exists()

        # report sniffs both document kinds.
        assert main(["report", str(summary)]) == 0
        out = capsys.readouterr().out
        assert "crowd-stream summary" in out
        assert "fingerprint" in out
        assert main(["report", str(manifest)]) == 0
        assert "run manifest" in capsys.readouterr().out

        # watch renders a manifest file directly.
        assert main(["watch", str(manifest)]) == 0
        assert "run manifest" in capsys.readouterr().out

    def test_report_spans_tree(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        main(self.FLEET + ["--metrics-out", str(path)])
        capsys.readouterr()
        assert main(["report", str(path), "--spans-tree"]) == 0
        out = capsys.readouterr().out
        assert "phase.workload" in out
        assert "phase.warmup" in out

    def test_crowd_serve_announces_endpoint(self, capsys):
        assert main(self.CROWD + ["--serve", "0"]) == 0
        assert "serving telemetry at http://" in capsys.readouterr().err

    def test_strict_watchdog_healthy_run_exits_zero(self):
        assert main(self.CROWD + ["--strict-watchdog"]) == 0

    def test_run_fleet_serve_writes_manifest(self, capsys, tmp_path):
        json_path = tmp_path / "fleet.json"
        code = main(self.FLEET + ["--serve", "0", "--json", str(json_path)])
        assert code == 0
        assert "serving telemetry at" in capsys.readouterr().err
        manifest = tmp_path / "fleet.json.manifest.json"
        assert manifest.exists()
        document = json.loads(manifest.read_text())
        assert document["format"] == "repro-manifest-v1"
        assert document["kind"] == "fleet"


class TestExportFleet:
    def test_csv_export(self, capsys, tmp_path):
        code = main([
            "export-fleet", "Nexus 5",
            "--out", str(tmp_path),
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
        ])
        assert code == 0
        perf_csv = (tmp_path / "nexus-5-performance.csv").read_text()
        assert perf_csv.startswith("unit_index,raw,normalized")
        assert len(perf_csv.strip().splitlines()) == 5  # header + 4 units
        assert (tmp_path / "nexus-5-energy.csv").exists()


class TestValidateCommand:
    def test_single_model_validation(self, capsys):
        # Nexus 6's fleet has near-identical silicon: its bands hold even
        # at a heavily shortened protocol, unlike throttling-driven bands.
        code = main([
            "validate", "--models", "Nexus 6",
            "--scale", "0.3", "--iterations", "2", "--no-thermabox",
        ])
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert code in (0, 1)  # report renders either way
        assert "Nexus 6 energy variation" in out


class TestCheckCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.golden_dir == "tests/golden"
        assert args.scale == 0.05
        assert not args.differential
        assert not args.update_golden

    def test_differential_section_runs(self, capsys):
        code = main([
            "check", "--differential", "--models", "Nexus 5",
            "--scale", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "solver" in out
        assert "PASS" in out

    def test_invariants_section_runs(self, capsys):
        code = main([
            "check", "--invariants", "--models", "Nexus 5",
            "--scale", "0.02", "--iterations", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "invariants" in out
        assert "PASS" in out

    def test_update_then_check_golden_round_trip(self, capsys, tmp_path):
        assert main([
            "check", "--update-golden", "--models", "Nexus 5",
            "--golden-dir", str(tmp_path), "--scale", "0.02",
        ]) == 0
        assert "nexus-5.json" in capsys.readouterr().out
        code = main([
            "check", "--golden", "--models", "Nexus 5",
            "--golden-dir", str(tmp_path),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_missing_golden_fails_cleanly(self, capsys, tmp_path):
        code = main([
            "check", "--golden", "--models", "Nexus 5",
            "--golden-dir", str(tmp_path / "void"),
        ])
        assert code == 1
