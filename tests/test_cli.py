"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_fleet_defaults(self):
        args = build_parser().parse_args(["run-fleet", "Nexus 5"])
        args.experiment == "both"
        assert args.scale == 1.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_solver_defaults_to_euler(self):
        args = build_parser().parse_args(["run-fleet", "Nexus 5"])
        assert args.solver == "euler"

    def test_solver_expm_accepted(self):
        args = build_parser().parse_args(
            ["run-fleet", "Nexus 5", "--solver", "expm"]
        )
        assert args.solver == "expm"

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-fleet", "Nexus 5", "--solver", "rk4"]
            )


class TestListDevices:
    def test_lists_all_models(self, capsys):
        assert main(["list-devices"]) == 0
        out = capsys.readouterr().out
        for model in ("Nexus 5", "Nexus 6", "Nexus 6P", "LG G5", "Google Pixel"):
            assert model in out

    def test_shows_soc_and_process(self, capsys):
        main(["list-devices"])
        out = capsys.readouterr().out
        assert "SD-800" in out
        assert "28nm-LP" in out
        assert "14nm-FinFET" in out


class TestTable1:
    def test_prints_bins(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Bin-0" in out
        assert "1100" in out


class TestRunFleet:
    def test_unconstrained_run(self, capsys):
        code = main([
            "run-fleet", "Nexus 5",
            "--experiment", "unconstrained",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "performance variation" in out
        assert "bin-0" in out

    def test_json_dump(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code = main([
            "run-fleet", "Nexus 5",
            "--experiment", "fixed",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
            "--json", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert "fixed-frequency" in payload
        assert payload["fixed-frequency"]["model"] == "Nexus 5"

    def test_expm_solver_end_to_end(self, capsys):
        code = main([
            "run-fleet", "Nexus 5",
            "--experiment", "unconstrained",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
            "--solver", "expm",
        ])
        assert code == 0
        assert "performance variation" in capsys.readouterr().out

    def test_unknown_model_is_clean_error(self, capsys):
        code = main([
            "run-fleet", "iPhone 7", "--scale", "0.12", "--no-thermabox",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTable2:
    def test_subset_study(self, capsys):
        code = main([
            "table2", "--models", "Nexus 6",
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SD-805" in out
        assert "Nexus 6" in out


class TestEstimateAmbient:
    def test_probe_reports_estimate(self, capsys):
        code = main([
            "estimate-ambient", "Nexus 5",
            "--ambient", "30", "--observe", "420",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated" in out
        assert "true ambient 30.0" in out


class TestCrowd:
    def test_small_crowd(self, capsys):
        code = main([
            "crowd", "--users", "4", "--scale", "0.3", "--seed", "11",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "submissions from 4 users" in out
        assert "ranking quality" in out


class TestExportFleet:
    def test_csv_export(self, capsys, tmp_path):
        code = main([
            "export-fleet", "Nexus 5",
            "--out", str(tmp_path),
            "--scale", "0.12", "--iterations", "1", "--no-thermabox",
        ])
        assert code == 0
        perf_csv = (tmp_path / "nexus-5-performance.csv").read_text()
        assert perf_csv.startswith("unit_index,raw,normalized")
        assert len(perf_csv.strip().splitlines()) == 5  # header + 4 units
        assert (tmp_path / "nexus-5-energy.csv").exists()


class TestValidateCommand:
    def test_single_model_validation(self, capsys):
        # Nexus 6's fleet has near-identical silicon: its bands hold even
        # at a heavily shortened protocol, unlike throttling-driven bands.
        code = main([
            "validate", "--models", "Nexus 6",
            "--scale", "0.3", "--iterations", "2", "--no-thermabox",
        ])
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert code in (0, 1)  # report renders either way
        assert "Nexus 6 energy variation" in out
