"""Acceptance validation."""

import pytest

from repro.core.runner import CampaignConfig, CampaignRunner
from repro.errors import ConfigurationError
from repro.validation import (
    CheckResult,
    all_passed,
    render_report,
    validate_model,
    validate_study,
)


class TestCheckResult:
    def test_fields(self):
        check = CheckResult(
            name="x", passed=True, measured=0.15, expected="0.1..0.2"
        )
        assert check.passed


class TestReport:
    def test_render(self):
        checks = [
            CheckResult("a check", True, 0.15, "0.1..0.2"),
            CheckResult("another", False, 0.5, "< 0.04"),
        ]
        text = render_report(checks)
        assert "[PASS] a check" in text
        assert "[FAIL] another" in text
        assert "1/2 checks passed" in text

    def test_all_passed(self):
        good = [CheckResult("a", True, 0.0, "x")]
        bad = good + [CheckResult("b", False, 0.0, "x")]
        assert all_passed(good)
        assert not all_passed(bad)


class TestValidateModel:
    @pytest.fixture(scope="class")
    def mid_runner(self):
        # Mid-scale protocol: long enough that the calibrated physics
        # expresses itself, short enough for the test suite.
        from repro.core.config import AccubenchConfig

        config = CampaignConfig(
            accubench=AccubenchConfig(
                warmup_s=90.0, workload_s=150.0, cooldown_target_c=38.0,
                cooldown_timeout_s=2400.0, iterations=2, dt=0.25,
                trace_decimation=4,
            ),
            use_thermabox=False,
        )
        return CampaignRunner(config)

    def test_unknown_model_rejected(self, mid_runner):
        with pytest.raises(ConfigurationError):
            validate_model(mid_runner, "OnePlus 3T")

    def test_nexus5_validates(self, mid_runner):
        checks = validate_model(mid_runner, "Nexus 5")
        assert len(checks) == 4
        by_name = {c.name: c for c in checks}
        assert by_name["Nexus 5 performance variation"].passed
        assert by_name["Nexus 5 fixed-frequency perf spread"].passed

    def test_study_subset(self, mid_runner):
        checks = validate_study(mid_runner, models=["Nexus 6"])
        assert len(checks) == 4
        assert all(c.name.startswith("Nexus 6") for c in checks)
