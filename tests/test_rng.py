"""Deterministic random-stream derivation."""

import numpy as np
import pytest

from repro.rng import DEFAULT_ROOT_SEED, derive_seed, derive_stream


class TestDeriveStream:
    def test_same_keys_same_sequence(self):
        a = derive_stream(42, "nexus5", "unit-1").random(8)
        b = derive_stream(42, "nexus5", "unit-1").random(8)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = derive_stream(42, "nexus5", "unit-1").random(8)
        b = derive_stream(42, "nexus5", "unit-2").random(8)
        assert not np.array_equal(a, b)

    def test_different_root_seed_differs(self):
        a = derive_stream(1, "x").random(8)
        b = derive_stream(2, "x").random(8)
        assert not np.array_equal(a, b)

    def test_int_keys_accepted(self):
        gen = derive_stream(0, 7, "mixed", 13)
        assert 0.0 <= gen.random() < 1.0

    def test_key_order_matters(self):
        a = derive_stream(0, "a", "b").random(4)
        b = derive_stream(0, "b", "a").random(4)
        assert not np.array_equal(a, b)

    def test_bool_key_rejected(self):
        with pytest.raises(TypeError):
            derive_stream(0, True)

    def test_float_key_rejected(self):
        with pytest.raises(TypeError):
            derive_stream(0, 3.14)  # type: ignore[arg-type]

    def test_streams_are_independent_generators(self):
        a = derive_stream(0, "x")
        b = derive_stream(0, "y")
        a.random(1000)
        # Consuming one stream must not disturb the other.
        assert derive_stream(0, "y").random() == b.random()


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(9, "a") == derive_seed(9, "a")

    def test_distinct(self):
        assert derive_seed(9, "a") != derive_seed(9, "b")

    def test_in_range(self):
        seed = derive_seed(DEFAULT_ROOT_SEED, "anything")
        assert 0 <= seed < 2**63
