"""Invariant checkers: clean runs pass, sabotaged physics is caught."""

import pytest

from repro.check.invariants import (
    EnergyConservation,
    InvariantSuite,
    MonotoneCooldown,
    TemperatureBounds,
    ThrottleConsistency,
    TraceTimeMonotone,
    default_invariants,
)
from repro.check.strategies import scenario_device, scenario_world
from repro.errors import InvariantViolation, SimulationError
from repro.soc.throttling import MitigationState


def warm_world(**kwargs):
    world = scenario_world(dt=0.2, trace_decimation=1, **kwargs)
    world.device.acquire_wakelock()
    world.device.start_load()
    return world


class TestObserverPlumbing:
    def test_suite_observes_every_step(self):
        world = warm_world()
        suite = InvariantSuite()
        world.attach_observer(suite)
        world.run_for(4.0)
        assert suite.steps_checked == 20

    def test_double_attach_rejected(self):
        world = warm_world()
        world.attach_observer(InvariantSuite())
        with pytest.raises(SimulationError):
            world.attach_observer(InvariantSuite())

    def test_detach_returns_observer(self):
        world = warm_world()
        suite = InvariantSuite()
        world.attach_observer(suite)
        assert world.detach_observer() is suite
        assert world.observer is None
        world.attach_observer(InvariantSuite())  # re-attach now fine

    def test_default_invariants_are_fresh_instances(self):
        first, second = default_invariants(), default_invariants()
        assert len(first) == 5
        assert all(a is not b for a, b in zip(first, second))


class TestCleanRunsPass:
    def test_full_suite_on_warm_run(self):
        world = warm_world()
        suite = InvariantSuite()
        world.attach_observer(suite)
        world.set_phase("warmup")
        world.run_for(10.0)
        world.close()
        suite.finish(world)
        assert suite.steps_checked > 0

    def test_full_suite_through_fast_forwarded_cooldown(self):
        world = scenario_world(
            dt=0.2, thermal_solver="expm", sleep_fast_forward=True
        )
        world.device.thermal.settle_to(55.0)
        suite = InvariantSuite()
        world.attach_observer(suite)
        world.set_phase("cooldown")
        world.run_until(
            lambda w: w.device.read_cpu_temp() <= 40.0,
            check_every_s=5.0,
            timeout_s=7200.0,
        )
        world.close()
        suite.finish(world)
        assert world.fast_forwards > 0
        assert suite.steps_checked > 0


class TestViolationsCaught:
    def test_energy_meter_tampering_detected(self):
        world = warm_world()
        world.attach_observer(InvariantSuite([EnergyConservation()]))
        world.run_for(2.0)
        world.device.supply._energy_total_j += 5.0  # break the identity
        with pytest.raises(InvariantViolation, match="energy-conservation"):
            world.run_for(1.0)

    def test_junction_ceiling_enforced(self):
        world = warm_world()
        world.attach_observer(
            InvariantSuite([TemperatureBounds(junction_max_c=30.0)])
        )
        with pytest.raises(InvariantViolation, match="junction ceiling"):
            world.run_for(60.0)

    def test_cooling_below_every_boundary_detected(self):
        world = scenario_world(dt=0.2, trace_decimation=1)
        world.attach_observer(InvariantSuite([TemperatureBounds()]))
        world.run_for(1.0)
        for name, temp in world.device.thermal.temperatures().items():
            world.device.thermal.set_temperature(name, temp - 40.0)
        with pytest.raises(InvariantViolation, match="coldest boundary"):
            world.run_for(1.0)

    def test_sleeping_device_heating_detected(self):
        world = scenario_world(dt=0.2, trace_decimation=1)
        world.device.thermal.settle_to(55.0)
        world.attach_observer(InvariantSuite([MonotoneCooldown()]))
        world.run_for(2.0)  # asleep, cooling: fine
        for name, temp in world.device.thermal.temperatures().items():
            world.device.thermal.set_temperature(name, temp + 5.0)
        with pytest.raises(InvariantViolation, match="monotone-cooldown"):
            world.run_for(1.0)

    def test_cold_throttle_step_detected(self):
        world = scenario_world(dt=0.2, trace_decimation=1)
        world.attach_observer(InvariantSuite([ThrottleConsistency()]))
        world.run_for(1.0)
        # Deepen mitigation while the die is at room temperature.
        world.device.soc.mitigation = MitigationState(ceiling_steps=2)
        with pytest.raises(InvariantViolation, match="throttle-consistency"):
            world.run_for(1.0)

    def test_stalled_trace_time_detected(self):
        world = warm_world()
        invariant = TraceTimeMonotone()
        world.attach_observer(InvariantSuite([invariant]))
        world.run_for(1.0)
        # Inject a stalled sample behind Trace.append's back (append now
        # overwrites same-stamp rows), emulating an engine that records
        # without advancing its clock.
        trace = world.trace
        trace._buffer[trace._size] = trace._buffer[trace._size - 1]
        trace._size += 1
        trace._views.clear()
        with pytest.raises(InvariantViolation, match="trace-time-monotone"):
            world.run_for(1.0)

    def test_violation_carries_context(self):
        world = warm_world()
        world.attach_observer(
            InvariantSuite([TemperatureBounds(junction_max_c=30.0)])
        )
        world.set_phase("warmup")
        with pytest.raises(InvariantViolation) as caught:
            world.run_for(60.0)
        message = str(caught.value)
        assert "phase warmup" in message
        assert "t=" in message
        assert world.device.serial in message


class TestProtocolIntegration:
    def test_check_invariants_config_runs_clean(self, fast_config):
        from dataclasses import replace

        from repro.core.experiments import unconstrained
        from repro.core.runner import CampaignConfig, CampaignRunner

        config = CampaignConfig(
            accubench=replace(fast_config, check_invariants=True),
            use_thermabox=False,
        )
        result = CampaignRunner(config).run_device(
            scenario_device(), unconstrained(), iterations=1
        )
        assert result.iterations[0].energy_j > 0.0

    @pytest.mark.parametrize("batch", [False, True])
    def test_invariants_with_fast_forward_at_tiny_scale(self, batch):
        # Regression: at scales where a cooldown fast-forward window ends
        # exactly on a decimated step's clock reading, the engine used to
        # record two trace samples with the same stamp, tripping the
        # trace-time-monotone checker.  Same-stamp re-records now
        # overwrite (Trace.append), on both engines.
        from repro.core.config import AccubenchConfig
        from repro.core.experiments import unconstrained
        from repro.core.runner import CampaignConfig, CampaignRunner
        from repro.device.fleet import synthetic_fleet

        accubench = AccubenchConfig(
            thermal_solver="expm",
            sleep_fast_forward=True,
            check_invariants=True,
            batch=batch,
        ).scaled(0.05)
        runner = CampaignRunner(CampaignConfig(accubench=accubench, jobs=1))
        devices = synthetic_fleet(
            "Nexus 5", 4, thermal_solver="expm", initial_temp_c=26.0
        )
        result = runner.run_fleet("Nexus 5", unconstrained(), devices=devices)
        assert len(result.devices) == 4
