"""The A/B harness: pairings, experiment diffs, trace diffs."""

import pytest

from repro.check.differential import (
    BATCH_SPEC,
    EXACT_SPEC,
    FAST_FORWARD_SPEC,
    MIXED_FLEET_LABEL,
    MIXED_FLEET_MODELS,
    SOLVER_SPEC,
    Pairing,
    ToleranceSpec,
    Tolerance,
    batch_invariants_pairing,
    batch_memory_bound_pairing,
    batch_skin_throttle_pairing,
    default_differential_config,
    default_pairings,
    fast_forward_pairing,
    jobs_pairing,
    mixed_fleet_pairing,
    run_pairing,
    solver_pairing,
)
from repro.errors import CheckError
from repro.sim.trace import Trace

MODEL = "Nexus 5"


def tiny_base():
    return default_differential_config(scale=0.02, root_seed=11)


class TestPairings:
    def test_solver_pairing_isolates_the_integrator(self):
        pairing = solver_pairing(tiny_base())
        assert pairing.config_a.accubench.thermal_solver == "euler"
        assert pairing.config_b.accubench.thermal_solver == "expm"
        # Fast-forward off on BOTH sides, so the diff sees only the solver.
        assert not pairing.config_a.accubench.sleep_fast_forward
        assert not pairing.config_b.accubench.sleep_fast_forward
        assert pairing.spec is SOLVER_SPEC

    def test_fast_forward_pairing_fixes_the_solver(self):
        pairing = fast_forward_pairing(tiny_base())
        assert pairing.config_a.accubench.thermal_solver == "expm"
        assert pairing.config_b.accubench.thermal_solver == "expm"
        assert not pairing.config_a.accubench.sleep_fast_forward
        assert pairing.config_b.accubench.sleep_fast_forward
        assert pairing.spec is FAST_FORWARD_SPEC

    def test_jobs_pairing_demands_exact_agreement(self):
        pairing = jobs_pairing(tiny_base(), 2)
        assert pairing.jobs_a == 1 and pairing.jobs_b == 2
        assert pairing.spec is EXACT_SPEC

    def test_jobs_pairing_rejects_serial_vs_serial(self):
        with pytest.raises(CheckError):
            jobs_pairing(tiny_base(), 1)

    def test_default_battery_covers_all_fast_paths(self):
        names = [pairing.name for pairing in default_pairings(tiny_base())]
        assert names == [
            "solver",
            "jobs-2",
            "jobs-4",
            "fast-forward",
            "batch",
            "batch-invariants",
            "batch-memory-bound",
            "batch-skin-throttle",
            "batch-mixed-fleet",
            "backend-in-process-vs-process-pool-j2",
            "backend-in-process-vs-shared-memory-j1",
            "backend-in-process-vs-shared-memory-j2",
            "backend-process-pool-vs-shared-memory-j4",
        ]

    def test_invariants_pairing_arms_both_sides(self):
        pairing = batch_invariants_pairing(tiny_base())
        assert pairing.config_a.accubench.check_invariants
        assert pairing.config_b.accubench.check_invariants
        assert not pairing.config_a.accubench.batch
        assert pairing.config_b.accubench.batch
        assert pairing.spec is BATCH_SPEC

    def test_memory_bound_pairing_sets_roofline_knobs(self):
        pairing = batch_memory_bound_pairing(tiny_base())
        for config in (pairing.config_a, pairing.config_b):
            assert config.accubench.memory_boundedness == 0.35
            assert config.accubench.utilization == 0.9

    def test_skin_pairing_builds_throttled_fleets(self):
        pairing = batch_skin_throttle_pairing(tiny_base())
        fleet = pairing.fleet_factory(pairing.config_a, MODEL)
        assert len(fleet) == 4
        assert all(device.spec.skin_throttle is not None for device in fleet)

    def test_mixed_pairing_interleaves_models(self):
        pairing = mixed_fleet_pairing(tiny_base())
        assert pairing.models == (MIXED_FLEET_LABEL,)
        fleet = pairing.fleet_factory(pairing.config_b, MIXED_FLEET_LABEL)
        names = [device.spec.name for device in fleet]
        assert set(names) == set(MIXED_FLEET_MODELS)
        # Interleaved, never two same-model units adjacent at the head.
        assert names[0] != names[1]


class TestRunPairing:
    def test_jobs_pairing_passes_and_counts_fields(self):
        report = run_pairing(jobs_pairing(tiny_base(), 2), [MODEL], iterations=1)
        assert report.passed
        # 4 units x 1 iteration x 7 numeric result fields.
        assert report.compared_fields == 28
        assert "serial vs jobs=2" in report.render()

    def test_solver_pairing_passes_within_spec(self):
        report = run_pairing(solver_pairing(tiny_base()), [MODEL], iterations=1)
        assert report.passed, report.render()


class TestExperimentDiffs:
    def test_mismatched_fleets_rejected(self):
        from repro.core.results import (
            DeviceResult,
            ExperimentResult,
            IterationResult,
        )

        def experiment(serial):
            iteration = IterationResult(
                model=MODEL,
                serial=serial,
                workload="UNCONSTRAINED",
                iterations_completed=1.0,
                energy_j=1.0,
                mean_power_w=1.0,
                mean_freq_mhz=1.0,
                max_cpu_temp_c=40.0,
                cooldown_s=5.0,
                time_throttled_s=0.0,
            )
            return ExperimentResult(
                model=MODEL,
                workload="UNCONSTRAINED",
                devices=(
                    DeviceResult(
                        model=MODEL, serial=serial,
                        workload="UNCONSTRAINED", iterations=(iteration,),
                    ),
                ),
            )

        with pytest.raises(CheckError):
            EXACT_SPEC.compare_experiment(experiment("a"), experiment("b"))


class TestTraceDiffs:
    def build_trace(self, bump_at=None, bump_channel="temp"):
        trace = Trace(("temp", "power"))
        trace.begin_phase("warmup", 0.0)
        for index in range(10):
            temp = 30.0 + index
            power = 2.0
            if bump_at is not None and index == bump_at:
                if bump_channel == "temp":
                    temp += 1.0
                else:
                    power += 1.0
            trace.append(float(index), (temp, power))
        trace.end_phase(5.0)
        trace.begin_phase("workload", 5.0)
        trace.end_phase(10.0)
        return trace

    def test_identical_traces_agree(self):
        spec = ToleranceSpec(name="trace")
        assert spec.compare_trace(self.build_trace(), self.build_trace()) == []

    def test_first_divergence_reports_time_and_phase(self):
        spec = ToleranceSpec(name="trace")
        found = spec.compare_trace(
            self.build_trace(), self.build_trace(bump_at=7), context="unit-a"
        )
        assert len(found) == 1
        divergence = found[0]
        assert divergence.field == "temp"
        assert divergence.sim_time_s == 7.0
        assert divergence.phase == "workload"
        assert divergence.context == "unit-a"

    def test_early_phase_annotated(self):
        spec = ToleranceSpec(name="trace")
        (divergence,) = spec.compare_trace(
            self.build_trace(), self.build_trace(bump_at=2)
        )
        assert divergence.phase == "warmup"

    def test_tolerance_suppresses_small_drift(self):
        spec = ToleranceSpec(
            name="trace", fields=(("temp", Tolerance(abs_tol=2.0)),)
        )
        assert spec.compare_trace(
            self.build_trace(), self.build_trace(bump_at=7)
        ) == []

    def test_length_mismatch_is_the_first_divergence(self):
        spec = ToleranceSpec(name="trace")
        short = self.build_trace()
        long = self.build_trace()
        long.append(10.0, (40.0, 2.0))
        (divergence,) = spec.compare_trace(short, long)
        assert divergence.field == "len"

    def test_different_channels_rejected(self):
        spec = ToleranceSpec(name="trace")
        with pytest.raises(CheckError):
            spec.compare_trace(self.build_trace(), Trace(("other",)))


class TestPairingValidation:
    def test_pairing_requires_distinct_sides(self):
        base = tiny_base()
        with pytest.raises(CheckError):
            Pairing(
                name="same",
                label_a="a",
                label_b="b",
                config_a=base,
                config_b=base,
                spec=EXACT_SPEC,
            )
