"""Tolerance arithmetic and declarative spec comparison."""

import pytest

from repro.check import Divergence, Tolerance, ToleranceSpec
from repro.errors import CheckError, ReproError


class TestTolerance:
    def test_default_is_exact(self):
        exact = Tolerance()
        assert exact.allows(1.0, 1.0)
        assert not exact.allows(1.0, 1.0 + 1e-12)

    def test_abs_tol(self):
        assert Tolerance(abs_tol=0.5).allows(10.0, 10.4)
        assert not Tolerance(abs_tol=0.5).allows(10.0, 10.6)

    def test_rel_tol_scales_with_magnitude(self):
        tolerance = Tolerance(rel_tol=0.01)
        assert tolerance.allows(1000.0, 1009.0)
        assert not tolerance.allows(10.0, 10.9)

    def test_combined_is_additive(self):
        tolerance = Tolerance(abs_tol=1.0, rel_tol=0.1)
        # allowance = 1.0 + 0.1 * max(|a|, |b|)
        assert tolerance.allows(100.0, 110.9)
        assert not tolerance.allows(100.0, 115.0)

    def test_nan_never_agrees(self):
        loose = Tolerance(abs_tol=1e300)
        assert not loose.allows(float("nan"), 1.0)
        assert not loose.allows(1.0, float("nan"))
        assert not loose.allows(float("nan"), float("nan"))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.1])
    def test_invalid_tolerances_rejected(self, bad):
        with pytest.raises(CheckError):
            Tolerance(abs_tol=bad)
        with pytest.raises(CheckError):
            Tolerance(rel_tol=bad)

    def test_check_error_is_repro_error(self):
        assert issubclass(CheckError, ReproError)


class TestToleranceSpec:
    def spec(self) -> ToleranceSpec:
        return ToleranceSpec(
            name="test",
            fields=(("energy_j", Tolerance(rel_tol=0.01)),),
            default=Tolerance(abs_tol=0.5),
        )

    def test_field_lookup_falls_back_to_default(self):
        spec = self.spec()
        assert spec.tolerance_for("energy_j").rel_tol == 0.01
        assert spec.tolerance_for("anything_else").abs_tol == 0.5

    def test_compare_scalar_returns_none_on_agreement(self):
        assert self.spec().compare_scalar("energy_j", 100.0, 100.5) is None

    def test_compare_scalar_reports_divergence(self):
        found = self.spec().compare_scalar(
            "energy_j", 100.0, 105.0, context="unit-a", sim_time_s=12.5, phase="workload"
        )
        assert found is not None
        assert found.field == "energy_j"
        assert found.abs_delta == pytest.approx(5.0)
        described = found.describe()
        assert "unit-a" in described
        assert "t=12.5 s" in described
        assert "workload" in described

    def test_compare_mapping_shared_numeric_keys_only(self):
        spec = self.spec()
        found = spec.compare_mapping(
            {"energy_j": 100.0, "only_in_a": 1.0, "label": "x"},
            {"energy_j": 110.0, "label": "y"},
        )
        assert [d.field for d in found] == ["energy_j"]


class TestDivergence:
    def test_describe_without_time(self):
        divergence = Divergence(
            field="cooldown_s", context="iter-0", value_a=10.0, value_b=20.0
        )
        text = divergence.describe()
        assert "cooldown_s" in text and "iter-0" in text
        assert "t=" not in text
