"""Golden store: build/write/load round-trips and drift detection."""

import json

import pytest

from repro.check.golden import (
    GOLDEN_FORMAT,
    build_golden,
    check_golden,
    compare_golden,
    config_from_document,
    golden_config,
    golden_path,
    load_golden,
    trace_fingerprint,
    update_golden,
    write_golden,
)
from repro.errors import CheckError

MODEL = "Nexus 5"


@pytest.fixture(scope="module")
def document():
    return build_golden(MODEL, golden_config(scale=0.02, iterations=1))


class TestBuild:
    def test_document_shape(self, document):
        assert document["format"] == GOLDEN_FORMAT
        assert document["model"] == MODEL
        assert len(document["devices"]) == 4  # the paper's Nexus 5 fleet
        iteration = document["devices"][0]["iterations"][0]
        assert iteration["energy_j"] > 0.0
        assert iteration["trace"]["samples"] > 0
        assert "cpu_temp" in iteration["trace"]["channels"]
        assert [name for name, _ in iteration["trace"]["phases"]] == [
            "warmup", "cooldown", "workload",
        ]

    def test_config_round_trips_through_document(self, document):
        rebuilt = config_from_document(document)
        assert rebuilt.accubench.warmup_s == document["config"]["warmup_s"]
        assert rebuilt.root_seed == document["config"]["root_seed"]
        assert rebuilt.accubench.keep_traces

    def test_missing_config_field_rejected(self, document):
        crippled = {**document, "config": {}}
        with pytest.raises(CheckError):
            config_from_document(crippled)


class TestStore:
    def test_write_load_round_trip(self, document, tmp_path):
        path = golden_path(str(tmp_path), MODEL)
        write_golden(document, path)
        assert load_golden(path) == document

    def test_regeneration_is_byte_identical(self, document, tmp_path):
        path_a = str(tmp_path / "a.json")
        path_b = str(tmp_path / "b.json")
        write_golden(document, path_a)
        write_golden(
            build_golden(MODEL, golden_config(scale=0.02, iterations=1)), path_b
        )
        assert open(path_a, "rb").read() == open(path_b, "rb").read()

    def test_missing_file_is_a_clear_error(self, tmp_path):
        with pytest.raises(CheckError, match="update-golden"):
            load_golden(str(tmp_path / "absent.json"))

    def test_wrong_format_rejected(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fp:
            json.dump({"format": "something-else"}, fp)
        with pytest.raises(CheckError, match="format"):
            load_golden(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fp:
            fp.write("{not json")
        with pytest.raises(CheckError, match="JSON"):
            load_golden(path)

    def test_update_then_check_passes(self, tmp_path):
        update_golden(
            str(tmp_path), [MODEL], golden_config(scale=0.02, iterations=1)
        )
        (report,) = check_golden(str(tmp_path), [MODEL])
        assert report.passed, report.render()


class TestDriftDetection:
    def test_identical_documents_agree(self, document):
        assert compare_golden(document, document).passed

    def test_numeric_drift_detected_with_path(self, document):
        drifted = json.loads(json.dumps(document))
        drifted["devices"][0]["iterations"][0]["energy_j"] += 0.5
        report = compare_golden(document, drifted)
        assert not report.passed
        divergence = report.first_divergence
        assert divergence.field == "energy_j"
        assert "devices[0]" in divergence.context

    def test_trace_fingerprint_drift_detected(self, document):
        drifted = json.loads(json.dumps(document))
        drifted["devices"][0]["iterations"][0]["trace"]["channels"][
            "cpu_temp"
        ]["max"] += 1.0
        assert not compare_golden(document, drifted).passed

    def test_missing_key_detected(self, document):
        crippled = json.loads(json.dumps(document))
        del crippled["devices"][0]["iterations"][0]["energy_j"]
        report = compare_golden(document, crippled)
        assert not report.passed
        assert report.first_divergence.field == "presence"

    def test_device_count_change_detected(self, document):
        crippled = json.loads(json.dumps(document))
        crippled["devices"] = crippled["devices"][:-1]
        report = compare_golden(document, crippled)
        assert not report.passed
        assert report.first_divergence.field == "len"

    def test_string_change_detected(self, document):
        drifted = json.loads(json.dumps(document))
        drifted["workload"] = "SOMETHING-ELSE"
        assert not compare_golden(document, drifted).passed


class TestFingerprint:
    def test_none_trace_fingerprints_to_none(self):
        assert trace_fingerprint(None) is None

    def test_checked_in_goldens_match_the_tree(self):
        # The repository's own golden files must regenerate byte-identically
        # (the acceptance criterion for "no silent drift in this checkout").
        stored = load_golden(golden_path("tests/golden", MODEL))
        fresh = build_golden(MODEL, config_from_document(stored))
        assert compare_golden(stored, fresh).passed
