"""Mutation smoke test: the harness must flag a perturbed solver.

Monkeypatches a small systematic bias into the exact propagator and
asserts the euler-vs-expm differential pairing reports the divergence.
A second mutant biases the *batched* engine's power path and asserts the
serial-vs-batched pairing catches it.  Runs serial (jobs=1) on both
sides — a monkeypatch does not cross process-pool boundaries.

The scenario pairings that gate the lifted batch-eligibility
restrictions get mutants of their own: a biased batched skin-throttle
state machine, a biased memory-bounded roofline share, and a biased
vectorized invariant integral must each be flagged by the pairing (or
checker) that claims to guard it.  The execution-backend pairings get a
transport mutant: a corrupted sample in the shared-memory attach path
must be flagged by the trace-byte comparison.
"""

import pytest

from repro.check.differential import (
    backend_pairing,
    batch_invariants_pairing,
    batch_memory_bound_pairing,
    batch_pairing,
    batch_skin_throttle_pairing,
    default_differential_config,
    run_pairing,
    solver_pairing,
)
from repro.check.invariants import BatchedInvariantSuite
from repro.core.experiments import unconstrained
from repro.core.runner import CampaignRunner
from repro.errors import InvariantViolation
from repro.sim.batch import _ClusterBatch, _CohortWorld
from repro.thermal.propagator import ExpmPropagator

MODEL = "Nexus 5"


def tiny_base():
    return default_differential_config(scale=0.02, root_seed=11)


class TestMutationDetection:
    def test_biased_propagator_is_flagged(self, monkeypatch):
        original = ExpmPropagator.advance

        def biased(self, temps, power, dt):
            original(self, temps, power, dt)
            # A cooling bias rather than a heating one: a heated mutant
            # could stall the cooldown phase into its timeout instead of
            # producing a clean numeric divergence.
            temps[~self._boundary] -= 0.05

        monkeypatch.setattr(ExpmPropagator, "advance", biased)
        report = run_pairing(solver_pairing(tiny_base()), [MODEL], iterations=1)
        assert not report.passed, (
            "the differential harness failed to flag a mutated solver"
        )
        fields = {d.field for d in report.divergences}
        assert fields & {
            "max_cpu_temp_c",
            "cooldown_s",
            "energy_j",
            "mean_power_w",
            "mean_freq_mhz",
            "time_throttled_s",
            "iterations_completed",
        }

    def test_unmutated_run_passes(self):
        report = run_pairing(solver_pairing(tiny_base()), [MODEL], iterations=1)
        assert report.passed, report.render()

    def test_biased_batched_power_is_flagged(self, monkeypatch):
        # Inflate only the batched engine's per-unit leakage coefficients:
        # the serial A side is untouched, so the serial-vs-batched pairing
        # must report the drift in the power/energy family of fields.
        original = _ClusterBatch.__init__

        def biased(self, devices, cluster_index):
            original(self, devices, cluster_index)
            self.leak_coeff = self.leak_coeff * 1.10

        monkeypatch.setattr(_ClusterBatch, "__init__", biased)
        report = run_pairing(batch_pairing(tiny_base()), [MODEL], iterations=1)
        assert not report.passed, (
            "the differential harness failed to flag a mutated batched engine"
        )
        fields = {d.field for d in report.divergences}
        assert fields & {
            "energy_j",
            "mean_power_w",
            "max_cpu_temp_c",
            "iterations_completed",
            "mean_freq_mhz",
            "time_throttled_s",
        }

    def test_unmutated_batch_pairing_passes(self):
        report = run_pairing(batch_pairing(tiny_base()), [MODEL], iterations=1)
        assert report.passed, report.render()

    def test_biased_batched_skin_governor_is_flagged(self, monkeypatch):
        # Bias only the batched skin-throttle's thresholds below ambient:
        # its governor then deepens a mitigation step at every poll while
        # the serial skin governor (41 °C threshold, untouched) stays
        # idle, so the frequency ceilings disagree and the skin-scenario
        # pairing must report it.
        original = _CohortWorld.__init__

        def biased(self, devices, *args, **kwargs):
            original(self, devices, *args, **kwargs)
            if self._has_skin:
                self._skin_hot = 20.0
                self._skin_cold = 19.0

        monkeypatch.setattr(_CohortWorld, "__init__", biased)
        report = run_pairing(
            batch_skin_throttle_pairing(tiny_base()), [MODEL], iterations=1
        )
        assert not report.passed, (
            "the skin-throttle pairing failed to flag a mutated batched "
            "skin governor"
        )
        fields = {d.field for d in report.divergences}
        assert fields & {
            "mean_freq_mhz",
            "iterations_completed",
            "energy_j",
            "mean_power_w",
            "max_cpu_temp_c",
            "time_throttled_s",
        }

    def test_biased_batched_memory_share_is_flagged(self, monkeypatch):
        # Inflate only the batched engine's memory-boundedness: the
        # roofline share and retire rate drift from the serial cluster
        # math, and the memory-bound pairing must report it.
        original = _CohortWorld.start_load

        def biased(self, utilization=1.0, memory_boundedness=0.0):
            original(self, utilization, memory_boundedness * 1.1)

        monkeypatch.setattr(_CohortWorld, "start_load", biased)
        report = run_pairing(
            batch_memory_bound_pairing(tiny_base()), [MODEL], iterations=1
        )
        assert not report.passed, (
            "the memory-bound pairing failed to flag a mutated batched "
            "roofline share"
        )
        fields = {d.field for d in report.divergences}
        assert fields & {
            "iterations_completed",
            "energy_j",
            "mean_power_w",
            "mean_freq_mhz",
            "max_cpu_temp_c",
        }

    def test_corrupted_shm_attach_is_flagged(self, monkeypatch):
        # Flip one sample value as the shared-memory transport attaches a
        # trace in the parent.  Every scalar result field still agrees
        # (they were computed in the worker, before transport), so only
        # the backend pairing's trace-byte comparison can catch it —
        # proving that gate is live.  The seam runs parent-side, which is
        # why a plain monkeypatch reaches it despite the worker pool.
        import repro.core.backends as backends

        original = backends._attach_trace

        def corrupted(channels, samples, phases, open_phase, owner):
            if samples.size:
                samples[0, -1] += 0.5
            return original(channels, samples, phases, open_phase, owner)

        monkeypatch.setattr(backends, "_attach_trace", corrupted)
        report = run_pairing(
            backend_pairing(
                tiny_base(), "in-process", "shared-memory", jobs_a=1, jobs_b=2
            ),
            [MODEL],
            iterations=1,
        )
        assert not report.passed, (
            "the backend pairing failed to flag a corrupted shared-memory "
            "trace attach"
        )
        assert all("trace" in d.context for d in report.divergences), [
            d.describe() for d in report.divergences
        ]

    def test_unmutated_backend_pairing_passes(self):
        report = run_pairing(
            backend_pairing(
                tiny_base(), "in-process", "shared-memory", jobs_a=1, jobs_b=2
            ),
            [MODEL],
            iterations=1,
        )
        assert report.passed, report.render()

    def test_biased_vectorized_invariant_integral_is_flagged(self, monkeypatch):
        # Corrupt the vectorized checker's own energy integral: the
        # conservation invariant must trip on an otherwise healthy run,
        # proving the batched observers are live rather than decorative.
        original = BatchedInvariantSuite.observe_awake

        def biased(self, *args, **kwargs):
            self._integral_j *= 1.001
            original(self, *args, **kwargs)

        monkeypatch.setattr(BatchedInvariantSuite, "observe_awake", biased)
        config = batch_invariants_pairing(tiny_base()).config_b
        with pytest.raises(InvariantViolation):
            CampaignRunner(config).run_fleet(
                MODEL, unconstrained(), iterations=1, jobs=1
            )
