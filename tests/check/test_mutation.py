"""Mutation smoke test: the harness must flag a perturbed solver.

Monkeypatches a small systematic bias into the exact propagator and
asserts the euler-vs-expm differential pairing reports the divergence.
A second mutant biases the *batched* engine's power path and asserts the
serial-vs-batched pairing catches it.  Runs serial (jobs=1) on both
sides — a monkeypatch does not cross process-pool boundaries.
"""

import pytest

from repro.check.differential import (
    batch_pairing,
    default_differential_config,
    run_pairing,
    solver_pairing,
)
from repro.sim.batch import _ClusterBatch
from repro.thermal.propagator import ExpmPropagator

MODEL = "Nexus 5"


def tiny_base():
    return default_differential_config(scale=0.02, root_seed=11)


class TestMutationDetection:
    def test_biased_propagator_is_flagged(self, monkeypatch):
        original = ExpmPropagator.advance

        def biased(self, temps, power, dt):
            original(self, temps, power, dt)
            # A cooling bias rather than a heating one: a heated mutant
            # could stall the cooldown phase into its timeout instead of
            # producing a clean numeric divergence.
            temps[~self._boundary] -= 0.05

        monkeypatch.setattr(ExpmPropagator, "advance", biased)
        report = run_pairing(solver_pairing(tiny_base()), [MODEL], iterations=1)
        assert not report.passed, (
            "the differential harness failed to flag a mutated solver"
        )
        fields = {d.field for d in report.divergences}
        assert fields & {
            "max_cpu_temp_c",
            "cooldown_s",
            "energy_j",
            "mean_power_w",
            "mean_freq_mhz",
            "time_throttled_s",
            "iterations_completed",
        }

    def test_unmutated_run_passes(self):
        report = run_pairing(solver_pairing(tiny_base()), [MODEL], iterations=1)
        assert report.passed, report.render()

    def test_biased_batched_power_is_flagged(self, monkeypatch):
        # Inflate only the batched engine's per-unit leakage coefficients:
        # the serial A side is untouched, so the serial-vs-batched pairing
        # must report the drift in the power/energy family of fields.
        original = _ClusterBatch.__init__

        def biased(self, devices, cluster_index):
            original(self, devices, cluster_index)
            self.leak_coeff = self.leak_coeff * 1.10

        monkeypatch.setattr(_ClusterBatch, "__init__", biased)
        report = run_pairing(batch_pairing(tiny_base()), [MODEL], iterations=1)
        assert not report.passed, (
            "the differential harness failed to flag a mutated batched engine"
        )
        fields = {d.field for d in report.divergences}
        assert fields & {
            "energy_j",
            "mean_power_w",
            "max_cpu_temp_c",
            "iterations_completed",
            "mean_freq_mhz",
            "time_throttled_s",
        }

    def test_unmutated_batch_pairing_passes(self):
        report = run_pairing(batch_pairing(tiny_base()), [MODEL], iterations=1)
        assert report.passed, report.render()
