"""The batch-eligibility matrix: every catalog scenario runs batched.

Two layers of gate:

* The cheap matrix — ``batch_ineligibility_reason`` must return ``None``
  for every catalog model under every scenario the engine claims
  (invariants armed, skin-throttled hardware, memory-bounded workloads,
  heterogeneous fleets), and must still name the genuinely serial-only
  configurations (Euler integration, disabled sleep fast-forward).
* The parity runs — each newly lifted scenario's serial↔batched pairing
  actually executes and agrees within :data:`BATCH_SPEC` on a scaled
  protocol.  These are the same pairings ``repro-bench check
  --differential`` gates on (see ``default_pairings``).
"""

from dataclasses import replace

import pytest

from repro.check.differential import (
    MIXED_FLEET_LABEL,
    batch_invariants_pairing,
    batch_memory_bound_pairing,
    batch_skin_throttle_pairing,
    default_differential_config,
    mixed_fleet_pairing,
    run_pairing,
)
from repro.core.batch_runner import batch_ineligibility_reason
from repro.core.experiments import fixed_frequency, unconstrained
from repro.device.catalog import DEVICE_NAMES, device_spec
from repro.device.fleet import PAPER_FLEETS, build_device, paper_fleet
from repro.thermal.skin import SkinThrottleSpec

MODEL = "Nexus 5"


def base_config(**protocol_overrides):
    config = default_differential_config(scale=0.02, root_seed=11)
    overrides = {"thermal_solver": "expm", "sleep_fast_forward": True}
    overrides.update(protocol_overrides)
    return replace(config, accubench=replace(config.accubench, **overrides))


def expm_fleet(model):
    return paper_fleet(model, thermal_solver="expm")


def skin_fleet(model):
    spec = replace(device_spec(model), skin_throttle=SkinThrottleSpec())
    return [
        build_device(unit, spec=spec, thermal_solver="expm")
        for unit in PAPER_FLEETS[model]
    ]


SCENARIOS = {
    "baseline": (base_config(), expm_fleet),
    "invariants": (base_config(check_invariants=True), expm_fleet),
    "memory-bound": (
        base_config(utilization=0.85, memory_boundedness=0.4),
        expm_fleet,
    ),
    "skin-throttle": (base_config(), skin_fleet),
}


class TestEligibilityMatrix:
    @pytest.mark.parametrize("model", list(DEVICE_NAMES))
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("workload", ["unconstrained", "fixed-frequency"])
    def test_every_catalog_scenario_is_batchable(self, model, scenario, workload):
        config, fleet_for = SCENARIOS[scenario]
        experiment = (
            unconstrained()
            if workload == "unconstrained"
            else fixed_frequency(device_spec(model))
        )
        reason = batch_ineligibility_reason(config, experiment, fleet_for(model))
        assert reason is None, f"{model}/{scenario}: {reason}"

    @pytest.mark.parametrize("model", list(DEVICE_NAMES))
    def test_mixed_fleet_with_every_model_is_batchable(self, model):
        partner = next(name for name in DEVICE_NAMES if name != model)
        fleet = expm_fleet(model) + expm_fleet(partner)
        reason = batch_ineligibility_reason(base_config(), unconstrained(), fleet)
        assert reason is None

    def test_euler_fleets_stay_serial(self):
        config = default_differential_config(scale=0.02)
        config = replace(
            config, accubench=replace(config.accubench, thermal_solver="euler")
        )
        reason = batch_ineligibility_reason(
            config, unconstrained(), paper_fleet(MODEL)
        )
        assert reason == "thermal_solver is not 'expm'"

    def test_disabled_fast_forward_stays_serial(self):
        reason = batch_ineligibility_reason(
            base_config(sleep_fast_forward=False), unconstrained(), expm_fleet(MODEL)
        )
        assert reason == "sleep_fast_forward is disabled"

    def test_empty_fleet_stays_serial(self):
        reason = batch_ineligibility_reason(base_config(), unconstrained(), [])
        assert reason == "empty fleet"


class TestLiftedScenarioParity:
    """Each lifted restriction's serial↔batched pairing gates for real."""

    def tiny_base(self):
        return default_differential_config(scale=0.02, root_seed=11)

    def test_invariants_pairing_agrees(self):
        report = run_pairing(
            batch_invariants_pairing(self.tiny_base()), [MODEL], iterations=1
        )
        assert report.passed, report.render()

    def test_memory_bound_pairing_agrees(self):
        report = run_pairing(
            batch_memory_bound_pairing(self.tiny_base()), [MODEL], iterations=1
        )
        assert report.passed, report.render()

    def test_skin_throttle_pairing_agrees(self):
        report = run_pairing(
            batch_skin_throttle_pairing(self.tiny_base()), [MODEL], iterations=1
        )
        assert report.passed, report.render()

    def test_mixed_fleet_pairing_agrees(self):
        # The pairing carries its own fleet (both MIXED_FLEET_MODELS,
        # interleaved) and its own report label.
        report = run_pairing(
            mixed_fleet_pairing(self.tiny_base()), ["ignored"], iterations=1
        )
        assert report.passed, report.render()
        assert report.models == (MIXED_FLEET_LABEL,)
