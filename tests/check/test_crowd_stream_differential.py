"""The streamed↔serial crowd gate: unconditional, CI-sized.

This is the acceptance gate for the streaming crowd engine — it runs the
full differential report (submission-by-submission pairing plus every
streaming estimator against its exact in-memory computation) at a small
population and requires a clean pass.  No environment switch disables it;
a physics or estimator regression fails CI here, not in a benchmark.
"""

import pytest

from repro.check import CROWD_SPEC, crowd_stream_pairing_report
from repro.check.differential import default_crowd_differential_config


@pytest.fixture(scope="module")
def report():
    return crowd_stream_pairing_report()


class TestCrowdStreamGate:
    def test_streamed_agrees_with_serial(self, report):
        assert report.passed, report.render()

    def test_compares_a_meaningful_surface(self, report):
        # Submission fields for every user plus the estimator battery;
        # a refactor that silently compares nothing must fail loudly.
        assert report.compared_fields >= 8 * 8

    def test_report_identity(self, report):
        assert report.name == "crowd-stream"
        assert report.models == ("Nexus 5",)
        assert "PASS" in report.render()


class TestCrowdSpec:
    def test_submission_fields_gate_tightly(self):
        # The per-submission replay budget is BATCH_SPEC-tight: ulp-level,
        # not a physics tolerance.  Guard against silent loosening.
        assert CROWD_SPEC.tolerance_for("score").rel_tol <= 1e-9
        assert CROWD_SPEC.tolerance_for("energy_j").rel_tol <= 1e-9
        assert CROWD_SPEC.tolerance_for("ambient_c").abs_tol <= 1e-9
        # Drop accounting and sample counts are exact by default.
        assert CROWD_SPEC.tolerance_for("sample_count").abs_tol == 0.0
        assert CROWD_SPEC.tolerance_for("dropped.too_few_samples").rel_tol == 0.0

    def test_small_default_population(self):
        config = default_crowd_differential_config()
        assert config.user_count <= 16
        assert config.protocol.thermal_solver == "expm"
