"""Property: batch construction order does not affect per-unit results.

A :class:`~repro.sim.batch.BatchedWorld` stacks per-unit state along its
first axis; nothing about a unit's physics may depend on which row it
landed in.  Hypothesis drives the fleet ordering: for any permutation of
the same units, every unit's trace, retired work and drawn energy must be
*exactly* what the identity ordering produced — per-unit RNG streams are
keyed by serial, so row position is the only thing a permutation changes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.check.strategies import fleet_permutations
from repro.device.fleet import synthetic_fleet
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.sim.batch import BatchedWorld

UNITS = 5
VOLTS = 3.8
AMBIENT = 26.0


def build_fleet():
    devices = synthetic_fleet(
        "Nexus 5", UNITS, thermal_solver="expm", initial_temp_c=AMBIENT
    )
    for device in devices:
        device.connect_supply(MonsoonPowerMonitor(VOLTS))
    return devices


def run_short_protocol(devices):
    """One abbreviated warmup → cooldown → workload pass; per-serial facts."""
    world = BatchedWorld(
        devices, room_temp_c=AMBIENT, dt=0.1, trace_decimation=5
    )
    world.unconstrain_frequency()
    world.acquire_wakelock()
    world.start_load()
    world.set_phase("warmup")
    world.run_for(8.0)
    world.stop_load()
    world.release_wakelock()
    world.set_phase("cooldown")
    targets = np.maximum(38.0, world.ambient_now() + 6.0)
    cooldown = world.run_cooldown(targets, 5.0, 2700.0)
    world.acquire_wakelock()
    world.start_load()
    world.set_phase("workload")
    world.run_for(8.0)
    world.close()
    world.finalize()
    return {
        device.serial: {
            "times": world.traces[i].times().copy(),
            "cpu_temp": world.traces[i].column("cpu_temp").copy(),
            "power": world.traces[i].column("power").copy(),
            "freq": world.traces[i].column("freq").copy(),
            "cooldown_s": float(cooldown[i]),
            "ops": float(world.ops_total[i]),
            "energy_j": float(device.supply.energy_drawn_j),
            "events": [
                (event.time_s, event.kind, event.detail)
                for event in world.event_logs[i]
            ],
        }
        for i, device in enumerate(devices)
    }


@pytest.fixture(scope="module")
def identity_run():
    return run_short_protocol(build_fleet())


class TestPermutationInvariance:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(order=fleet_permutations(UNITS))
    def test_unit_results_independent_of_row_order(self, identity_run, order):
        devices = build_fleet()
        permuted = run_short_protocol([devices[i] for i in order])
        assert set(permuted) == set(identity_run)
        for serial, expected in identity_run.items():
            got = permuted[serial]
            np.testing.assert_array_equal(got["times"], expected["times"])
            for channel in ("cpu_temp", "power", "freq"):
                np.testing.assert_array_equal(got[channel], expected[channel])
            assert got["cooldown_s"] == expected["cooldown_s"]
            assert got["ops"] == expected["ops"]
            assert got["energy_j"] == expected["energy_j"]
            assert got["events"] == expected["events"]
