"""Property: batch construction order does not affect per-unit results.

A :class:`~repro.sim.batch.BatchedWorld` stacks per-unit state along its
first axis; nothing about a unit's physics may depend on which row it
landed in.  Hypothesis drives the fleet ordering: for any permutation of
the same units, every unit's trace, retired work and drawn energy must be
*exactly* what the identity ordering produced — per-unit RNG streams are
keyed by serial, so row position is the only thing a permutation changes.

Heterogeneous fleets add two freedoms the homogeneous property cannot
see: the facade regroups a mixed fleet into per-model cohorts (so a
permutation also reshuffles cohort membership order), and the runner may
cut a fleet into contiguous shards each running in its own world.  Both
are driven below: per-serial results must be exactly invariant under any
fleet permutation, and invariant under any shard-cut choice up to the
documented BLAS summation budget (cuts change cohort matrix heights,
which may re-associate the propagator GEMM's sums — see
:func:`assert_same_per_unit`).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.check.strategies import cohort_splits, fleet_permutations
from repro.device.fleet import synthetic_fleet
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.sim.batch import BatchedWorld

UNITS = 5
VOLTS = 3.8
AMBIENT = 26.0

#: (model, lot, units) for the mixed fleet — distinct lots keep serials
#: unique across models.
MIXED_LOTS = (
    ("Nexus 5", "mix-n5", 2),
    ("Nexus 6", "mix-n6", 2),
    ("Nexus 6P", "mix-n6p", 1),
)
MIXED_UNITS = sum(count for _, _, count in MIXED_LOTS)


def build_fleet():
    devices = synthetic_fleet(
        "Nexus 5", UNITS, thermal_solver="expm", initial_temp_c=AMBIENT
    )
    for device in devices:
        device.connect_supply(MonsoonPowerMonitor(VOLTS))
    return devices


def build_mixed_fleet():
    """Three models interleaved, so same-model units are never adjacent."""
    pools = [
        synthetic_fleet(
            model,
            count,
            lot_name=lot,
            thermal_solver="expm",
            initial_temp_c=AMBIENT,
        )
        for model, lot, count in MIXED_LOTS
    ]
    devices = []
    for index in range(max(len(pool) for pool in pools)):
        for pool in pools:
            if index < len(pool):
                devices.append(pool[index])
    for device in devices:
        device.connect_supply(MonsoonPowerMonitor(VOLTS))
    return devices


def run_short_protocol(devices):
    """One abbreviated warmup → cooldown → workload pass; per-serial facts."""
    world = BatchedWorld(
        devices, room_temp_c=AMBIENT, dt=0.1, trace_decimation=5
    )
    world.unconstrain_frequency()
    world.acquire_wakelock()
    world.start_load()
    world.set_phase("warmup")
    world.run_for(8.0)
    world.stop_load()
    world.release_wakelock()
    world.set_phase("cooldown")
    targets = np.maximum(38.0, world.ambient_now() + 6.0)
    cooldown = world.run_cooldown(targets, 5.0, 2700.0)
    world.acquire_wakelock()
    world.start_load()
    world.set_phase("workload")
    world.run_for(8.0)
    world.close()
    world.finalize()
    return {
        device.serial: {
            "times": world.traces[i].times().copy(),
            "cpu_temp": world.traces[i].column("cpu_temp").copy(),
            "power": world.traces[i].column("power").copy(),
            "freq": world.traces[i].column("freq").copy(),
            "cooldown_s": float(cooldown[i]),
            "ops": float(world.ops_total[i]),
            "energy_j": float(device.supply.energy_drawn_j),
            "events": [
                (event.time_s, event.kind, event.detail)
                for event in world.event_logs[i]
            ],
        }
        for i, device in enumerate(devices)
    }


def assert_same_per_unit(got_by_serial, expected_by_serial, exact=True):
    """Per-serial equality between two runs of the same units.

    ``exact=False`` grants the continuous channels (temperature, power,
    energy) an ulp-level budget: when two runs stack a unit into cohort
    matrices of *different heights*, the propagator GEMM may take a
    different BLAS kernel and re-associate its sums (~1e-14 °C observed) —
    the same freedom :data:`repro.check.differential.BATCH_SPEC`
    documents.  Everything discrete (sample times, frequencies, retired
    ops, cooldown exits, event logs) must stay bit-identical either way.
    """
    assert set(got_by_serial) == set(expected_by_serial)
    for serial, expected in expected_by_serial.items():
        got = got_by_serial[serial]
        np.testing.assert_array_equal(got["times"], expected["times"])
        if exact:
            for channel in ("cpu_temp", "power"):
                np.testing.assert_array_equal(got[channel], expected[channel])
            assert got["energy_j"] == expected["energy_j"]
        else:
            for channel in ("cpu_temp", "power"):
                np.testing.assert_allclose(
                    got[channel], expected[channel], rtol=1e-12, atol=1e-9
                )
            np.testing.assert_allclose(
                got["energy_j"], expected["energy_j"], rtol=1e-12
            )
        np.testing.assert_array_equal(got["freq"], expected["freq"])
        assert got["cooldown_s"] == expected["cooldown_s"]
        assert got["ops"] == expected["ops"]
        assert got["events"] == expected["events"]


@pytest.fixture(scope="module")
def identity_run():
    return run_short_protocol(build_fleet())


@pytest.fixture(scope="module")
def mixed_identity_run():
    return run_short_protocol(build_mixed_fleet())


class TestPermutationInvariance:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(order=fleet_permutations(UNITS))
    def test_unit_results_independent_of_row_order(self, identity_run, order):
        devices = build_fleet()
        permuted = run_short_protocol([devices[i] for i in order])
        assert_same_per_unit(permuted, identity_run)


class TestHeterogeneousInvariance:
    """The facade's cohort grouping must be invisible in the results."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(order=fleet_permutations(MIXED_UNITS))
    def test_mixed_results_independent_of_fleet_order(
        self, mixed_identity_run, order
    ):
        devices = build_mixed_fleet()
        permuted = run_short_protocol([devices[i] for i in order])
        assert_same_per_unit(permuted, mixed_identity_run)

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cuts=cohort_splits(MIXED_UNITS))
    def test_mixed_results_independent_of_shard_cuts(
        self, mixed_identity_run, cuts
    ):
        devices = build_mixed_fleet()
        bounds = [0] + list(cuts) + [MIXED_UNITS]
        merged = {}
        for low, high in zip(bounds, bounds[1:]):
            merged.update(run_short_protocol(devices[low:high]))
        # Cuts change cohort heights, so the continuous channels get the
        # documented BLAS summation budget (see assert_same_per_unit).
        assert_same_per_unit(merged, mixed_identity_run, exact=False)
