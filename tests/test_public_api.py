"""Public API surface sanity.

Every name a package advertises in ``__all__`` must resolve, and the
top-level package must re-export the workhorse entry points.  These tests
catch the classic refactoring failure — a rename that leaves ``__all__``
stale — across the whole library at once.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.device",
    "repro.instruments",
    "repro.obs",
    "repro.silicon",
    "repro.sim",
    "repro.soc",
    "repro.thermal",
    "repro.workloads",
]


class TestDunderAll:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), package_name
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} is stale"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_unique(self, package_name):
        package = importlib.import_module(package_name)
        names = list(package.__all__)
        assert len(names) == len(set(names)), f"{package_name} has duplicates"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a module docstring"


class TestTopLevelEntryPoints:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_workhorse_classes_exposed(self):
        import repro

        for name in (
            "CampaignRunner", "Accubench", "Device", "MonsoonPowerMonitor",
            "Thermabox", "paper_fleet", "unconstrained", "fixed_frequency",
        ):
            assert name in repro.__all__

    def test_cli_importable(self):
        from repro.cli import build_parser, main

        assert callable(main)
        assert build_parser().prog == "repro-bench"

    def test_validation_importable(self):
        from repro.validation import validate_study

        assert callable(validate_study)


class TestModuleDocstrings:
    def test_every_source_module_documented(self):
        import pathlib

        import repro

        src_root = pathlib.Path(repro.__file__).parent
        undocumented = []
        for path in sorted(src_root.rglob("*.py")):
            text = path.read_text()
            stripped = text.lstrip()
            if not stripped.startswith(('"""', "'''", 'r"""')):
                undocumented.append(str(path.relative_to(src_root)))
        assert undocumented == []
