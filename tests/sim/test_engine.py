"""The world stepper."""

import numpy as np
import pytest

from repro.device.fleet import PAPER_FLEETS, build_device
from repro.errors import SimulationError
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.thermabox import Thermabox
from repro.sim.engine import World
from repro.thermal.ambient import ConstantAmbient, StepAmbient


def make_world(chamber=None, room=None, dt=0.1) -> World:
    device = build_device(PAPER_FLEETS["Nexus 5"][0])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    return World(device, room=room, chamber=chamber, dt=dt, trace_decimation=1)


class TestStepping:
    def test_time_advances(self):
        world = make_world()
        world.run_for(1.0)
        assert world.now == pytest.approx(1.0)

    def test_trace_accumulates(self):
        world = make_world()
        world.run_for(1.0)
        assert len(world.trace) == 10

    def test_trace_decimation(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        device.connect_supply(MonsoonPowerMonitor(3.8))
        world = World(device, dt=0.1, trace_decimation=5)
        world.run_for(1.0)
        assert len(world.trace) == 2

    def test_default_room_is_paper_ambient(self):
        world = make_world()
        assert world.ambient_c == 26.0

    def test_ops_accumulate_under_load(self):
        world = make_world()
        world.device.acquire_wakelock()
        world.device.start_load()
        world.run_for(2.0)
        assert world.ops_total > 0.0

    def test_no_ops_while_asleep(self):
        world = make_world()
        world.run_for(2.0)
        assert world.ops_total == 0.0

    def test_bad_duration_rejected(self):
        with pytest.raises(SimulationError):
            make_world().run_for(0.0)

    def test_duration_shorter_than_step_rejected(self):
        with pytest.raises(SimulationError):
            make_world(dt=1.0).run_for(0.2)

    def test_run_for_matches_repeated_step(self):
        # run_for inlines the step() body for speed; the two paths must
        # stay bit-identical.
        fast = make_world(chamber=Thermabox(initial_temp_c=26.0))
        slow = make_world(chamber=Thermabox(initial_temp_c=26.0))
        for world in (fast, slow):
            world.device.acquire_wakelock()
            world.device.start_load()
        fast.run_for(5.0)
        for _ in range(50):
            slow.step()
        assert fast.now == slow.now
        assert fast.ops_total == slow.ops_total
        assert len(fast.trace) == len(slow.trace)
        for channel in ("time", "cpu_temp", "power", "freq", "online_cores"):
            assert np.array_equal(fast.trace.column(channel), slow.trace.column(channel))


class TestAmbientCoupling:
    def test_room_profile_drives_device(self):
        world = make_world(room=StepAmbient(before_c=20.0, after_c=35.0, step_at_s=1.0))
        world.run_for(0.5)
        assert world.device.thermal.temperature("ambient") == 20.0
        world.run_for(1.0)
        assert world.device.thermal.temperature("ambient") == 35.0

    def test_chamber_overrides_room(self):
        chamber = Thermabox(initial_temp_c=26.0)
        world = make_world(chamber=chamber, room=ConstantAmbient(5.0))
        world.run_for(1.0)
        # Device sees the chamber air, not the cold room.
        assert world.device.thermal.temperature("ambient") > 20.0

    def test_device_heat_loads_chamber(self):
        chamber = Thermabox(initial_temp_c=26.0)
        world = make_world(chamber=chamber)
        world.device.acquire_wakelock()
        world.device.start_load()
        world.run_for(30.0)
        # The chamber absorbed the phone's multi-watt output and stayed
        # within its regulation band.
        assert chamber.is_within_band()


class TestPhasesAndEvents:
    def test_phase_annotation_flows_to_trace(self):
        world = make_world()
        world.set_phase("warmup")
        world.run_for(1.0)
        world.set_phase("cooldown")
        world.run_for(1.0)
        world.close()
        assert [p.name for p in world.trace.phases] == ["warmup", "cooldown"]

    def test_phase_events_logged(self):
        world = make_world()
        world.set_phase("warmup")
        world.run_for(0.5)
        world.close()
        assert world.events.count("phase") == 1

    def test_throttle_events_recorded_on_hot_run(self):
        world = make_world()
        world.device.acquire_wakelock()
        world.device.start_load()
        world.run_for(400.0)
        assert world.events.count("throttle-step") > 0

    def test_core_shutdown_event_on_nexus5(self):
        # Drive the die to its hard limit: start hot so the stepwise
        # governor cannot save it.
        world = make_world()
        world.device.thermal.settle_to(79.5)
        world.device.acquire_wakelock()
        world.device.start_load()
        world.run_for(10.0)
        assert world.events.count("core-offline") >= 1


class TestRunUntil:
    def test_returns_elapsed(self):
        world = make_world()
        elapsed = world.run_until(
            lambda w: w.now >= 0.95, check_every_s=0.1, timeout_s=10.0
        )
        assert elapsed == pytest.approx(1.0, abs=0.2)

    def test_timeout_raises(self):
        world = make_world()
        with pytest.raises(SimulationError):
            world.run_until(lambda w: False, check_every_s=0.5, timeout_s=2.0)

    def test_check_interval_validated(self):
        world = make_world(dt=1.0)
        with pytest.raises(SimulationError):
            world.run_until(lambda w: True, check_every_s=0.1, timeout_s=1.0)
