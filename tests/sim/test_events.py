"""Event logging."""

import pytest

from repro.sim.events import Event, EventLog


class TestEvent:
    def test_detail_lookup(self):
        event = Event(time_s=1.0, kind="phase", detail=(("name", "warmup"),))
        assert event.get("name") == "warmup"

    def test_detail_default(self):
        event = Event(time_s=1.0, kind="phase")
        assert event.get("missing", 42) == 42

    def test_get_falls_back_to_none(self):
        event = Event(time_s=1.0, kind="phase", detail=(("name", "warmup"),))
        assert event.get("missing") is None

    def test_dict_round_trip(self):
        event = EventLog().log(42.5, "core-offline", online=3, cluster="krait")
        assert Event.from_dict(event.to_dict()) == event

    def test_from_dict_canonicalizes_detail_order(self):
        # EventLog.log stores detail keys sorted; from_dict re-sorts so
        # any JSON key order decodes to the same canonical Event.
        restored = Event.from_dict(
            {"time_s": 1.0, "kind": "x", "detail": {"b": 2, "a": 1}}
        )
        assert restored.detail == (("a", 1), ("b", 2))

    def test_to_dict_is_json_shaped(self):
        event = Event(time_s=1.0, kind="phase", detail=(("name", "warmup"),))
        assert event.to_dict() == {
            "time_s": 1.0,
            "kind": "phase",
            "detail": {"name": "warmup"},
        }

    def test_round_trip_without_detail(self):
        event = Event(time_s=0.0, kind="sleep-enter")
        assert Event.from_dict(event.to_dict()) == event


class TestEventLog:
    def test_log_and_iterate(self):
        log = EventLog()
        log.log(0.0, "phase", name="warmup")
        log.log(180.0, "phase", name="cooldown")
        assert len(log) == 2
        assert [e.kind for e in log] == ["phase", "phase"]

    def test_of_kind(self):
        log = EventLog()
        log.log(0.0, "phase", name="warmup")
        log.log(10.0, "throttle-step", steps=1)
        log.log(12.0, "throttle-step", steps=2)
        assert len(log.of_kind("throttle-step")) == 2

    def test_count(self):
        log = EventLog()
        log.log(0.0, "core-offline", online=3)
        assert log.count("core-offline") == 1
        assert log.count("core-online") == 0

    def test_first(self):
        log = EventLog()
        log.log(5.0, "throttle-step", steps=1)
        log.log(9.0, "throttle-step", steps=2)
        assert log.first("throttle-step").time_s == 5.0

    def test_first_missing_raises(self):
        with pytest.raises(IndexError):
            EventLog().first("nope")

    def test_kinds_histogram(self):
        log = EventLog()
        log.log(0.0, "a")
        log.log(1.0, "a")
        log.log(2.0, "b")
        assert log.kinds() == {"a": 2, "b": 1}

    def test_detail_round_trip(self):
        log = EventLog()
        event = log.log(3.0, "core-offline", online=3, cluster="krait")
        assert event.get("online") == 3
        assert event.get("cluster") == "krait"
