"""Property tests for the trace buffer, driven by shared strategies.

:func:`repro.check.strategies.trace_samples` generates time-ordered rows
sized to cross the growth boundary when the test lowers the initial
capacity, exercising the grow/copy path and the cached-view invalidation
it must trigger.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.check.strategies import trace_samples
from repro.sim.trace import Trace

CHANNELS = ("temp", "power", "freq")


def build(rows, capacity=2):
    trace = Trace(CHANNELS, capacity=capacity)
    for time_s, row in rows:
        trace.append(time_s, row)
    return trace


class TestAppendGrow:
    @settings(max_examples=50, deadline=None)
    @given(trace_samples())
    def test_every_sample_survives_growth(self, rows):
        # Same-stamp rows overwrite (last write wins), so the expected
        # content is the per-time last row, in time order.
        expected = {}
        for time_s, row in rows:
            expected[time_s] = row
        trace = build(rows)
        assert len(trace) == len(expected)
        for index, (time_s, row) in enumerate(sorted(expected.items())):
            assert trace.times()[index] == time_s
            for channel, value in zip(CHANNELS, row):
                assert trace.column(channel)[index] == value

    @settings(max_examples=50, deadline=None)
    @given(trace_samples(min_size=1))
    def test_times_strictly_increasing(self, rows):
        trace = build(rows)
        times = trace.times()
        assert np.all(np.diff(times) > 0.0)

    @settings(max_examples=50, deadline=None)
    @given(trace_samples(min_size=2))
    def test_out_of_order_append_rejected(self, rows):
        from repro.errors import ConfigurationError

        trace = build(rows)
        last = float(trace.times()[-1])
        with pytest.raises(ConfigurationError):
            trace.append(last - 1.0, (0.0,) * len(CHANNELS))


class TestColumnViews:
    @settings(max_examples=50, deadline=None)
    @given(trace_samples(min_size=1))
    def test_views_are_read_only(self, rows):
        trace = build(rows)
        with pytest.raises((ValueError, RuntimeError)):
            trace.times()[0] = -1.0
        with pytest.raises((ValueError, RuntimeError)):
            trace.column("temp")[0] = -1.0

    @settings(max_examples=50, deadline=None)
    @given(trace_samples(min_size=1))
    def test_view_invalidated_on_append(self, rows):
        # A cached view must never go stale: after an append the arrays
        # reflect the new sample even if the buffer was reallocated.
        trace = build(rows)
        size = len(trace)
        before = trace.column("temp")
        assert before.shape[0] == size
        last = float(trace.times()[-1])
        trace.append(last + 1.0, (123.0, 0.0, 0.0))
        after = trace.column("temp")
        assert after.shape[0] == size + 1
        assert after[-1] == 123.0
        # The old view still describes the pre-append prefix.
        np.testing.assert_array_equal(before, after[:-1])

    @settings(max_examples=50, deadline=None)
    @given(trace_samples(min_size=1))
    def test_repeated_reads_are_cached(self, rows):
        trace = build(rows)
        assert trace.column("power") is trace.column("power")
