"""Sleep-phase fast-forward: when it engages, and that it stays honest.

Fidelity is asserted through the same declarative tolerance specs the
``repro check`` harness uses, so the allowed drift is written down once.
"""

import pytest

from repro.check import Tolerance, ToleranceSpec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.thermabox import Thermabox
from repro.sim.engine import World
from repro.thermal.ambient import ConstantAmbient

POLL_S = 5.0
TARGET_C = 36.0


def make_world(solver="expm", chamber=False, **world_kwargs):
    device = build_device(
        PAPER_FLEETS["Nexus 5"][0], initial_temp_c=55.0, thermal_solver=solver
    )
    device.connect_supply(MonsoonPowerMonitor(3.8))
    return World(
        device,
        room=ConstantAmbient(23.0),
        chamber=Thermabox(initial_temp_c=26.0) if chamber else None,
        dt=0.1,
        **world_kwargs,
    )


def run_cooldown(world):
    return world.run_until(
        lambda w: w.device.read_cpu_temp() <= TARGET_C,
        check_every_s=POLL_S,
        timeout_s=7200.0,
    )


class TestEngagement:
    def test_fast_forwards_while_asleep_with_expm(self):
        world = make_world("expm")
        run_cooldown(world)
        assert world.fast_forwards > 0

    def test_no_fast_forward_with_euler(self):
        world = make_world("euler")
        run_cooldown(world)
        assert world.fast_forwards == 0

    def test_no_fast_forward_when_disabled(self):
        world = make_world("expm", sleep_fast_forward=False)
        run_cooldown(world)
        assert world.fast_forwards == 0

    def test_no_fast_forward_while_awake(self):
        world = make_world("expm")
        world.device.acquire_wakelock()
        world.device.start_load()
        world.run_until(
            lambda w: w.now >= 20.0, check_every_s=POLL_S, timeout_s=7200.0
        )
        assert world.fast_forwards == 0


#: Euler-vs-expm cooldown drift budget: elapsed times must land within
#: one poll window of each other; final temperatures within sensor scale;
#: total supply energy tracks the (constant) asleep draw.
COOLDOWN_SPEC = ToleranceSpec(
    name="cooldown-fidelity",
    fields=(
        ("elapsed_s", Tolerance(abs_tol=POLL_S)),
        ("final_temp_c", Tolerance(abs_tol=0.1)),
        ("energy_j", Tolerance(rel_tol=1e-3)),
    ),
)


class TestFidelity:
    @pytest.mark.parametrize("chamber", [False, True])
    def test_cooldown_agrees_with_euler(self, chamber):
        # Same cooldown, two solvers: every drift within COOLDOWN_SPEC.
        summaries = {}
        for solver in ("euler", "expm"):
            world = make_world(solver, chamber=chamber)
            elapsed = run_cooldown(world)
            summaries[solver] = {
                "elapsed_s": elapsed,
                "final_temp_c": world.device.read_cpu_temp(),
            }
        divergences = COOLDOWN_SPEC.compare_mapping(
            summaries["euler"], summaries["expm"], context="cooldown"
        )
        assert divergences == [], [d.describe() for d in divergences]

    def test_clock_and_trace_land_on_poll_boundaries(self):
        world = make_world("expm")
        run_cooldown(world)
        assert world.fast_forwards > 0
        # The clock only ever advanced by whole poll windows.
        assert world.now == pytest.approx(world.fast_forwards * POLL_S)
        times = world.trace.times()
        assert len(times) == world.fast_forwards
        for sample_time in times:
            assert (sample_time / POLL_S) == pytest.approx(
                round(sample_time / POLL_S)
            )

    def test_energy_accounting_matches_euler(self):
        # Asleep draw is constant, so supply energy over the cooldown must
        # agree between one macro step per window and 50 fine steps.
        energy = {}
        for solver in ("euler", "expm"):
            world = make_world(solver)
            run_cooldown(world)
            energy[solver] = world.device.supply.energy_j
        divergence = COOLDOWN_SPEC.compare_scalar(
            "energy_j", energy["euler"], energy["expm"], context="cooldown"
        )
        assert divergence is None, divergence.describe()
