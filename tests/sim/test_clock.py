"""Simulation clock."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock(0.1).now == 0.0

    def test_tick_advances(self):
        clock = SimClock(0.1)
        assert clock.tick() == pytest.approx(0.1)
        assert clock.tick() == pytest.approx(0.2)

    def test_no_float_drift_over_an_hour(self):
        clock = SimClock(0.1)
        for _ in range(36000):
            clock.tick()
        assert clock.now == 3600.0  # exact, not approx

    def test_steps_counted(self):
        clock = SimClock(0.5)
        clock.tick()
        clock.tick()
        assert clock.steps == 2

    def test_dt_exposed(self):
        assert SimClock(0.25).dt == 0.25

    def test_non_positive_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock(0.0)
