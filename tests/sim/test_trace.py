"""Trace recording."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.sim.trace import PhaseSpan, Trace


@pytest.fixture
def trace() -> Trace:
    t = Trace(["temp", "freq"])
    for i in range(10):
        t.record(float(i), temp=30.0 + i, freq=2265.0 - 10 * i)
    return t


class TestRecording:
    def test_length(self, trace):
        assert len(trace) == 10

    def test_columns(self, trace):
        assert trace.column("temp")[0] == 30.0
        assert trace.column("freq")[-1] == 2175.0

    def test_time_column(self, trace):
        assert trace.column("time")[3] == 3.0
        assert np.array_equal(trace.times(), trace.column("time"))

    def test_missing_channel_on_record_rejected(self):
        t = Trace(["temp"])
        with pytest.raises(ConfigurationError):
            t.record(0.0)

    def test_extra_channel_on_record_rejected(self):
        t = Trace(["temp"])
        with pytest.raises(ConfigurationError):
            t.record(0.0, temp=1.0, other=2.0)

    def test_out_of_order_rejected(self):
        t = Trace(["temp"])
        t.record(1.0, temp=1.0)
        with pytest.raises(ConfigurationError):
            t.record(0.5, temp=1.0)

    def test_append_positional(self):
        t = Trace(["a", "b"])
        t.append(0.5, (1.0, 2.0))
        assert t.column("a")[0] == 1.0
        assert t.column("b")[0] == 2.0

    def test_same_stamp_overwrites(self):
        # A fast-forward macro window stamps a sample at its end time; the
        # next decimated step can land on the same clock reading.  The
        # fresher state must supersede the row, never duplicate the stamp.
        t = Trace(["temp"])
        t.record(1.0, temp=30.0)
        t.record(1.5, temp=31.0)
        t.record(1.5, temp=32.0)
        assert len(t) == 2
        assert t.times()[-1] == 1.5
        assert t.column("temp")[-1] == 32.0
        assert np.all(np.diff(t.times()) > 0)

    def test_same_stamp_overwrite_refreshes_views(self):
        t = Trace(["temp"])
        t.record(1.0, temp=30.0)
        t.column("temp")  # populate the view cache
        t.record(1.0, temp=40.0)
        assert t.column("temp")[-1] == 40.0
        assert len(t) == 1

    def test_growth_beyond_initial_capacity(self):
        t = Trace(["temp"])
        for i in range(2000):
            t.record(float(i), temp=float(i))
        assert len(t) == 2000
        assert t.column("temp")[-1] == 1999.0
        assert t.times()[0] == 0.0

    def test_views_refresh_after_append(self, trace):
        before = trace.column("temp")
        trace.record(10.0, temp=99.0, freq=2165.0)
        after = trace.column("temp")
        assert len(before) == 10
        assert len(after) == 11
        assert after[-1] == 99.0

    def test_views_read_only(self, trace):
        with pytest.raises((ValueError, TypeError)):
            trace.column("temp")[0] = 0.0

    def test_unknown_column_rejected(self, trace):
        with pytest.raises(AnalysisError):
            trace.column("power")

    def test_duplicate_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            Trace(["a", "a"])

    def test_time_channel_reserved(self):
        with pytest.raises(ConfigurationError):
            Trace(["time", "x"])


class TestPhases:
    def test_phase_annotation(self):
        t = Trace(["temp"])
        t.begin_phase("warmup", 0.0)
        t.record(0.0, temp=30.0)
        t.begin_phase("workload", 5.0)  # implicitly closes warmup
        t.record(5.0, temp=50.0)
        t.end_phase(10.0)
        assert [p.name for p in t.phases] == ["warmup", "workload"]
        assert t.phase("warmup").duration_s == 5.0

    def test_phase_occurrences(self):
        t = Trace(["temp"])
        for i in range(3):
            t.begin_phase("workload", i * 10.0)
            t.end_phase(i * 10.0 + 5.0)
        assert t.phase("workload", occurrence=2).start_s == 20.0

    def test_missing_phase_raises(self, trace):
        with pytest.raises(AnalysisError):
            trace.phase("workload")

    def test_end_without_open_raises(self):
        with pytest.raises(AnalysisError):
            Trace(["temp"]).end_phase(1.0)

    def test_phase_column(self):
        t = Trace(["temp"])
        t.begin_phase("workload", 2.0)
        for i in range(10):
            t.record(float(i), temp=float(i))
        t.end_phase(6.0)
        samples = t.phase_column("workload", "temp")
        assert list(samples) == [2.0, 3.0, 4.0, 5.0]

    def test_span_contains(self):
        span = PhaseSpan("x", 1.0, 2.0)
        assert span.contains(1.0)
        assert not span.contains(2.0)

    def test_inverted_span_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseSpan("x", 2.0, 1.0)


class TestSummaries:
    def test_mean_min_max(self, trace):
        assert trace.mean("temp") == pytest.approx(34.5)
        assert trace.min("temp") == 30.0
        assert trace.max("temp") == 39.0

    def test_empty_trace_summaries_raise(self):
        t = Trace(["temp"])
        with pytest.raises(AnalysisError):
            t.mean("temp")

    def test_window(self, trace):
        values = trace.window(2.0, 5.0, "temp")
        assert list(values) == [32.0, 33.0, 34.0]

    def test_time_above(self, trace):
        # Samples at 1 s spacing; temps 30..39, threshold 35 -> 5 samples.
        assert trace.time_above("temp", 35.0) == pytest.approx(5.0)

    def test_time_above_non_uniform_spacing(self):
        # Each sample owns the interval to its successor (the last reuses
        # the preceding spacing): 5 + 1 + 1 = 7 s hot, not 3 samples
        # times the first interval's width.
        t = Trace(["temp"])
        for time_s, temp in [(0.0, 40.0), (5.0, 40.0), (6.0, 40.0), (7.0, 10.0)]:
            t.record(time_s, temp=temp)
        assert t.time_above("temp", 35.0) == pytest.approx(7.0)

    def test_time_above_gap_not_attributed_to_late_sample(self):
        # A long quiet gap before a hot sample must not be counted as hot.
        t = Trace(["temp"])
        for time_s, temp in [(0.0, 10.0), (100.0, 10.0), (101.0, 40.0), (102.0, 10.0)]:
            t.record(time_s, temp=temp)
        assert t.time_above("temp", 35.0) == pytest.approx(1.0)

    def test_histogram(self, trace):
        counts, edges = trace.histogram("temp", bins=5)
        assert counts.sum() == 10
        assert len(edges) == 6


class TestTransportSurface:
    """The attach/pickle API zero-copy result transport is built on."""

    def test_from_samples_adopts_block_without_copy(self):
        base = Trace(["a"])
        base.append(0.0, [1.0])
        base.append(1.0, [2.0])
        block = np.ascontiguousarray(base.samples())
        adopted = Trace.from_samples(("a",), block)
        assert len(adopted) == 2
        assert np.shares_memory(adopted.samples(), block)
        assert list(adopted.column("a")) == [1.0, 2.0]

    def test_append_after_adoption_grows_onto_heap_and_drops_owner(self):
        class Owner:
            pass

        owner = Owner()
        block = np.array([[0.0, 1.0], [1.0, 2.0]])
        adopted = Trace.from_samples(("a",), block, owner=owner)
        assert adopted._owner is owner
        # The adopted block is at capacity, so the first append copies the
        # samples onto the heap — the foreign buffer can be unmapped.
        adopted.append(2.0, [3.0])
        assert adopted._owner is None
        assert not np.shares_memory(adopted.samples(), block)
        assert len(adopted) == 3

    def test_pickle_ships_live_rows_only(self):
        import pickle

        t = Trace(["a", "b"], capacity=64)
        t.begin_phase("warm", 0.0)
        t.append(0.0, [1.0, 2.0])
        t.append(0.5, [3.0, 4.0])
        t.end_phase(0.5)
        t.begin_phase("load", 0.5)
        clone = pickle.loads(pickle.dumps(t))
        assert clone.channels == t.channels
        assert np.array_equal(clone.samples(), t.samples())
        assert clone.phases == t.phases
        assert clone.open_phase == t.open_phase
        # Capacity slack never travels: the clone's buffer is exactly its
        # live rows.
        assert clone._buffer.shape[0] == len(clone)

    def test_empty_trace_round_trips_and_stays_appendable(self):
        import pickle

        clone = pickle.loads(pickle.dumps(Trace(["a"])))
        assert len(clone) == 0
        clone.append(0.0, [1.0])
        clone.append(1.0, [2.0])
        assert len(clone) == 2

    def test_from_samples_rejects_mismatched_block(self):
        with pytest.raises(ConfigurationError):
            Trace.from_samples(("a",), np.zeros((3, 3)))
        with pytest.raises(ConfigurationError):
            Trace.from_samples(("a",), np.zeros(4))
