"""The batched fleet engine against its serial reference, unit for unit.

The contract (see :mod:`repro.sim.batch`) is draw-for-draw replay: every
random draw, throttle poll and clock tick lands exactly where the serial
``World`` would put it, leaving only BLAS summation order (GEMM vs GEMV)
as a tolerated ulp-level difference on thermal trajectories.
"""

import numpy as np
import pytest

from repro.device.fleet import synthetic_fleet
from repro.errors import SimulationError
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.thermabox import (
    BatchedThermabox,
    Thermabox,
    ThermaboxConfig,
)
from repro.sim.batch import BatchedWorld
from repro.sim.engine import World
from repro.thermal.ambient import ConstantAmbient

AMBIENT = 26.0
ROOM = 23.0
DT = 0.1
DECIM = 5
VOLTS = 3.8
#: GEMM-vs-GEMV summation order budget; observed worst case is ~2e-13 °C.
TRACE_ATOL = 2e-9


def build_fleet(count, model="Nexus 5"):
    devices = synthetic_fleet(
        model, count, thermal_solver="expm", initial_temp_c=AMBIENT
    )
    for device in devices:
        device.connect_supply(MonsoonPowerMonitor(VOLTS))
    return devices


def run_serial(devices, use_box):
    """The reference: one World per unit, full three-phase protocol."""
    finished = []
    for device in devices:
        chamber = None
        room = ConstantAmbient(AMBIENT)
        if use_box:
            chamber = Thermabox(
                ThermaboxConfig(target_c=AMBIENT), initial_temp_c=AMBIENT
            )
            chamber.wait_until_stable(ROOM)
            room = ConstantAmbient(ROOM)
        world = World(
            device, room=room, chamber=chamber, dt=DT, trace_decimation=DECIM
        )
        device.unconstrain_frequency()
        device.acquire_wakelock()
        device.start_load()
        world.set_phase("warmup")
        world.run_for(12.0)
        device.stop_load()
        device.release_wakelock()
        world.set_phase("cooldown")
        target = max(38.0, world.ambient_c + 6.0)
        cooldown = world.run_until(
            lambda w: device.read_cpu_temp() <= target, 5.0, 2700.0
        )
        device.acquire_wakelock()
        device.start_load()
        world.set_phase("workload")
        world.run_for(15.0)
        world.close()
        finished.append((world, cooldown))
    return finished


def run_batched(devices, use_box):
    chamber = None
    room = AMBIENT
    if use_box:
        chamber = BatchedThermabox(
            ThermaboxConfig(target_c=AMBIENT),
            count=len(devices),
            initial_temp_c=AMBIENT,
        )
        chamber.wait_until_stable(ROOM)
        room = ROOM
    world = BatchedWorld(
        devices, room_temp_c=room, chamber=chamber, dt=DT, trace_decimation=DECIM
    )
    world.unconstrain_frequency()
    world.acquire_wakelock()
    world.start_load()
    world.set_phase("warmup")
    world.run_for(12.0)
    world.stop_load()
    world.release_wakelock()
    world.set_phase("cooldown")
    targets = np.maximum(38.0, world.ambient_now() + 6.0)
    cooldown = world.run_cooldown(targets, 5.0, 2700.0)
    world.acquire_wakelock()
    world.start_load()
    world.set_phase("workload")
    world.run_for(15.0)
    world.close()
    world.finalize()
    return world, cooldown


class TestBatchedMatchesSerial:
    @pytest.mark.parametrize("use_box", [False, True])
    def test_full_protocol_agrees_per_unit(self, use_box):
        count = 3
        serial_devices = build_fleet(count)
        batch_devices = build_fleet(count)
        serial = run_serial(serial_devices, use_box)
        batched, cooldown_b = run_batched(batch_devices, use_box)
        for i, (world, cooldown_s) in enumerate(serial):
            trace_s, trace_b = world.trace, batched.traces[i]
            np.testing.assert_array_equal(trace_s.times(), trace_b.times())
            for channel in trace_s.channels:
                np.testing.assert_allclose(
                    trace_s.column(channel),
                    trace_b.column(channel),
                    rtol=0,
                    atol=TRACE_ATOL,
                    err_msg=f"unit {i} channel {channel}",
                )
            assert cooldown_s == pytest.approx(cooldown_b[i], abs=1e-9)
            events_s = [(e.time_s, e.kind, e.detail) for e in world.events]
            events_b = [
                (e.time_s, e.kind, e.detail) for e in batched.event_logs[i]
            ]
            assert events_s == events_b

    def test_finalize_writes_back_device_state(self):
        count = 2
        serial_devices = build_fleet(count)
        batch_devices = build_fleet(count)
        run_serial(serial_devices, use_box=False)
        run_batched(batch_devices, use_box=False)
        for ds, db in zip(serial_devices, batch_devices):
            assert ds.now_s == pytest.approx(db.now_s, abs=1e-9)
            assert ds.supply.energy_drawn_j == pytest.approx(
                db.supply.energy_drawn_j, abs=1e-6
            )
            for node in range(len(ds.thermal.node_names)):
                assert ds.thermal.temperature_at(node) == pytest.approx(
                    db.thermal.temperature_at(node), abs=TRACE_ATOL
                )
            assert ds.soc.mitigation == db.soc.mitigation
            for cs, cb in zip(ds.soc.clusters, db.soc.clusters):
                assert cs.freq_mhz == cb.freq_mhz
                assert cs.online_count == cb.online_count

    def test_second_model_agrees(self):
        # A little/big SoC with a different ladder and shutdown policy.
        serial_devices = build_fleet(2, model="Nexus 6P")
        batch_devices = build_fleet(2, model="Nexus 6P")
        serial = run_serial(serial_devices, use_box=False)
        batched, _ = run_batched(batch_devices, use_box=False)
        for i, (world, _) in enumerate(serial):
            for channel in world.trace.channels:
                np.testing.assert_allclose(
                    world.trace.column(channel),
                    batched.traces[i].column(channel),
                    rtol=0,
                    atol=TRACE_ATOL,
                )

    @pytest.mark.parametrize("use_box", [False, True])
    def test_mixed_model_fleet_agrees_per_unit(self, use_box):
        # Interleaved models exercise the block-diagonal cohort path:
        # results must come back in fleet order, identical to serial.
        def mixed():
            a = build_fleet(2)
            b = build_fleet(2, model="Nexus 6")
            return [a[0], b[0], a[1], b[1]]

        serial = run_serial(mixed(), use_box)
        batched, cooldown_b = run_batched(mixed(), use_box)
        for i, (world, cooldown_s) in enumerate(serial):
            trace_s, trace_b = world.trace, batched.traces[i]
            np.testing.assert_array_equal(trace_s.times(), trace_b.times())
            for channel in trace_s.channels:
                np.testing.assert_allclose(
                    trace_s.column(channel),
                    trace_b.column(channel),
                    rtol=0,
                    atol=TRACE_ATOL,
                    err_msg=f"unit {i} channel {channel}",
                )
            assert cooldown_s == pytest.approx(cooldown_b[i], abs=1e-9)
            events_s = [(e.time_s, e.kind, e.detail) for e in world.events]
            events_b = [
                (e.time_s, e.kind, e.detail) for e in batched.event_logs[i]
            ]
            assert events_s == events_b


class TestBatchedValidation:
    def test_rejects_empty_fleet(self):
        with pytest.raises(SimulationError):
            BatchedWorld([], room_temp_c=AMBIENT)

    def test_rejects_euler_devices(self):
        devices = synthetic_fleet(
            "Nexus 5", 2, thermal_solver="euler", initial_temp_c=AMBIENT
        )
        for device in devices:
            device.connect_supply(MonsoonPowerMonitor(VOLTS))
        with pytest.raises(SimulationError):
            BatchedWorld(devices, room_temp_c=AMBIENT)

    def test_run_for_requires_awake_units(self):
        world = BatchedWorld(build_fleet(2), room_temp_c=AMBIENT)
        with pytest.raises(SimulationError):
            world.run_for(1.0)

    def test_cooldown_requires_suspended_units(self):
        world = BatchedWorld(build_fleet(2), room_temp_c=AMBIENT)
        world.acquire_wakelock()
        with pytest.raises(SimulationError):
            world.run_cooldown(np.full(2, 38.0), 5.0, 100.0)

    def test_cooldown_timeout_matches_serial_error(self):
        world = BatchedWorld(build_fleet(2), room_temp_c=AMBIENT)
        with pytest.raises(SimulationError, match="timed out"):
            # An unreachable target (below ambient) must hit the timeout.
            world.run_cooldown(np.full(2, -100.0), 5.0, 20.0)


class TestBatchedThermabox:
    def test_columns_match_serial_chambers_exactly(self):
        count = 3
        config = ThermaboxConfig(target_c=AMBIENT)
        batched = BatchedThermabox(config, count=count, initial_temp_c=AMBIENT)
        serial = [
            Thermabox(config, initial_temp_c=AMBIENT) for _ in range(count)
        ]
        batched.wait_until_stable(ROOM)
        for chamber in serial:
            chamber.wait_until_stable(ROOM)
        rng = np.random.default_rng(3)
        mask = np.ones(count, dtype=bool)
        for _ in range(400):
            loads = rng.uniform(0.0, 6.0, size=count)
            batched.step_masked(mask, ROOM, DT, loads)
            for i, chamber in enumerate(serial):
                chamber.step(ROOM, DT, load_w=float(loads[i]))
        for i, chamber in enumerate(serial):
            assert batched.air_temps_c[i] == chamber.air_temp_c
            assert batched.heater_duty_seconds[i] == chamber.heater_duty_seconds
            assert batched.cooler_duty_seconds[i] == chamber.cooler_duty_seconds

    def test_masked_columns_do_not_advance(self):
        count = 2
        batched = BatchedThermabox(
            ThermaboxConfig(target_c=AMBIENT), count=count, initial_temp_c=AMBIENT
        )
        frozen_air = batched.air_temps_c[1]
        frozen_time = batched.elapsed_s[1]
        mask = np.array([True, False])
        for _ in range(50):
            batched.step_masked(mask, ROOM, DT, np.full(count, 4.0))
        assert batched.air_temps_c[1] == frozen_air
        assert batched.elapsed_s[1] == frozen_time
        assert batched.elapsed_s[0] == pytest.approx(50 * DT)
