"""Ambient-temperature profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.ambient import (
    ConstantAmbient,
    DiurnalAmbient,
    RampAmbient,
    StepAmbient,
    sweep,
)


class TestConstant:
    def test_constant(self):
        profile = ConstantAmbient(26.0)
        assert profile.temperature(0.0) == 26.0
        assert profile.temperature(1e6) == 26.0


class TestStep:
    def test_before_and_after(self):
        profile = StepAmbient(before_c=20.0, after_c=35.0, step_at_s=100.0)
        assert profile.temperature(99.9) == 20.0
        assert profile.temperature(100.0) == 35.0


class TestRamp:
    def test_endpoints(self):
        profile = RampAmbient(start_c=20.0, end_c=40.0, duration_s=100.0)
        assert profile.temperature(0.0) == 20.0
        assert profile.temperature(100.0) == 40.0

    def test_midpoint(self):
        profile = RampAmbient(start_c=20.0, end_c=40.0, duration_s=100.0)
        assert profile.temperature(50.0) == pytest.approx(30.0)

    def test_clamps_outside_duration(self):
        profile = RampAmbient(start_c=20.0, end_c=40.0, duration_s=100.0)
        assert profile.temperature(-5.0) == 20.0
        assert profile.temperature(500.0) == 40.0

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            RampAmbient(start_c=20.0, end_c=40.0, duration_s=0.0)


class TestDiurnal:
    def test_mean_at_phase_zero(self):
        profile = DiurnalAmbient(mean_c=25.0, amplitude_c=5.0)
        assert profile.temperature(0.0) == pytest.approx(25.0)

    def test_peak_quarter_period(self):
        profile = DiurnalAmbient(mean_c=25.0, amplitude_c=5.0, period_s=100.0)
        assert profile.temperature(25.0) == pytest.approx(30.0)

    def test_bounded_by_amplitude(self):
        profile = DiurnalAmbient(mean_c=25.0, amplitude_c=5.0, period_s=86400.0)
        for t in range(0, 86400, 3600):
            assert 20.0 <= profile.temperature(float(t)) <= 30.0

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalAmbient(mean_c=25.0, amplitude_c=-1.0)

    def test_zero_period_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalAmbient(mean_c=25.0, amplitude_c=1.0, period_s=0.0)


class TestSweep:
    def test_evenly_spaced(self):
        profiles = sweep(10.0, 40.0, 4)
        assert [p.temp_c for p in profiles] == [10.0, 20.0, 30.0, 40.0]

    def test_descending_allowed(self):
        profiles = sweep(40.0, 10.0, 3)
        assert [p.temp_c for p in profiles] == [40.0, 25.0, 10.0]

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            sweep(10.0, 40.0, 1)
