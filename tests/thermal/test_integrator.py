"""Explicit integration with sub-stepping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.thermal.integrator import PLAN_CACHE_SIZE, SAFETY_FACTOR, StableEuler


class TestStableStep:
    def test_max_step_from_rate(self):
        integrator = StableEuler(max_rate=2.0)
        assert integrator.max_stable_step == pytest.approx(SAFETY_FACTOR * 1.0)

    def test_zero_rate_means_unbounded_step(self):
        assert StableEuler(max_rate=0.0).max_stable_step == float("inf")

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            StableEuler(max_rate=-1.0)


class TestAdvance:
    def test_exponential_decay_accuracy(self):
        # dx/dt = -x; analytic solution exp(-t).
        integrator = StableEuler(max_rate=20.0)  # forces fine sub-steps
        state = np.array([1.0])
        forcing = np.array([0.0])
        integrator.advance(lambda s, f: -s, state, forcing, 1.0)
        assert state[0] == pytest.approx(np.exp(-1.0), rel=0.05)

    def test_stiff_system_remains_stable(self):
        # A rate of 100/s with dt=1 would explode without sub-stepping.
        integrator = StableEuler(max_rate=100.0)
        state = np.array([1.0])
        forcing = np.array([0.0])
        for _ in range(10):
            integrator.advance(lambda s, f: -100.0 * s, state, forcing, 1.0)
        assert abs(state[0]) < 1e-6

    def test_forcing_is_zero_order_hold(self):
        # dx/dt = f with constant f: exact for Euler regardless of steps.
        integrator = StableEuler(max_rate=10.0)
        state = np.array([0.0])
        forcing = np.array([3.0])
        integrator.advance(lambda s, f: f, state, forcing, 2.0)
        assert state[0] == pytest.approx(6.0)

    def test_in_place_mutation(self):
        integrator = StableEuler(max_rate=1.0)
        state = np.array([5.0])
        same = state
        integrator.advance(lambda s, f: f, state, np.array([1.0]), 1.0)
        assert same is state

    def test_non_positive_dt_rejected(self):
        integrator = StableEuler(max_rate=1.0)
        with pytest.raises(ConfigurationError):
            integrator.advance(lambda s, f: s, np.array([1.0]), np.array([0.0]), 0.0)


class TestPlanCache:
    def test_plan_values(self):
        integrator = StableEuler(max_rate=100.0)  # max step 0.005 s
        substeps, h = integrator.plan(1.0)
        assert substeps == 200
        assert h == pytest.approx(1.0 / 200)

    def test_plan_is_memoized(self):
        integrator = StableEuler(max_rate=100.0)
        assert integrator.plan(1.0) is integrator.plan(1.0)

    def test_distinct_dts_distinct_plans(self):
        integrator = StableEuler(max_rate=100.0)
        assert integrator.plan(1.0) != integrator.plan(2.0)

    def test_cache_resets_instead_of_growing(self):
        integrator = StableEuler(max_rate=100.0)
        for i in range(PLAN_CACHE_SIZE * 3):
            integrator.plan(0.1 + i * 1e-4)
        assert len(integrator._plans) <= PLAN_CACHE_SIZE

    def test_unbounded_step_takes_single_substep(self):
        integrator = StableEuler(max_rate=0.0)
        assert integrator.plan(1e6) == (1, 1e6)
