"""Skin temperature and comfort."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.skin import (
    COMFORT_HOT_C,
    COMFORT_WARM_C,
    SkinModel,
    SkinThrottle,
)


class TestSkinModel:
    def test_surface_between_case_and_ambient(self):
        model = SkinModel(contact_resistance=0.35)
        surface = model.surface_temp_c(case_temp_c=50.0, ambient_c=26.0)
        assert 26.0 < surface < 50.0

    def test_zero_resistance_is_case_temperature(self):
        model = SkinModel(contact_resistance=0.0)
        assert model.surface_temp_c(47.0, 26.0) == 47.0

    def test_equilibrium_case_stays_ambient(self):
        model = SkinModel()
        assert model.surface_temp_c(26.0, 26.0) == 26.0

    def test_metal_feels_hotter_than_plastic(self):
        plastic = SkinModel(material_feel_factor=1.0)
        metal = SkinModel(material_feel_factor=1.25)
        assert metal.perceived_temp_c(50.0, 26.0) > plastic.perceived_temp_c(
            50.0, 26.0
        )

    def test_comfort_classification(self):
        model = SkinModel(contact_resistance=0.0)
        assert model.comfort_level(35.0, 26.0) == "comfortable"
        assert model.comfort_level(COMFORT_WARM_C + 1.0, 26.0) == "warm"
        assert model.comfort_level(COMFORT_HOT_C + 1.0, 26.0) == "hot"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SkinModel(contact_resistance=1.0)
        with pytest.raises(ConfigurationError):
            SkinModel(material_feel_factor=0.0)


class TestSkinThrottle:
    @pytest.fixture
    def throttle(self) -> SkinThrottle:
        return SkinThrottle(
            skin_model=SkinModel(contact_resistance=0.0),
            throttle_surface_c=41.0,
            clear_surface_c=38.5,
            poll_interval_s=20.0,
        )

    def test_cool_surface_never_throttles(self, throttle):
        for t in range(0, 200, 20):
            assert throttle.update(35.0, 26.0, float(t)) == 0

    def test_hot_surface_steps_down(self, throttle):
        assert throttle.update(45.0, 26.0, 0.0) == 1
        assert throttle.update(45.0, 26.0, 20.0) == 2

    def test_polls_are_slow(self, throttle):
        assert throttle.update(45.0, 26.0, 0.0) == 1
        # Ten seconds later: no new poll yet.
        assert throttle.update(45.0, 26.0, 10.0) == 1

    def test_hysteresis(self, throttle):
        throttle.update(45.0, 26.0, 0.0)
        assert throttle.update(40.0, 26.0, 20.0) == 1  # inside the band
        assert throttle.update(37.0, 26.0, 40.0) == 0  # below clear

    def test_caps_at_max_steps(self):
        throttle = SkinThrottle(
            skin_model=SkinModel(contact_resistance=0.0), max_steps=3
        )
        for t in range(0, 200, 20):
            steps = throttle.update(60.0, 26.0, float(t))
        assert steps == 3

    def test_contact_resistance_delays_response(self):
        # With a resistive surface layer, the same case temperature reads
        # cooler at the surface, so the throttle engages later.
        direct = SkinThrottle(skin_model=SkinModel(contact_resistance=0.0))
        insulated = SkinThrottle(skin_model=SkinModel(contact_resistance=0.5))
        assert direct.update(42.0, 26.0, 0.0) == 1
        assert insulated.update(42.0, 26.0, 0.0) == 0

    def test_reset(self, throttle):
        throttle.update(45.0, 26.0, 0.0)
        throttle.reset()
        assert throttle.steps == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SkinThrottle(
                skin_model=SkinModel(),
                throttle_surface_c=38.0,
                clear_surface_c=40.0,
            )
