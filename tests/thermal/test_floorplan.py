"""Die floorplan thermal model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.thermal.floorplan import (
    Block,
    Floorplan,
    GridThermalModel,
    sd800_floorplan,
)


def small_plan() -> Floorplan:
    return Floorplan(
        die_width_m=8e-3,
        die_height_m=8e-3,
        blocks=(
            Block(name="left", x=0.0, y=0.0, width=0.5, height=1.0),
            Block(name="right", x=0.5, y=0.0, width=0.5, height=1.0),
        ),
    )


class TestFloorplanValidation:
    def test_block_must_fit_die(self):
        with pytest.raises(ConfigurationError):
            Block(name="big", x=0.5, y=0.0, width=0.6, height=0.5)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Floorplan(
                die_width_m=1e-3, die_height_m=1e-3,
                blocks=(
                    Block(name="a", x=0.0, y=0.0, width=0.4, height=0.4),
                    Block(name="a", x=0.5, y=0.5, width=0.4, height=0.4),
                ),
            )

    def test_block_lookup(self):
        plan = small_plan()
        assert plan.block("left").x == 0.0
        with pytest.raises(ConfigurationError):
            plan.block("middle")

    def test_sd800_floorplan_shape(self):
        plan = sd800_floorplan()
        names = {block.name for block in plan.blocks}
        assert {"core0", "core1", "core2", "core3", "l2", "uncore"} <= names


class TestGridPhysics:
    def test_uniform_power_uniform_temperature(self):
        model = GridThermalModel(small_plan(), grid=(16, 16))
        model.settle({"left": 1.0, "right": 1.0}, package_temp_c=45.0)
        temps = model.temperature_map()
        # Symmetric load on a symmetric die: small spread (edges vs centre).
        assert float(temps.max() - temps.min()) < 1.0

    def test_busy_block_is_hotter(self):
        model = GridThermalModel(small_plan(), grid=(16, 16))
        model.settle({"left": 2.0, "right": 0.0}, package_temp_c=45.0)
        assert model.block_temp_c("left") > model.block_temp_c("right") + 0.5

    def test_symmetry(self):
        left_loaded = GridThermalModel(small_plan(), grid=(16, 16))
        right_loaded = GridThermalModel(small_plan(), grid=(16, 16))
        left_loaded.settle({"left": 2.0}, 45.0)
        right_loaded.settle({"right": 2.0}, 45.0)
        assert left_loaded.block_temp_c("left") == pytest.approx(
            right_loaded.block_temp_c("right"), abs=1e-6
        )

    def test_all_heat_sinks_to_package_steady_state(self):
        # At steady state the package flux equals injected power.
        model = GridThermalModel(small_plan(), grid=(12, 12))
        model.settle({"left": 1.5}, package_temp_c=45.0, duration_s=12.0)
        temps = model.temperature_map()
        cell_area = (8e-3 / 12) ** 2
        from repro.thermal.floorplan import DEFAULT_H_PACKAGE

        sunk = DEFAULT_H_PACKAGE * cell_area * float((temps - 45.0).sum())
        assert sunk == pytest.approx(1.5, rel=0.02)

    def test_no_power_relaxes_to_package(self):
        model = GridThermalModel(small_plan(), grid=(8, 8), initial_temp_c=80.0)
        model.settle({}, package_temp_c=40.0, duration_s=10.0)
        assert model.die_mean_c() == pytest.approx(40.0, abs=0.1)

    def test_hotspot_exceeds_die_mean(self):
        model = GridThermalModel(sd800_floorplan(), grid=(24, 24))
        model.settle({"core1": 1.0}, package_temp_c=45.0)
        assert model.hotspot_c() > model.die_mean_c()

    def test_far_core_barely_heats(self):
        model = GridThermalModel(sd800_floorplan(), grid=(24, 24))
        model.settle({"core0": 1.0}, package_temp_c=45.0)
        near = model.block_temp_c("core1")
        far = model.block_temp_c("core3")
        assert near > far


class TestLumpedModelJustification:
    def test_hotspot_resistance_in_calibrated_range(self):
        # The lumped catalog uses 4.5-9.5 K/W hotspot resistances; the
        # grid model's per-core value must be the same order of magnitude.
        model = GridThermalModel(sd800_floorplan())
        r = model.hotspot_resistance_k_per_w("core0")
        assert 0.5 <= r <= 20.0

    def test_quad_load_raises_mean_close_to_hotspot(self):
        # With all cores busy (the paper's workload) the die is nearly
        # isothermal compared to a single-core hotspot: the lumped 'cpu'
        # node is a good abstraction for THIS workload.
        model = GridThermalModel(sd800_floorplan(), grid=(24, 24))
        model.settle({f"core{i}": 0.9 for i in range(4)}, 45.0)
        all_core_gap = model.hotspot_c() - model.die_mean_c()
        single = GridThermalModel(sd800_floorplan(), grid=(24, 24))
        single.settle({"core0": 3.6}, 45.0)
        single_gap = single.hotspot_c() - single.die_mean_c()
        assert all_core_gap < single_gap


class TestStability:
    def test_large_steps_do_not_blow_up(self):
        model = GridThermalModel(small_plan(), grid=(10, 10))
        model.step({"left": 3.0}, package_temp_c=45.0, dt=5.0)
        temps = model.temperature_map()
        assert np.isfinite(temps).all()
        assert temps.max() < 200.0

    def test_unknown_block_power_rejected(self):
        model = GridThermalModel(small_plan())
        with pytest.raises(ConfigurationError):
            model.step({"gpu": 1.0}, 45.0, 0.1)

    def test_bad_dt_rejected(self):
        with pytest.raises(SimulationError):
            GridThermalModel(small_plan()).step({}, 45.0, 0.0)

    def test_too_coarse_grid_for_block_rejected(self):
        plan = Floorplan(
            die_width_m=8e-3, die_height_m=8e-3,
            blocks=(Block(name="sliver", x=0.49, y=0.49, width=0.01, height=0.01),),
        )
        with pytest.raises(ConfigurationError):
            GridThermalModel(plan, grid=(4, 4))
