"""Exact ZOH propagation: equivalence with Euler, stiffness, caching."""

import math

import numpy as np
import pytest

from repro.check import Tolerance, ToleranceSpec
from repro.errors import ConfigurationError, SimulationError
from repro.thermal.integrator import StableEuler
from repro.thermal.network import ThermalLink, ThermalNetwork, ThermalNode
from repro.thermal.propagator import ExpmPropagator, clear_shared_cache

#: Exact-vs-fine-Euler drift budget per node; the semigroup identity
#: (one macro step == many small steps) is held to numerical noise.
EQUIVALENCE_SPEC = ToleranceSpec(
    name="propagator-equivalence", default=Tolerance(abs_tol=0.05)
)
SEMIGROUP_SPEC = ToleranceSpec(
    name="propagator-semigroup", default=Tolerance(abs_tol=1e-9)
)


def random_topology(rng: np.random.Generator):
    """A random connected network: one boundary node plus 2–6 finite ones.

    Built as a random tree over all nodes (so every finite node has a path
    to the boundary) with a few extra cross links sprinkled in.
    """
    finite_count = int(rng.integers(2, 7))
    nodes = [ThermalNode("amb", math.inf)]
    names = ["amb"]
    for i in range(finite_count):
        name = f"n{i}"
        nodes.append(ThermalNode(name, float(10.0 ** rng.uniform(-0.3, 1.7))))
        names.append(name)
    links = []
    seen = set()
    for i in range(1, len(names)):
        j = int(rng.integers(0, i))
        links.append(
            ThermalLink(names[i], names[j], float(10.0 ** rng.uniform(-1, 1)))
        )
        seen.add((j, i))
    for _ in range(int(rng.integers(0, 3))):
        a, b = sorted(rng.choice(len(names), size=2, replace=False).tolist())
        if (a, b) not in seen:
            seen.add((a, b))
            links.append(
                ThermalLink(names[a], names[b], float(10.0 ** rng.uniform(-1, 1)))
            )
    return nodes, links, names


def build_pair(nodes, links, temps):
    networks = []
    for solver in ("expm", "euler"):
        net = ThermalNetwork(
            nodes=nodes, links=links, initial_temps_c=temps, solver=solver
        )
        networks.append(net)
    return networks


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("dt", [0.1, 1.0, 5.0])
    def test_matches_fine_euler_reference(self, seed, dt):
        rng = np.random.default_rng(seed)
        nodes, links, names = random_topology(rng)
        temps = {name: float(rng.uniform(20.0, 80.0)) for name in names}
        exact, reference = build_pair(nodes, links, temps)
        powers = {
            node.name: float(rng.uniform(0.0, 5.0))
            for node in nodes
            if not node.is_boundary
        }
        exact.step(powers, dt)
        # Reference: the same ZOH window, Euler-integrated in 400 chunks
        # (StableEuler sub-divides each chunk further if still too stiff).
        for _ in range(400):
            reference.step(powers, dt / 400)
        divergences = EQUIVALENCE_SPEC.compare_mapping(
            exact.temperatures(),
            reference.temperatures(),
            context=f"dt={dt} seed={seed}",
        )
        assert divergences == [], [d.describe() for d in divergences]

    def test_macro_step_equals_many_small_steps(self):
        # The propagator is exact, so stepping is a semigroup: one 10 s
        # step must land exactly where 100 x 0.1 s steps do.
        rng = np.random.default_rng(42)
        nodes, links, names = random_topology(rng)
        temps = {name: float(rng.uniform(20.0, 80.0)) for name in names}
        one, many = build_pair(nodes, links, temps)[0], None
        many = ThermalNetwork(
            nodes=nodes, links=links, initial_temps_c=temps, solver="expm"
        )
        powers = {
            node.name: 2.0 for node in nodes if not node.is_boundary
        }
        one.step(powers, 10.0)
        for _ in range(100):
            many.step(powers, 0.1)
        divergences = SEMIGROUP_SPEC.compare_mapping(
            one.temperatures(), many.temperatures(), context="semigroup"
        )
        assert divergences == [], [d.describe() for d in divergences]

    def test_boundary_temperature_untouched(self):
        rng = np.random.default_rng(7)
        nodes, links, names = random_topology(rng)
        net = ThermalNetwork(nodes=nodes, links=links, solver="expm")
        net.set_temperature("amb", 31.5)
        net.step({}, 100.0)
        assert net.temperature("amb") == 31.5

    def test_relaxes_to_dc_solution(self):
        net = ThermalNetwork(
            nodes=[ThermalNode("die", 10.0), ThermalNode("amb", math.inf)],
            links=[ThermalLink("die", "amb", 2.0)],
            initial_temp_c=25.0,
            solver="expm",
        )
        net.step({"die": 5.0}, 10000.0)  # many time constants, one step
        assert net.temperature("die") == pytest.approx(35.0, abs=1e-6)


class TestStiffness:
    def test_tiny_capacity_node_stays_exact(self):
        # A near-massless node (a sensor lug) makes the system stiff:
        # Euler's stable sub-step collapses while expm takes one matvec.
        tiny_c, r = 1e-3, 0.1
        net = ThermalNetwork(
            nodes=[ThermalNode("lug", tiny_c), ThermalNode("amb", math.inf)],
            links=[ThermalLink("lug", "amb", r)],
            initial_temps_c={"lug": 80.0, "amb": 25.0},
            solver="expm",
        )
        dt = 5.0
        net.step({"lug": 2.0}, dt)
        # Analytic: tau = r*c = 1e-4 s << dt, so the node sits at DC.
        assert net.temperature("lug") == pytest.approx(25.0 + 2.0 * r, abs=1e-9)

    def test_euler_substep_count_explodes_where_expm_does_not(self):
        tiny_c, r = 1e-3, 0.1
        rate = (1.0 / r) / tiny_c
        integrator = StableEuler(max_rate=rate)
        substeps, _ = integrator.plan(5.0)
        assert substeps > 10_000  # the cost expm eliminates
        propagator = ExpmPropagator(
            conductance=np.array([[0.0, 1.0 / r], [1.0 / r, 0.0]]),
            capacity=np.array([tiny_c, math.inf]),
            boundary=np.array([False, True]),
        )
        temps = np.array([80.0, 25.0])
        propagator.advance(temps, np.array([0.0, 0.0]), 5.0)
        assert temps[0] == pytest.approx(25.0, abs=1e-9)


class TestCache:
    def make(self) -> ExpmPropagator:
        # The (Φ, Ψ) cache is shared process-wide per topology; clear it so
        # each test observes per-instance hit/miss counts from a cold start.
        clear_shared_cache()
        return ExpmPropagator(
            conductance=np.array([[0.0, 0.5], [0.5, 0.0]]),
            capacity=np.array([10.0, math.inf]),
            boundary=np.array([False, True]),
            cache_size=2,
        )

    def test_pair_is_reused_per_dt(self):
        propagator = self.make()
        first = propagator.pair(0.1)
        second = propagator.pair(0.1)
        assert first is second
        assert propagator.cache_hits == 1
        assert propagator.cache_misses == 1

    def test_lru_evicts_oldest(self):
        propagator = self.make()
        pair_a = propagator.pair(0.1)
        propagator.pair(1.0)
        propagator.pair(0.1)      # refresh 0.1 -> 1.0 is now oldest
        propagator.pair(5.0)      # evicts 1.0
        assert propagator.pair(0.1) is pair_a  # still cached
        propagator.pair(1.0)      # rebuilt
        assert propagator.cache_misses == 4

    def test_distinct_dt_distinct_pairs(self):
        propagator = self.make()
        phi_small, _ = propagator.pair(0.1)
        phi_large, _ = propagator.pair(10.0)
        assert not np.allclose(phi_small, phi_large)

    def test_same_topology_instances_share_pairs(self):
        # A fleet of same-model devices should pay for each (Φ, Ψ) once:
        # the second instance's first pair() call is already a hit.
        first = self.make()
        pair = first.pair(0.1)
        twin = ExpmPropagator(
            conductance=np.array([[0.0, 0.5], [0.5, 0.0]]),
            capacity=np.array([10.0, math.inf]),
            boundary=np.array([False, True]),
            cache_size=2,
        )
        assert twin.pair(0.1) is pair
        assert twin.cache_hits == 1 and twin.cache_misses == 0
        # Per-instance accounting: the first instance saw only its own miss.
        assert first.cache_hits == 0 and first.cache_misses == 1

    def test_pickle_round_trip_reregisters(self):
        import pickle

        propagator = self.make()
        propagator.pair(0.1)
        clone = pickle.loads(pickle.dumps(propagator))
        assert clone.cache_misses == 1  # counters travel with the instance
        # The clone shares this process's cache, so the pair is a hit.
        clone.pair(0.1)
        assert clone.cache_hits == 1


class TestBatchAdvance:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_serial_rows(self, seed):
        rng = np.random.default_rng(seed)
        nodes, links, names = random_topology(rng)
        net = ThermalNetwork(nodes=nodes, links=links, solver="expm")
        propagator = net.propagator
        units = 6
        temps = rng.uniform(20.0, 80.0, size=(units, len(names)))
        power = np.zeros((units, len(names)))
        boundary = np.array([node.is_boundary for node in nodes])
        power[:, ~boundary] = rng.uniform(0.0, 5.0, size=(units, int((~boundary).sum())))
        batched = temps.copy()
        propagator.advance_batch(batched, power, 0.5)
        for row in range(units):
            serial = temps[row].copy()
            propagator.advance(serial, power[row], 0.5)
            np.testing.assert_allclose(batched[row], serial, rtol=0, atol=1e-9)

    def test_boundary_rows_untouched(self):
        propagator = TestCache().make()
        temps = np.array([[80.0, 25.0], [60.0, 31.0]])
        propagator.advance_batch(temps, np.zeros((2, 2)), 1.0)
        assert temps[0, 1] == 25.0 and temps[1, 1] == 31.0


class TestValidation:
    def test_non_positive_dt_rejected(self):
        propagator = TestCache().make()
        with pytest.raises(SimulationError):
            propagator.pair(0.0)

    def test_needs_boundary(self):
        with pytest.raises(ConfigurationError):
            ExpmPropagator(
                conductance=np.zeros((1, 1)),
                capacity=np.array([1.0]),
                boundary=np.array([False]),
            )

    def test_needs_finite_node(self):
        with pytest.raises(ConfigurationError):
            ExpmPropagator(
                conductance=np.zeros((1, 1)),
                capacity=np.array([math.inf]),
                boundary=np.array([True]),
            )

    def test_bad_cache_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ExpmPropagator(
                conductance=np.array([[0.0, 0.5], [0.5, 0.0]]),
                capacity=np.array([10.0, math.inf]),
                boundary=np.array([False, True]),
                cache_size=0,
            )

    def test_unknown_network_solver_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalNetwork(
                nodes=[ThermalNode("die", 1.0), ThermalNode("amb", math.inf)],
                links=[ThermalLink("die", "amb", 1.0)],
                solver="rk4",
            )

    def test_network_solver_properties(self):
        kwargs = dict(
            nodes=[ThermalNode("die", 1.0), ThermalNode("amb", math.inf)],
            links=[ThermalLink("die", "amb", 1.0)],
        )
        euler = ThermalNetwork(solver="euler", **kwargs)
        expm = ThermalNetwork(solver="expm", **kwargs)
        assert euler.solver == "euler" and not euler.is_exact
        assert euler.propagator is None
        assert expm.solver == "expm" and expm.is_exact
        assert expm.propagator is not None
        assert expm.propagator.finite_count == 1
        assert expm.propagator.slowest_time_constant_s == pytest.approx(1.0)
