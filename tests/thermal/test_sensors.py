"""Temperature sensors."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.thermal.network import ThermalLink, ThermalNetwork, ThermalNode
from repro.thermal.sensors import TemperatureSensor


@pytest.fixture
def network() -> ThermalNetwork:
    net = ThermalNetwork(
        nodes=[ThermalNode("cpu", 1.0), ThermalNode("ambient", math.inf)],
        links=[ThermalLink("cpu", "ambient", 1.0)],
        initial_temp_c=26.0,
    )
    net.set_temperature("cpu", 41.37)
    return net


class TestRead:
    def test_noiseless_quantized_read(self, network):
        sensor = TemperatureSensor(node="cpu", quantization_c=0.1)
        assert sensor.read(network) == pytest.approx(41.4)

    def test_coarse_quantization(self, network):
        sensor = TemperatureSensor(node="cpu", quantization_c=1.0)
        assert sensor.read(network) == pytest.approx(41.0)

    def test_no_quantization(self, network):
        sensor = TemperatureSensor(node="cpu", quantization_c=0.0)
        assert sensor.read(network) == pytest.approx(41.37)

    def test_offset(self, network):
        sensor = TemperatureSensor(node="cpu", quantization_c=0.0, offset_c=2.0)
        assert sensor.read(network) == pytest.approx(43.37)

    def test_noise_spreads_readings(self, network):
        rng = np.random.default_rng(5)
        sensor = TemperatureSensor(
            node="cpu", quantization_c=0.0, noise_sigma_c=0.5, rng=rng
        )
        readings = {sensor.read(network) for _ in range(20)}
        assert len(readings) > 1

    def test_noise_is_unbiased(self, network):
        rng = np.random.default_rng(5)
        sensor = TemperatureSensor(
            node="cpu", quantization_c=0.0, noise_sigma_c=0.2, rng=rng
        )
        mean = sum(sensor.read(network) for _ in range(500)) / 500
        assert mean == pytest.approx(41.37, abs=0.05)


class TestValidation:
    def test_noise_requires_rng(self):
        with pytest.raises(ConfigurationError):
            TemperatureSensor(node="cpu", noise_sigma_c=0.1)

    def test_negative_quantization_rejected(self):
        with pytest.raises(ConfigurationError):
            TemperatureSensor(node="cpu", quantization_c=-0.1)

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            TemperatureSensor(node="cpu", noise_sigma_c=-0.1)
