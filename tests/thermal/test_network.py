"""RC thermal networks."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.thermal.network import ThermalLink, ThermalNetwork, ThermalNode


def two_node_network(initial=25.0, r=2.0, c=10.0) -> ThermalNetwork:
    return ThermalNetwork(
        nodes=[ThermalNode("die", c), ThermalNode("ambient", math.inf)],
        links=[ThermalLink("die", "ambient", r)],
        initial_temp_c=initial,
    )


class TestNodesAndLinks:
    def test_boundary_detection(self):
        assert ThermalNode("ambient", math.inf).is_boundary
        assert not ThermalNode("die", 5.0).is_boundary

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalNode("die", 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalNode("", 5.0)

    def test_self_link_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalLink("a", "a", 1.0)

    def test_zero_resistance_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalLink("a", "b", 0.0)

    def test_conductance(self):
        assert ThermalLink("a", "b", 4.0).conductance == pytest.approx(0.25)


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalNetwork(
                nodes=[ThermalNode("x", 1.0), ThermalNode("x", math.inf)],
                links=[],
            )

    def test_unknown_link_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalNetwork(
                nodes=[ThermalNode("die", 1.0), ThermalNode("ambient", math.inf)],
                links=[ThermalLink("die", "nowhere", 1.0)],
            )

    def test_requires_boundary_node(self):
        with pytest.raises(ConfigurationError):
            ThermalNetwork(nodes=[ThermalNode("die", 1.0)], links=[])

    def test_initial_temps_applied(self):
        net = ThermalNetwork(
            nodes=[ThermalNode("die", 1.0), ThermalNode("ambient", math.inf)],
            links=[ThermalLink("die", "ambient", 1.0)],
            initial_temp_c=20.0,
            initial_temps_c={"die": 55.0},
        )
        assert net.temperature("die") == 55.0
        assert net.temperature("ambient") == 20.0


class TestDynamics:
    def test_relaxes_to_ambient(self):
        net = two_node_network(initial=25.0)
        net.set_temperature("die", 80.0)
        for _ in range(10000):
            net.step({}, 0.1)
        assert net.temperature("die") == pytest.approx(25.0, abs=0.01)

    def test_heats_toward_dc_solution(self):
        net = two_node_network(r=2.0, c=10.0)
        for _ in range(5000):
            net.step({"die": 5.0}, 0.1)
        # DC: rise = P * R = 10 C above ambient.
        assert net.temperature("die") == pytest.approx(35.0, abs=0.05)

    def test_boundary_holds_temperature(self):
        net = two_node_network()
        for _ in range(100):
            net.step({"die": 10.0}, 0.1)
        assert net.temperature("ambient") == 25.0

    def test_power_into_boundary_rejected(self):
        net = two_node_network()
        with pytest.raises(SimulationError):
            net.step({"ambient": 1.0}, 0.1)

    def test_non_positive_dt_rejected(self):
        with pytest.raises(SimulationError):
            two_node_network().step({}, 0.0)

    def test_unknown_power_target_rejected(self):
        with pytest.raises(ConfigurationError):
            two_node_network().step({"gpu": 1.0}, 0.1)

    def test_stability_with_large_step(self):
        # dt far above the node time constant must not blow up thanks to
        # automatic sub-stepping.
        net = two_node_network(r=0.5, c=0.2)  # tau = 0.1 s
        for _ in range(100):
            net.step({"die": 3.0}, 1.0)
        assert net.temperature("die") == pytest.approx(25.0 + 1.5, abs=0.05)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.1, max_value=8.0))
    def test_monotone_heating_from_equilibrium(self, power):
        net = two_node_network()
        previous = net.temperature("die")
        for _ in range(50):
            net.step({"die": power}, 0.2)
            current = net.temperature("die")
            assert current >= previous - 1e-9
            previous = current

    def test_heat_flows_down_gradient_in_chain(self):
        net = ThermalNetwork(
            nodes=[
                ThermalNode("die", 2.0),
                ThermalNode("case", 20.0),
                ThermalNode("ambient", math.inf),
            ],
            links=[
                ThermalLink("die", "case", 2.0),
                ThermalLink("case", "ambient", 5.0),
            ],
            initial_temp_c=25.0,
        )
        for _ in range(20000):
            net.step({"die": 2.0}, 0.1)
        die, case, amb = (
            net.temperature("die"),
            net.temperature("case"),
            net.temperature("ambient"),
        )
        assert die > case > amb
        # DC check: die = 25 + 2*(2+5) = 39, case = 25 + 2*5 = 35.
        assert die == pytest.approx(39.0, abs=0.05)
        assert case == pytest.approx(35.0, abs=0.05)


class TestSteadyState:
    def test_steady_state_rise(self):
        net = two_node_network(r=3.0)
        assert net.steady_state_rise("die", 2.0, "ambient") == pytest.approx(6.0)

    def test_rise_through_chain(self):
        net = ThermalNetwork(
            nodes=[
                ThermalNode("die", 2.0),
                ThermalNode("case", 20.0),
                ThermalNode("ambient", math.inf),
            ],
            links=[
                ThermalLink("die", "case", 2.0),
                ThermalLink("case", "ambient", 5.0),
            ],
        )
        assert net.steady_state_rise("die", 1.0, "ambient") == pytest.approx(7.0)

    def test_rejects_non_boundary_reference(self):
        net = two_node_network()
        with pytest.raises(ConfigurationError):
            net.steady_state_rise("die", 1.0, "die")


class TestIntrospection:
    def test_node_names(self):
        assert two_node_network().node_names == ("die", "ambient")

    def test_temperatures_snapshot(self):
        temps = two_node_network(initial=30.0).temperatures()
        assert temps == {"die": 30.0, "ambient": 30.0}

    def test_settle_to(self):
        net = two_node_network()
        net.settle_to(42.0)
        assert all(t == 42.0 for t in net.temperatures().values())

    def test_unknown_node_lookup(self):
        with pytest.raises(ConfigurationError):
            two_node_network().temperature("gpu")
