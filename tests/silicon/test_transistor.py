"""Per-die silicon profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.silicon.process import PROCESS_28NM_LP
from repro.silicon.transistor import SiliconProfile


class TestNominal:
    def test_nominal_profile(self):
        nominal = SiliconProfile.nominal()
        assert nominal.vth_delta == 0.0
        assert nominal.speed_factor == 1.0
        assert nominal.leak_factor == 1.0


class TestFromVthDelta:
    def test_zero_delta_is_nominal(self):
        profile = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, 0.0)
        assert profile.speed_factor == pytest.approx(1.0)
        assert profile.leak_factor == pytest.approx(1.0)

    def test_fast_die_is_leaky(self):
        fast = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, -0.03)
        assert fast.speed_factor > 1.0
        assert fast.leak_factor > 1.0

    def test_slow_die_leaks_little(self):
        slow = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, +0.03)
        assert slow.speed_factor < 1.0
        assert slow.leak_factor < 1.0

    def test_absurd_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            SiliconProfile.from_vth_delta(PROCESS_28NM_LP, 10.0)

    @given(st.floats(min_value=-0.06, max_value=0.06))
    def test_speed_and_leak_move_oppositely_with_vth(self, delta):
        profile = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, delta)
        nominal = SiliconProfile.nominal()
        if delta > 0:
            assert profile.speed_factor <= nominal.speed_factor
            assert profile.leak_factor <= nominal.leak_factor
        elif delta < 0:
            assert profile.speed_factor >= nominal.speed_factor
            assert profile.leak_factor >= nominal.leak_factor

    @given(
        st.floats(min_value=-0.05, max_value=0.05),
        st.floats(min_value=-0.05, max_value=0.05),
    )
    def test_leak_ordering_tracks_vth_ordering(self, d1, d2):
        p1 = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, d1)
        p2 = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, d2)
        if d1 < d2:
            assert p1.leak_factor >= p2.leak_factor


class TestValidation:
    def test_non_positive_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            SiliconProfile(vth_delta=0.0, speed_factor=0.0, leak_factor=1.0)

    def test_non_positive_leak_rejected(self):
        with pytest.raises(ConfigurationError):
            SiliconProfile(vth_delta=0.0, speed_factor=1.0, leak_factor=-0.5)

    def test_is_faster_than(self):
        fast = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, -0.02)
        slow = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, +0.02)
        assert fast.is_faster_than(slow)
        assert not slow.is_faster_than(fast)
