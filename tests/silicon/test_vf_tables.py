"""Voltage/frequency tables, including the paper's Table I."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.silicon.vf_tables import (
    NEXUS5_BIN_COUNT,
    NEXUS5_VF_FREQUENCIES_MHZ,
    NEXUS5_VF_TABLE_MV,
    VoltageFrequencyTable,
    nexus5_table,
    single_bin_table,
)


class TestTable1Data:
    """The embedded data must match the paper's Table I exactly."""

    def test_seven_bins(self):
        assert NEXUS5_BIN_COUNT == 7

    def test_frequency_anchors(self):
        assert NEXUS5_VF_FREQUENCIES_MHZ == (300.0, 729.0, 960.0, 1574.0, 2265.0)

    def test_bin0_row(self):
        assert NEXUS5_VF_TABLE_MV[0] == (800.0, 835.0, 865.0, 965.0, 1100.0)

    def test_bin6_row(self):
        assert NEXUS5_VF_TABLE_MV[6] == (750.0, 760.0, 790.0, 870.0, 950.0)

    def test_bin3_row(self):
        assert NEXUS5_VF_TABLE_MV[3] == (775.0, 790.0, 820.0, 910.0, 1025.0)

    def test_bin0_highest_voltage_at_top_frequency(self):
        top = [row[-1] for row in NEXUS5_VF_TABLE_MV]
        assert top[0] == max(top)
        assert top[-1] == min(top)


class TestVoltageLookup:
    @pytest.fixture
    def table(self) -> VoltageFrequencyTable:
        return nexus5_table()

    def test_exact_anchor(self, table):
        assert table.voltage_mv(0, 2265.0) == 1100.0
        assert table.voltage_mv(6, 300.0) == 750.0

    def test_interpolation_between_anchors(self, table):
        # Halfway between 960 (865 mV) and 1574 (965 mV) for bin-0.
        mid = (960.0 + 1574.0) / 2
        assert table.voltage_mv(0, mid) == pytest.approx(915.0)

    def test_clamps_below_ladder(self, table):
        assert table.voltage_mv(0, 100.0) == 800.0

    def test_clamps_above_ladder(self, table):
        assert table.voltage_mv(0, 3000.0) == 1100.0

    def test_voltage_v_converts(self, table):
        assert table.voltage_v(0, 2265.0) == pytest.approx(1.1)

    def test_bad_bin_rejected(self, table):
        with pytest.raises(ConfigurationError):
            table.voltage_mv(7, 300.0)
        with pytest.raises(ConfigurationError):
            table.voltage_mv(-1, 300.0)

    @given(st.floats(min_value=300.0, max_value=2265.0))
    def test_interpolation_within_row_bounds(self, freq):
        table = nexus5_table()
        for bin_index in range(table.bin_count):
            row = table.row_mv(bin_index)
            voltage = table.voltage_mv(bin_index, freq)
            assert min(row) <= voltage <= max(row)

    @given(
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=300.0, max_value=2200.0),
    )
    def test_interpolated_voltage_non_decreasing_in_frequency(self, bin_index, freq):
        table = nexus5_table()
        assert table.voltage_mv(bin_index, freq + 60.0) >= table.voltage_mv(
            bin_index, freq
        )

    @given(st.floats(min_value=300.0, max_value=2265.0))
    def test_higher_bins_never_need_more_voltage(self, freq):
        table = nexus5_table()
        voltages = [table.voltage_mv(b, freq) for b in range(table.bin_count)]
        assert voltages == sorted(voltages, reverse=True)


class TestValidation:
    def test_needs_two_anchors(self):
        with pytest.raises(ConfigurationError):
            VoltageFrequencyTable(frequencies_mhz=(300.0,), voltages_mv=((800.0,),))

    def test_frequencies_must_increase(self):
        with pytest.raises(ConfigurationError):
            VoltageFrequencyTable(
                frequencies_mhz=(300.0, 300.0),
                voltages_mv=((800.0, 810.0),),
            )

    def test_row_length_must_match(self):
        with pytest.raises(ConfigurationError):
            VoltageFrequencyTable(
                frequencies_mhz=(300.0, 960.0),
                voltages_mv=((800.0,),),
            )

    def test_row_voltage_must_not_decrease(self):
        with pytest.raises(ConfigurationError):
            VoltageFrequencyTable(
                frequencies_mhz=(300.0, 960.0),
                voltages_mv=((850.0, 800.0),),
            )

    def test_bins_must_not_increase_voltage(self):
        with pytest.raises(ConfigurationError):
            VoltageFrequencyTable(
                frequencies_mhz=(300.0, 960.0),
                voltages_mv=((800.0, 850.0), (810.0, 860.0)),
            )

    def test_needs_a_bin(self):
        with pytest.raises(ConfigurationError):
            VoltageFrequencyTable(frequencies_mhz=(300.0, 960.0), voltages_mv=())


class TestHelpers:
    def test_single_bin_table(self):
        table = single_bin_table((300.0, 960.0), (800.0, 900.0))
        assert table.bin_count == 1
        assert table.voltage_mv(0, 960.0) == 900.0

    def test_as_dict(self):
        table = single_bin_table((300.0, 960.0), (800.0, 900.0))
        assert table.as_dict() == {0: {300.0: 800.0, 960.0: 900.0}}

    def test_max_frequency(self):
        assert nexus5_table().max_frequency_mhz == 2265.0
