"""Leakage-power model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.silicon.leakage import LEAKAGE_REFERENCE_TEMP_C, LeakageModel
from repro.silicon.process import PROCESS_28NM_LP
from repro.silicon.transistor import SiliconProfile


@pytest.fixture
def model() -> LeakageModel:
    return LeakageModel(process=PROCESS_28NM_LP, leak_ref_w=0.2, ref_voltage=0.95)


NOMINAL = SiliconProfile.nominal()


class TestReferencePoint:
    def test_reference_conditions_return_reference_power(self, model):
        power = model.power(NOMINAL, 0.95, LEAKAGE_REFERENCE_TEMP_C)
        assert power == pytest.approx(0.2)

    def test_leak_factor_scales_linearly(self, model):
        leaky = SiliconProfile(vth_delta=-0.01, speed_factor=1.02, leak_factor=2.5)
        power = model.power(leaky, 0.95, LEAKAGE_REFERENCE_TEMP_C)
        assert power == pytest.approx(0.5)


class TestVoltageDependence:
    def test_powered_off_block_leaks_nothing(self, model):
        assert model.power(NOMINAL, 0.0, 80.0) == 0.0

    def test_negative_voltage_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.power(NOMINAL, -0.1, 40.0)

    @given(st.floats(min_value=0.5, max_value=1.3))
    def test_leakage_increases_with_voltage(self, voltage):
        model = LeakageModel(PROCESS_28NM_LP, leak_ref_w=0.2, ref_voltage=0.95)
        lower = model.power(NOMINAL, voltage, 40.0)
        higher = model.power(NOMINAL, voltage + 0.05, 40.0)
        assert higher > lower


class TestTemperatureDependence:
    @given(st.floats(min_value=-10.0, max_value=90.0))
    def test_leakage_increases_with_temperature(self, temp):
        model = LeakageModel(PROCESS_28NM_LP, leak_ref_w=0.2, ref_voltage=0.95)
        assert model.power(NOMINAL, 0.95, temp + 5.0) > model.power(
            NOMINAL, 0.95, temp
        )

    def test_doubling_temperature_delta(self, model):
        delta = model.doubling_temperature_delta()
        assert delta == pytest.approx(math.log(2) / PROCESS_28NM_LP.leak_temp_slope)
        base = model.power(NOMINAL, 0.95, 40.0)
        doubled = model.power(NOMINAL, 0.95, 40.0 + delta)
        assert doubled == pytest.approx(2.0 * base, rel=1e-9)

    def test_thermal_runaway_ingredient(self, model):
        # The paper's feedback loop: at 80 C a 28 nm chip leaks much more
        # than at 40 C -- at least 1.5x for any plausible calibration.
        cold = model.power(NOMINAL, 1.0, 40.0)
        hot = model.power(NOMINAL, 1.0, 80.0)
        assert hot / cold > 1.5


class TestValidation:
    def test_negative_reference_power_rejected(self):
        with pytest.raises(ConfigurationError):
            LeakageModel(PROCESS_28NM_LP, leak_ref_w=-0.1, ref_voltage=0.95)

    def test_zero_reference_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            LeakageModel(PROCESS_28NM_LP, leak_ref_w=0.1, ref_voltage=0.0)

    def test_zero_reference_power_allowed(self):
        model = LeakageModel(PROCESS_28NM_LP, leak_ref_w=0.0, ref_voltage=0.95)
        assert model.power(NOMINAL, 1.0, 80.0) == 0.0
