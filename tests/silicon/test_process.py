"""Process-node descriptions."""

import pytest

from repro.errors import ConfigurationError, UnknownModelError
from repro.silicon.process import (
    PROCESS_14NM_FINFET,
    PROCESS_20NM_PLANAR,
    PROCESS_28NM_LP,
    ProcessNode,
    process_node,
)


class TestCatalog:
    def test_lookup_by_name(self):
        assert process_node("28nm-LP") is PROCESS_28NM_LP
        assert process_node("20nm-planar") is PROCESS_20NM_PLANAR
        assert process_node("14nm-FinFET") is PROCESS_14NM_FINFET

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownModelError):
            process_node("7nm-EUV")

    def test_feature_sizes_descend_with_generation(self):
        assert (
            PROCESS_28NM_LP.feature_nm
            > PROCESS_20NM_PLANAR.feature_nm
            > PROCESS_14NM_FINFET.feature_nm
        )

    def test_finfet_leaks_least_with_temperature(self):
        # FinFETs brought leakage back under control: the 14 nm node must
        # have the smallest temperature sensitivity of the three.
        assert PROCESS_14NM_FINFET.leak_temp_slope < PROCESS_28NM_LP.leak_temp_slope
        assert PROCESS_14NM_FINFET.leak_temp_slope < PROCESS_20NM_PLANAR.leak_temp_slope

    def test_finfet_vth_spread_smallest(self):
        assert PROCESS_14NM_FINFET.vth_sigma < PROCESS_28NM_LP.vth_sigma
        assert PROCESS_14NM_FINFET.vth_sigma < PROCESS_20NM_PLANAR.vth_sigma


class TestValidation:
    def _node(self, **overrides):
        base = dict(
            name="test",
            feature_nm=28.0,
            nominal_vdd=1.0,
            vth_sigma=0.02,
            leak_volt_slope=3.0,
            leak_temp_slope=0.02,
            leak_vth_slope=20.0,
            speed_per_vth=2.0,
            volt_per_vth=2.5,
        )
        base.update(overrides)
        return ProcessNode(**base)

    def test_valid_node_constructs(self):
        assert self._node().name == "test"

    def test_zero_feature_rejected(self):
        with pytest.raises(ConfigurationError):
            self._node(feature_nm=0.0)

    def test_negative_vdd_rejected(self):
        with pytest.raises(ConfigurationError):
            self._node(nominal_vdd=-1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            self._node(vth_sigma=-0.01)

    @pytest.mark.parametrize(
        "field", ["leak_volt_slope", "leak_temp_slope", "leak_vth_slope"]
    )
    def test_negative_slopes_rejected(self, field):
        with pytest.raises(ConfigurationError):
            self._node(**{field: -0.1})

    def test_frozen(self):
        node = self._node()
        with pytest.raises(AttributeError):
            node.vth_sigma = 0.5  # type: ignore[misc]
