"""Dynamic (switching) power model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.silicon.dynamic import DynamicPowerModel


@pytest.fixture
def model() -> DynamicPowerModel:
    return DynamicPowerModel(c_eff_f=0.3e-9)


class TestPower:
    def test_textbook_value(self, model):
        # P = C V^2 f: 0.3 nF x (1.0 V)^2 x 1 GHz = 0.3 W.
        assert model.power(1.0, 1000.0) == pytest.approx(0.3)

    def test_voltage_squared(self, model):
        assert model.power(1.1, 2265.0) / model.power(1.0, 2265.0) == pytest.approx(
            1.21
        )

    def test_linear_in_frequency(self, model):
        assert model.power(1.0, 2000.0) == pytest.approx(2 * model.power(1.0, 1000.0))

    def test_linear_in_activity(self, model):
        assert model.power(1.0, 1000.0, activity=0.5) == pytest.approx(
            0.5 * model.power(1.0, 1000.0)
        )

    def test_idle_core_burns_nothing_dynamic(self, model):
        assert model.power(1.0, 2265.0, activity=0.0) == 0.0

    @given(
        st.floats(min_value=0.5, max_value=1.3),
        st.floats(min_value=100.0, max_value=3000.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_never_negative(self, voltage, freq, activity):
        model = DynamicPowerModel(c_eff_f=0.3e-9)
        assert model.power(voltage, freq, activity) >= 0.0


class TestEnergyPerCycle:
    def test_cv_squared(self, model):
        assert model.energy_per_cycle(1.0) == pytest.approx(0.3e-9)

    def test_binning_energy_penalty(self, model):
        # Table I: bin-0 switches at 1.100 V where bin-6 needs 0.950 V --
        # a (1.1/0.95)^2 = 34% dynamic-energy penalty per cycle.
        penalty = model.energy_per_cycle(1.100) / model.energy_per_cycle(0.950)
        assert penalty == pytest.approx((1.1 / 0.95) ** 2)


class TestValidation:
    def test_zero_capacitance_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicPowerModel(c_eff_f=0.0)

    def test_negative_voltage_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.power(-0.5, 1000.0)

    def test_negative_frequency_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.power(1.0, -100.0)

    def test_activity_out_of_range_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.power(1.0, 1000.0, activity=1.5)
