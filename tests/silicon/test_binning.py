"""Speed and voltage binning."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.silicon.binning import (
    SpeedBinner,
    VoltageBinner,
    assign_bin_index,
    bin_profile,
    bin_slice_vth,
    required_voltage,
    spread_profiles,
)
from repro.silicon.process import PROCESS_28NM_LP
from repro.silicon.transistor import SiliconProfile


class TestRequiredVoltage:
    def test_nominal_die_needs_nominal_voltage(self):
        assert required_voltage(PROCESS_28NM_LP, 1.0, 0.0) == pytest.approx(1.0)

    def test_slow_die_needs_more(self):
        assert required_voltage(PROCESS_28NM_LP, 1.0, +0.03) > 1.0

    def test_fast_die_needs_less(self):
        assert required_voltage(PROCESS_28NM_LP, 1.0, -0.03) < 1.0

    def test_extreme_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            required_voltage(PROCESS_28NM_LP, 0.5, -10.0)


@pytest.fixture
def binner() -> VoltageBinner:
    return VoltageBinner(
        process=PROCESS_28NM_LP,
        frequencies_mhz=(300.0, 960.0, 2265.0),
        nominal_voltages_v=(0.78, 0.85, 1.02),
        bin_count=7,
    )


class TestVoltageBinner:
    def test_table_has_requested_bins(self, binner):
        assert binner.table().bin_count == 7

    def test_table_satisfies_invariants(self, binner):
        # Construction of VoltageFrequencyTable validates monotonicity in
        # both axes; reaching here without raising is the assertion.
        table = binner.table()
        assert table.frequencies_mhz == (300.0, 960.0, 2265.0)

    def test_bin0_voltages_highest(self, binner):
        table = binner.table()
        assert table.row_mv(0)[-1] == max(
            table.row_mv(b)[-1] for b in range(table.bin_count)
        )

    def test_voltages_quantized_to_5mv(self, binner):
        for row in binner.table().voltages_mv:
            for voltage in row:
                assert voltage % 5.0 == 0.0

    def test_spread_resembles_table1(self, binner):
        # Paper Table I: ~150 mV between bin-0 and bin-6 at top frequency.
        table = binner.table()
        spread = table.row_mv(0)[-1] - table.row_mv(6)[-1]
        assert 80.0 <= spread <= 320.0

    def test_assign_nominal_die_to_middle(self, binner):
        outcome = binner.assign_bin(SiliconProfile.nominal())
        assert outcome.bin_index == 3

    def test_assign_slow_die_to_bin0(self, binner):
        slow = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, +0.08)
        assert binner.assign_bin(slow).bin_index == 0

    def test_assign_fast_die_to_last_bin(self, binner):
        fast = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, -0.08)
        assert binner.assign_bin(fast).bin_index == 6

    @given(st.floats(min_value=-0.06, max_value=0.06))
    def test_assignment_monotone_in_vth(self, delta):
        binner = VoltageBinner(
            process=PROCESS_28NM_LP,
            frequencies_mhz=(300.0, 2265.0),
            nominal_voltages_v=(0.78, 1.02),
            bin_count=7,
        )
        profile = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, delta)
        faster = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, delta - 0.01)
        assert binner.assign_bin(faster).bin_index >= binner.assign_bin(
            profile
        ).bin_index

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageBinner(
                process=PROCESS_28NM_LP,
                frequencies_mhz=(300.0, 960.0),
                nominal_voltages_v=(0.78,),
            )


class TestSpeedBinner:
    @pytest.fixture
    def speed(self) -> SpeedBinner:
        return SpeedBinner(
            frequencies_mhz=(1958.0, 2150.0, 2265.0, 2457.0),
            nominal_top_mhz=2265.0,
        )

    def test_nominal_die_gets_nominal_bin(self, speed):
        assert speed.binned_frequency_mhz(SiliconProfile.nominal()) == 2265.0

    def test_fast_die_promoted(self, speed):
        fast = SiliconProfile(vth_delta=-0.04, speed_factor=1.10, leak_factor=2.0)
        assert speed.binned_frequency_mhz(fast) == 2457.0

    def test_slow_die_demoted(self, speed):
        slow = SiliconProfile(vth_delta=0.04, speed_factor=0.96, leak_factor=0.5)
        assert speed.binned_frequency_mhz(slow) == 2150.0

    def test_hopeless_die_gets_bottom_bin(self, speed):
        dud = SiliconProfile(vth_delta=0.1, speed_factor=0.5, leak_factor=0.2)
        assert speed.binned_frequency_mhz(dud) == 1958.0

    def test_frequencies_must_increase(self):
        with pytest.raises(ConfigurationError):
            SpeedBinner(frequencies_mhz=(2265.0, 1958.0), nominal_top_mhz=2265.0)


class TestBinSlices:
    def test_midpoint_of_middle_bin_is_nominal(self):
        vth = bin_slice_vth(PROCESS_28NM_LP, bin_count=7, bin_index=3, fraction=0.5)
        assert vth == pytest.approx(0.0, abs=1e-12)

    def test_bin0_is_slowest(self):
        vth0 = bin_slice_vth(PROCESS_28NM_LP, 7, 0)
        vth6 = bin_slice_vth(PROCESS_28NM_LP, 7, 6)
        assert vth0 > 0 > vth6

    def test_fraction_moves_toward_fast_edge(self):
        slow_edge = bin_slice_vth(PROCESS_28NM_LP, 7, 2, fraction=0.0)
        fast_edge = bin_slice_vth(PROCESS_28NM_LP, 7, 2, fraction=1.0)
        assert slow_edge > fast_edge

    def test_bin_profile_round_trip(self):
        for bin_index in range(7):
            profile = bin_profile(PROCESS_28NM_LP, 7, bin_index)
            assert assign_bin_index(PROCESS_28NM_LP, 7, profile) == bin_index

    def test_bad_bin_rejected(self):
        with pytest.raises(ConfigurationError):
            bin_slice_vth(PROCESS_28NM_LP, 7, 7)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            bin_slice_vth(PROCESS_28NM_LP, 7, 0, fraction=1.5)

    def test_spread_profiles(self, binner):
        profiles = spread_profiles(PROCESS_28NM_LP, (0, 3, 6), binner)
        assert len(profiles) == 3
        assert profiles[0].leak_factor < profiles[1].leak_factor < profiles[2].leak_factor

    def test_spread_profiles_bad_bin(self, binner):
        with pytest.raises(ConfigurationError):
            spread_profiles(PROCESS_28NM_LP, (9,), binner)


class TestAssignBinIndex:
    def test_out_of_span_clamps(self):
        very_fast = SiliconProfile.from_vth_delta(PROCESS_28NM_LP, -0.1)
        assert assign_bin_index(PROCESS_28NM_LP, 7, very_fast) == 6

    def test_single_bin(self):
        assert assign_bin_index(PROCESS_28NM_LP, 1, SiliconProfile.nominal()) == 0
