"""Die-to-die variation sampling."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon.process import PROCESS_14NM_FINFET, PROCESS_28NM_LP
from repro.silicon.variation import MAX_SIGMA, VariationSampler


@pytest.fixture
def sampler() -> VariationSampler:
    return VariationSampler(process=PROCESS_28NM_LP, root_seed=7)


class TestSample:
    def test_deterministic_per_keys(self, sampler):
        assert sampler.sample("lot", "die-1") == sampler.sample("lot", "die-1")

    def test_distinct_dies_differ(self, sampler):
        assert sampler.sample("lot", "die-1") != sampler.sample("lot", "die-2")

    def test_requires_keys(self, sampler):
        with pytest.raises(ConfigurationError):
            sampler.sample()

    def test_deltas_clamped(self, sampler):
        bound = MAX_SIGMA * PROCESS_28NM_LP.vth_sigma
        for i in range(200):
            profile = sampler.sample("clamp-lot", f"die-{i}")
            assert abs(profile.vth_delta) <= bound + 1e-12

    def test_population_spread_tracks_sigma(self):
        wide = VariationSampler(PROCESS_28NM_LP, root_seed=3)
        narrow = VariationSampler(PROCESS_14NM_FINFET, root_seed=3)
        wide_deltas = [p.vth_delta for p in wide.sample_lot("lot", 300)]
        narrow_deltas = [p.vth_delta for p in narrow.sample_lot("lot", 300)]
        spread = lambda xs: max(xs) - min(xs)  # noqa: E731
        assert spread(wide_deltas) > spread(narrow_deltas)


class TestSampleLot:
    def test_count(self, sampler):
        assert len(sampler.sample_lot("lot", 12)) == 12

    def test_negative_count_rejected(self, sampler):
        with pytest.raises(ConfigurationError):
            sampler.sample_lot("lot", -1)

    def test_empty_lot(self, sampler):
        assert sampler.sample_lot("lot", 0) == []


class TestFromPercentile:
    def test_median_is_nominal(self, sampler):
        profile = sampler.from_percentile(50.0)
        assert profile.vth_delta == pytest.approx(0.0, abs=1e-12)

    def test_high_percentile_is_fast_and_leaky(self, sampler):
        fast = sampler.from_percentile(95.0)
        assert fast.vth_delta < 0
        assert fast.leak_factor > 1.0

    def test_low_percentile_is_slow(self, sampler):
        slow = sampler.from_percentile(5.0)
        assert slow.vth_delta > 0
        assert slow.speed_factor < 1.0

    def test_monotone_in_percentile(self, sampler):
        deltas = [sampler.from_percentile(p).vth_delta for p in (10, 30, 50, 70, 90)]
        assert deltas == sorted(deltas, reverse=True)

    def test_out_of_range_rejected(self, sampler):
        with pytest.raises(ConfigurationError):
            sampler.from_percentile(101.0)

    def test_extremes_clamped(self, sampler):
        bound = MAX_SIGMA * PROCESS_28NM_LP.vth_sigma
        assert abs(sampler.from_percentile(0.0).vth_delta) <= bound + 1e-12
        assert abs(sampler.from_percentile(100.0).vth_delta) <= bound + 1e-12
